"""Synthetic Ricci v. DeStefano dataset.

118 firefighters, 5 attributes: position (Captain/Lieutenant), race,
written and oral exam scores, and the combined score
``combine = 0.6 * written + 0.4 * oral``. The original promotion decision
assigns the positive class iff the combined score reaches 70 — exactly the
rule the paper states — and the generator reproduces the racial score gap
at the heart of the Supreme Court case.

The raw exam scores live on a 0–100 scale, which is what makes ricci the
paper's Figure 3 stress test for unscaled features.
"""

from __future__ import annotations

import numpy as np

from ..frame import DataFrame
from .base import DatasetSpec, ProtectedAttribute

RICCI_SPEC = DatasetSpec(
    name="ricci",
    label_column="promoted",
    favorable_value="yes",
    numeric_features=("written", "oral", "combine"),
    categorical_features=("position",),
    protected_attributes=(
        ProtectedAttribute(column="race", privileged_values=("White",)),
    ),
)


def generate_ricci(n: int = 118, seed: int = 0) -> DataFrame:
    """Generate the synthetic ricci frame (complete, no missing values)."""
    rng = np.random.default_rng(seed)
    # 41 captain candidates / 77 lieutenant candidates; W/B/H ≈ 68/27/23
    position = rng.permuted(
        np.asarray(
            ["Captain"] * int(round(n * 41 / 118))
            + ["Lieutenant"] * (n - int(round(n * 41 / 118))),
            dtype=object,
        )
    )
    n_white = int(round(n * 68 / 118))
    n_black = int(round(n * 27 / 118))
    race = rng.permuted(
        np.asarray(
            ["White"] * n_white
            + ["Black"] * n_black
            + ["Hispanic"] * (n - n_white - n_black),
            dtype=object,
        )
    )
    white = race == "White"
    # written exam shows the contested racial gap; oral is narrower
    written = np.clip(rng.normal(72.0 + 8.0 * white - 8.0, 9.5, n), 32, 99).round(2)
    oral = np.clip(rng.normal(69.0 + 3.0 * white - 3.0, 8.0, n), 35, 99).round(2)
    combine = (0.6 * written + 0.4 * oral).round(2)
    promoted = np.where(combine >= 70.0, "yes", "no").astype(object)
    return DataFrame.from_dict(
        {
            "position": position,
            "race": race,
            "written": written,
            "oral": oral,
            "combine": combine,
            "promoted": promoted,
        },
        kinds=RICCI_SPEC.column_kinds(),
    )

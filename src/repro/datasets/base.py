"""Dataset specifications: what the lifecycle needs to know about a dataset.

Integrating a dataset with FairPrep "only requires users to load the data as
a dataframe and configure several class variables that denote which
attributes to use as numeric and categorical features, which attribute to
use as the class label, and how to identify the protected groups" (§4).
:class:`DatasetSpec` is that configuration object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..frame import DataFrame


@dataclass(frozen=True)
class ProtectedAttribute:
    """A protected column and which of its values count as privileged."""

    column: str
    privileged_values: Tuple[str, ...]

    def binary_column(self, frame: DataFrame) -> np.ndarray:
        """1.0 for privileged rows, 0.0 otherwise (missing counts as 0.0)."""
        return frame.col(self.column).isin(self.privileged_values).astype(np.float64)


@dataclass(frozen=True)
class DatasetSpec:
    """Schema-level description of a binary-classification fairness dataset."""

    name: str
    label_column: str
    favorable_value: str
    numeric_features: Tuple[str, ...]
    categorical_features: Tuple[str, ...]
    protected_attributes: Tuple[ProtectedAttribute, ...]
    default_protected: str = ""

    def __post_init__(self):
        if not self.protected_attributes:
            raise ValueError("a dataset spec needs at least one protected attribute")
        names = [p.column for p in self.protected_attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate protected attributes: {names}")
        default = self.default_protected or names[0]
        if default not in names:
            raise ValueError(
                f"default_protected {default!r} is not a protected attribute"
            )
        object.__setattr__(self, "default_protected", default)
        overlap = set(self.numeric_features) & set(self.categorical_features)
        if overlap:
            raise ValueError(f"features listed as both numeric and categorical: {sorted(overlap)}")
        if self.label_column in self.numeric_features + self.categorical_features:
            raise ValueError("the label column must not be listed as a feature")

    # ------------------------------------------------------------------
    @property
    def feature_columns(self) -> List[str]:
        return list(self.numeric_features) + list(self.categorical_features)

    def column_kinds(self) -> Dict[str, str]:
        """Frame kinds for every column the spec names.

        Loaders pass this to :meth:`DataFrame.from_dict` so columns are
        dictionary-encoded / typed directly instead of kind-inferred by a
        per-value scan. Label and protected columns are categorical.
        """
        from ..frame import CATEGORICAL, NUMERIC

        kinds = {c: NUMERIC for c in self.numeric_features}
        kinds.update({c: CATEGORICAL for c in self.categorical_features})
        kinds[self.label_column] = CATEGORICAL
        for attribute in self.protected_attributes:
            kinds.setdefault(attribute.column, CATEGORICAL)
        return kinds

    def protected(self, column: Optional[str] = None) -> ProtectedAttribute:
        column = column or self.default_protected
        for attribute in self.protected_attributes:
            if attribute.column == column:
                return attribute
        raise KeyError(
            f"no protected attribute {column!r}; available: "
            f"{[p.column for p in self.protected_attributes]}"
        )

    def privileged_groups(self, column: Optional[str] = None) -> List[Dict[str, float]]:
        return [{self.protected(column).column: 1.0}]

    def unprivileged_groups(self, column: Optional[str] = None) -> List[Dict[str, float]]:
        return [{self.protected(column).column: 0.0}]

    # ------------------------------------------------------------------
    def validate(self, frame: DataFrame) -> None:
        """Check that a frame carries every column the spec references."""
        missing = [c for c in self.feature_columns if c not in frame]
        if missing:
            raise ValueError(f"{self.name}: frame lacks feature columns {missing}")
        if self.label_column not in frame:
            raise ValueError(f"{self.name}: frame lacks label column {self.label_column!r}")
        for attribute in self.protected_attributes:
            if attribute.column not in frame:
                raise ValueError(
                    f"{self.name}: frame lacks protected column {attribute.column!r}"
                )
        for column in self.numeric_features:
            if not frame.col(column).is_numeric:
                raise ValueError(f"{self.name}: feature {column!r} should be numeric")
        for column in self.categorical_features:
            if not frame.col(column).is_categorical:
                raise ValueError(
                    f"{self.name}: feature {column!r} should be categorical"
                )
        labels = set(frame.col(self.label_column).unique())
        if self.favorable_value not in labels:
            raise ValueError(
                f"{self.name}: favorable value {self.favorable_value!r} absent "
                f"from label column (saw {sorted(labels)})"
            )
        if len(labels) != 2:
            raise ValueError(
                f"{self.name}: expected a binary label, saw {sorted(labels)}"
            )

    def label_binary(self, frame: DataFrame) -> np.ndarray:
        """Labels as 1.0 (favorable) / 0.0 (unfavorable)."""
        return frame.col(self.label_column).eq(self.favorable_value).astype(np.float64)

    # ------------------------------------------------------------------
    # JSON round-trip (for serving artifacts: the spec travels with every
    # exported pipeline so a fresh process can validate scoring inputs)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "label_column": self.label_column,
            "favorable_value": self.favorable_value,
            "numeric_features": list(self.numeric_features),
            "categorical_features": list(self.categorical_features),
            "protected_attributes": [
                {
                    "column": attribute.column,
                    "privileged_values": list(attribute.privileged_values),
                }
                for attribute in self.protected_attributes
            ],
            "default_protected": self.default_protected,
        }

    @staticmethod
    def from_dict(data: dict) -> "DatasetSpec":
        return DatasetSpec(
            name=data["name"],
            label_column=data["label_column"],
            favorable_value=data["favorable_value"],
            numeric_features=tuple(data["numeric_features"]),
            categorical_features=tuple(data["categorical_features"]),
            protected_attributes=tuple(
                ProtectedAttribute(
                    column=attribute["column"],
                    privileged_values=tuple(attribute["privileged_values"]),
                )
                for attribute in data["protected_attributes"]
            ),
            default_protected=data.get("default_protected", ""),
        )

"""Synthetic payment-option dataset (the paper's Section 1.1 scenario).

Ann's online-retail use case: decide which payment options to offer a
customer from self-reported demographics plus purchase history. The
generator builds in exactly the pathologies of the running example:

* the ``age`` attribute is missing far more often for female customers;
* age matters for the label, so dropping or poorly imputing it induces the
  error-rate disparity Ann observed for middle-aged women;
* demographic and behavioural features carry the predictive signal.
"""

from __future__ import annotations

import numpy as np

from ..frame import DataFrame
from .base import DatasetSpec, ProtectedAttribute

PAYMENT_SPEC = DatasetSpec(
    name="payment",
    label_column="offer_invoice",
    favorable_value="yes",
    numeric_features=(
        "age",
        "purchase_count",
        "avg_basket_value",
        "return_rate",
        "tenure_months",
    ),
    categorical_features=("gender", "country", "newsletter"),
    protected_attributes=(
        ProtectedAttribute(column="gender", privileged_values=("male",)),
    ),
)


def generate_payment(n: int = 5000, seed: int = 0) -> DataFrame:
    """Generate the synthetic payment frame with gendered age missingness."""
    rng = np.random.default_rng(seed)
    female = rng.random(n) < 0.52
    gender = np.where(female, "female", "male").astype(object)
    age = np.clip(rng.normal(41.0, 13.0, n), 18, 85).round()
    purchase_count = np.clip(rng.poisson(9.0, n), 0, 80).astype(float)
    avg_basket = np.clip(rng.lognormal(3.6, 0.6, n), 5, 900).round(2)
    return_rate = np.clip(rng.beta(1.4, 9.0, n), 0, 1).round(3)
    tenure = np.clip(rng.gamma(2.0, 14.0, n), 1, 160).round()
    country = rng.choice(["DE", "US", "FR", "NL", "PL"], size=n, p=[0.4, 0.25, 0.15, 0.12, 0.08])
    newsletter = rng.choice(["yes", "no"], size=n, p=[0.35, 0.65])

    # reliable payers: older, loyal, low-return customers
    score = (
        0.035 * (age - 40.0)
        + 0.05 * (purchase_count - 9.0)
        + 0.012 * (tenure - 28.0)
        - 3.2 * (return_rate - 0.13)
        + 0.002 * (avg_basket - 40.0)
        + rng.normal(0.0, 0.9, n)
    )
    offer = np.where(score > np.quantile(score, 0.45), "yes", "no").astype(object)

    # age goes missing ~3x more often for women (self-reported demographics)
    missing_p = np.where(female, 0.18, 0.06)
    age = age.astype(object)
    age[rng.random(n) < missing_p] = None
    return DataFrame.from_dict(
        {
            "gender": gender,
            "age": age,
            "purchase_count": purchase_count,
            "avg_basket_value": avg_basket,
            "return_rate": return_rate,
            "tenure_months": tenure,
            "country": country,
            "newsletter": newsletter,
            "offer_invoice": offer,
        },
        kinds=PAYMENT_SPEC.column_kinds(),
    )

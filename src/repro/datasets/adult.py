"""Synthetic Adult Income dataset (UCI calibration).

32,561 rows by default, 14 attributes, sensitive attributes race and sex.
The generator reproduces the missingness structure the paper documents in
Sections 2.4 and 5.3, which drives the Figure 4/5 experiments:

* ~2,399 rows (≈7.4%) have missing values, concentrated in ``workclass``,
  ``occupation`` and ``native_country``;
* ``native_country`` is missing ~4× more often for non-white persons;
* the positive label (>50K) occurs with ~24% probability among complete
  records but only ~14% among incomplete ones;
* among incomplete records the privileged (white) stratum has ~15% positive
  rate, a married majority, and a bump of 60–70-year-olds; the non-white
  stratum has ~10.6% positives, few seniors, and a never-married majority.
"""

from __future__ import annotations

import numpy as np

from ..frame import DataFrame
from .base import DatasetSpec, ProtectedAttribute

ADULT_SPEC = DatasetSpec(
    name="adult",
    label_column="income",
    favorable_value=">50K",
    numeric_features=(
        "age",
        "fnlwgt",
        "education_num",
        "capital_gain",
        "capital_loss",
        "hours_per_week",
    ),
    categorical_features=(
        "workclass",
        "education",
        "marital_status",
        "occupation",
        "relationship",
        "race",
        "sex",
        "native_country",
    ),
    protected_attributes=(
        ProtectedAttribute(column="race", privileged_values=("White",)),
        ProtectedAttribute(column="sex", privileged_values=("Male",)),
    ),
    default_protected="race",
)

_WORKCLASS = ["Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov", "Local-gov", "State-gov", "Without-pay"]
_EDUCATION = [
    ("HS-grad", 9), ("Some-college", 10), ("Bachelors", 13), ("Masters", 14),
    ("Assoc-voc", 11), ("11th", 7), ("Assoc-acdm", 12), ("10th", 6),
    ("7th-8th", 4), ("Prof-school", 15), ("9th", 5), ("12th", 8),
    ("Doctorate", 16), ("5th-6th", 3), ("1st-4th", 2), ("Preschool", 1),
]
_EDU_P = [0.32, 0.22, 0.16, 0.055, 0.042, 0.036, 0.033, 0.028, 0.02, 0.018, 0.016, 0.013, 0.013, 0.01, 0.005, 0.002]
_MARITAL = ["Married-civ-spouse", "Never-married", "Divorced", "Separated", "Widowed", "Married-spouse-absent"]
_OCCUPATION = [
    "Prof-specialty", "Craft-repair", "Exec-managerial", "Adm-clerical",
    "Sales", "Other-service", "Machine-op-inspct", "Transport-moving",
    "Handlers-cleaners", "Farming-fishing", "Tech-support",
    "Protective-serv", "Priv-house-serv", "Armed-Forces",
]
_OCC_P = [0.13, 0.13, 0.13, 0.12, 0.115, 0.105, 0.064, 0.05, 0.044, 0.032, 0.03, 0.021, 0.0048, 0.0002]
_RELATIONSHIP = ["Husband", "Not-in-family", "Own-child", "Unmarried", "Wife", "Other-relative"]
_RACE = ["White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"]
_RACE_P = [0.854, 0.096, 0.031, 0.010, 0.009]
_COUNTRIES = ["United-States", "Mexico", "Philippines", "Germany", "Canada", "Puerto-Rico", "El-Salvador", "India", "Cuba", "England", "China"]


def generate_adult(n: int = 32561, seed: int = 0) -> DataFrame:
    """Generate the synthetic adult frame, including MNAR missing values."""
    rng = np.random.default_rng(seed)
    race = rng.choice(_RACE, size=n, p=_RACE_P)
    white = race == "White"
    sex = rng.choice(["Male", "Female"], size=n, p=[0.67, 0.33])
    male = sex == "Male"

    age = np.clip(rng.gamma(7.0, 5.6, n), 17, 90).round()
    education_idx = rng.choice(len(_EDUCATION), size=n, p=np.asarray(_EDU_P) / sum(_EDU_P))
    education = np.asarray([_EDUCATION[i][0] for i in education_idx], dtype=object)
    education_num = np.asarray([_EDUCATION[i][1] for i in education_idx], dtype=float)
    fnlwgt = np.clip(rng.lognormal(11.9, 0.5, n), 1.3e4, 1.2e6).round()
    hours = np.clip(rng.normal(40.0 + 3.0 * male, 11.0, n), 1, 99).round()
    capital_gain = np.where(rng.random(n) < 0.083, rng.lognormal(8.1, 1.3, n), 0.0).round()
    capital_loss = np.where(rng.random(n) < 0.047, rng.lognormal(7.4, 0.35, n), 0.0).round()

    married_p = np.clip(0.25 + 0.006 * (age - 17) + 0.14 * male, 0.05, 0.9)
    draw = rng.random(n)
    marital = np.empty(n, dtype=object)
    marital[draw < married_p] = "Married-civ-spouse"
    rest = draw >= married_p
    marital[rest] = rng.choice(
        _MARITAL[1:], size=int(rest.sum()), p=[0.53, 0.28, 0.07, 0.065, 0.055]
    )
    married = marital == "Married-civ-spouse"

    relationship = np.empty(n, dtype=object)
    relationship[married & male] = "Husband"
    relationship[married & ~male] = "Wife"
    unmarried = ~married
    relationship[unmarried] = rng.choice(
        ["Not-in-family", "Own-child", "Unmarried", "Other-relative"],
        size=int(unmarried.sum()),
        p=[0.47, 0.28, 0.19, 0.06],
    )

    workclass = rng.choice(_WORKCLASS, size=n, p=[0.753, 0.085, 0.037, 0.032, 0.07, 0.022, 0.001])
    occupation = rng.choice(_OCCUPATION, size=n, p=np.asarray(_OCC_P) / sum(_OCC_P))
    country_choice = rng.choice(_COUNTRIES, size=n, p=[0.913, 0.02, 0.012, 0.009, 0.008, 0.008, 0.007, 0.006, 0.006, 0.006, 0.005])
    native_country = country_choice.astype(object)

    # income model: education, age, hours, capital gains, marriage, and the
    # demographic disparities observed in the census data
    high_occ = np.isin(occupation, ["Exec-managerial", "Prof-specialty", "Tech-support"])
    score = (
        0.42 * (education_num - 10.0)
        + 0.045 * (np.minimum(age, 60) - 38.0)
        + 0.035 * (hours - 40.0)
        + 1.25 * (capital_gain > 5000)
        + 1.35 * married
        + 0.55 * high_occ
        + 0.35 * male
        + 0.28 * white
        + rng.normal(0.0, 1.25, n)
    )
    threshold = np.quantile(score, 1.0 - 0.2408)
    income = np.where(score > threshold, ">50K", "<=50K").astype(object)

    # ----- missingness (MNAR, per the paper's audit) --------------------
    # target ≈ 7.4% incomplete rows; never-married, lower-income rows are
    # likelier to be incomplete, which yields the 24% vs 14% label gap
    base = 0.050
    incomplete_p = (
        base
        + 0.042 * (marital == "Never-married")
        + 0.028 * (income == "<=50K")
        - 0.018 * married
    )
    # the privileged incomplete stratum skews old (60-70) and married
    incomplete_p = incomplete_p + np.where(white & (age >= 60) & (age < 70), 0.06, 0.0)
    incomplete_p = incomplete_p + np.where(~white & (age < 60), 0.015, 0.0)
    incomplete = rng.random(n) < np.clip(incomplete_p, 0.0, 1.0)

    workclass = workclass.astype(object)
    occupation = occupation.astype(object)
    # workclass and occupation go missing together (as in the census files)
    wc_missing = incomplete & (rng.random(n) < 0.78)
    workclass[wc_missing] = None
    occupation[wc_missing] = None
    # native-country missing ~4x more often for non-white persons
    nc_rate = np.where(white, 0.23, 0.92)
    nc_missing = incomplete & (rng.random(n) < nc_rate)
    native_country[nc_missing] = None
    # rows flagged incomplete but that dodged both draws: force workclass
    neither = incomplete & ~wc_missing & ~nc_missing
    workclass[neither] = None
    occupation[neither] = None

    # kinds pinned from the spec so every column is dictionary-encoded /
    # typed directly, skipping per-value kind inference over 32k rows
    return DataFrame.from_dict(
        {
            "age": age,
            "workclass": workclass,
            "fnlwgt": fnlwgt,
            "education": education,
            "education_num": education_num,
            "marital_status": marital,
            "occupation": occupation,
            "relationship": relationship,
            "race": race,
            "sex": sex,
            "capital_gain": capital_gain,
            "capital_loss": capital_loss,
            "hours_per_week": hours,
            "native_country": native_country,
            "income": income,
        },
        kinds=ADULT_SPEC.column_kinds(),
    )

"""Seeded synthetic dataset generators + specs.

The execution environment has no network access, so the four benchmark
datasets the paper uses (adult, germancredit, propublica, ricci) are
replaced by seeded synthetic generators calibrated to the published
marginals the paper's experiments rely on; see DESIGN.md for the
substitution rationale. ``load_dataset`` is the uniform entry point.
"""

from typing import Optional, Tuple

from ..frame import DataFrame
from .adult import ADULT_SPEC, generate_adult
from .base import DatasetSpec, ProtectedAttribute
from .germancredit import GERMANCREDIT_SPEC, generate_germancredit
from .payment import PAYMENT_SPEC, generate_payment
from .propublica import PROPUBLICA_SPEC, generate_propublica
from .ricci import RICCI_SPEC, generate_ricci
from .synth import group_label_marginals, inflate, synthesize

_REGISTRY = {
    "adult": (generate_adult, ADULT_SPEC),
    "germancredit": (generate_germancredit, GERMANCREDIT_SPEC),
    "propublica": (generate_propublica, PROPUBLICA_SPEC),
    "ricci": (generate_ricci, RICCI_SPEC),
    "payment": (generate_payment, PAYMENT_SPEC),
}


def dataset_names() -> list:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """The :class:`DatasetSpec` for a registered dataset, without
    generating any rows — for callers that bring their own frame (e.g. a
    memory-mapped :class:`~repro.frame.storage.FrameStore`)."""
    try:
        return _REGISTRY[name][1]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None


def load_dataset(
    name: str, n: Optional[int] = None, seed: int = 0
) -> Tuple[DataFrame, DatasetSpec]:
    """Generate a dataset by name; returns ``(frame, spec)``.

    ``n`` overrides the dataset's canonical size (useful to scale the adult
    experiments down for quick runs).
    """
    try:
        generator, spec = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}") from None
    frame = generator(seed=seed) if n is None else generator(n=n, seed=seed)
    return frame, spec


__all__ = [
    "ADULT_SPEC",
    "DatasetSpec",
    "GERMANCREDIT_SPEC",
    "PAYMENT_SPEC",
    "PROPUBLICA_SPEC",
    "ProtectedAttribute",
    "RICCI_SPEC",
    "dataset_names",
    "dataset_spec",
    "generate_adult",
    "generate_germancredit",
    "generate_payment",
    "generate_propublica",
    "generate_ricci",
    "group_label_marginals",
    "inflate",
    "load_dataset",
    "synthesize",
]

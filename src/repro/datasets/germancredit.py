"""Synthetic German Credit dataset (Statlog calibration).

1,000 people, 20 attributes (7 numeric, 13 categorical), a good/bad credit
label at the real dataset's 70/30 split, and the sensitive attribute sex
(derived from ``personal_status_sex``, as in the original). A latent risk
score ties the informative attributes to the label so that classifiers and
interventions have real signal to work with, and a mild sex-correlated
component yields the modest base-rate disparity fairness studies observe on
the real data.
"""

from __future__ import annotations

import numpy as np

from ..frame import DataFrame
from .base import DatasetSpec, ProtectedAttribute

GERMANCREDIT_SPEC = DatasetSpec(
    name="germancredit",
    label_column="credit_risk",
    favorable_value="good",
    numeric_features=(
        "duration_months",
        "credit_amount",
        "installment_rate",
        "present_residence_since",
        "age",
        "existing_credits",
        "num_dependents",
    ),
    categorical_features=(
        "status_checking",
        "credit_history",
        "purpose",
        "savings",
        "employment_since",
        "personal_status_sex",
        "other_debtors",
        "property",
        "other_installment_plans",
        "housing",
        "job",
        "telephone",
        "foreign_worker",
    ),
    protected_attributes=(
        ProtectedAttribute(column="sex", privileged_values=("male",)),
    ),
)

_CHECKING = ["lt_0", "0_to_200", "ge_200", "no_account"]
_HISTORY = ["critical", "delayed", "existing_paid", "all_paid", "no_credits"]
_PURPOSE = ["car_new", "car_used", "furniture", "radio_tv", "education", "business", "repairs", "other"]
_SAVINGS = ["lt_100", "100_to_500", "500_to_1000", "ge_1000", "unknown"]
_EMPLOYMENT = ["unemployed", "lt_1", "1_to_4", "4_to_7", "ge_7"]
_STATUS_SEX_MALE = ["male_single", "male_married", "male_divorced"]
_STATUS_SEX_FEMALE = ["female_div_sep_mar", "female_single"]
_DEBTORS = ["none", "co_applicant", "guarantor"]
_PROPERTY = ["real_estate", "life_insurance", "car_other", "unknown"]
_PLANS = ["none", "bank", "stores"]
_HOUSING = ["own", "rent", "for_free"]
_JOB = ["unskilled", "skilled", "management", "unemployed_nonres"]


def generate_germancredit(n: int = 1000, seed: int = 0) -> DataFrame:
    """Generate the synthetic germancredit frame (complete, no missing values)."""
    rng = np.random.default_rng(seed)
    # ~69% male applicants, as in the Statlog data
    is_male = rng.random(n) < 0.69
    sex = np.where(is_male, "male", "female")
    personal_status = np.where(
        is_male,
        rng.choice(_STATUS_SEX_MALE, size=n, p=[0.70, 0.18, 0.12]),
        rng.choice(_STATUS_SEX_FEMALE, size=n, p=[0.85, 0.15]),
    )

    age = np.clip(rng.gamma(6.0, 6.0, n) + 19.0, 19, 75).round()
    duration = np.clip(rng.gamma(2.2, 9.5, n), 4, 72).round()
    credit_amount = np.clip(rng.lognormal(7.7, 0.9, n), 250, 18500).round()
    installment_rate = rng.integers(1, 5, n).astype(float)
    residence_since = rng.integers(1, 5, n).astype(float)
    existing_credits = np.clip(rng.poisson(0.45, n) + 1, 1, 4).astype(float)
    num_dependents = np.where(rng.random(n) < 0.15, 2.0, 1.0)

    checking = rng.choice(_CHECKING, size=n, p=[0.27, 0.27, 0.06, 0.40])
    history = rng.choice(_HISTORY, size=n, p=[0.29, 0.09, 0.53, 0.05, 0.04])
    purpose = rng.choice(_PURPOSE, size=n, p=[0.23, 0.10, 0.18, 0.28, 0.05, 0.10, 0.02, 0.04])
    savings = rng.choice(_SAVINGS, size=n, p=[0.60, 0.10, 0.06, 0.06, 0.18])
    employment = rng.choice(_EMPLOYMENT, size=n, p=[0.06, 0.17, 0.34, 0.17, 0.26])
    debtors = rng.choice(_DEBTORS, size=n, p=[0.91, 0.04, 0.05])
    property_ = rng.choice(_PROPERTY, size=n, p=[0.28, 0.23, 0.33, 0.16])
    plans = rng.choice(_PLANS, size=n, p=[0.81, 0.14, 0.05])
    housing = rng.choice(_HOUSING, size=n, p=[0.71, 0.18, 0.11])
    job = rng.choice(_JOB, size=n, p=[0.20, 0.63, 0.15, 0.02])
    telephone = rng.choice(["none", "yes"], size=n, p=[0.60, 0.40])
    foreign = rng.choice(["yes", "no"], size=n, p=[0.96, 0.04])

    # latent creditworthiness: good checking/savings/history and shorter,
    # smaller loans are safer; a mild sex term creates the group disparity
    risk = (
        -1.1 * (checking == "lt_0")
        - 0.5 * (checking == "0_to_200")
        + 0.8 * (checking == "no_account")
        + 0.7 * (history == "critical")
        - 0.5 * (history == "all_paid")
        - 0.35 * (savings == "lt_100")
        + 0.5 * (savings == "ge_1000")
        - 0.012 * (duration - duration.mean())
        - 0.00008 * (credit_amount - credit_amount.mean())
        + 0.010 * (age - age.mean())
        + 0.25 * (employment == "ge_7")
        - 0.35 * (employment == "unemployed")
        + 0.15 * (housing == "own")
        + 0.22 * is_male
        + rng.normal(0.0, 0.9, n)
    )
    # calibrate the threshold so that ~70% of applicants are 'good'
    threshold = np.quantile(risk, 0.30)
    credit_risk = np.where(risk > threshold, "good", "bad")

    return DataFrame.from_dict(
        {
            "status_checking": checking,
            "duration_months": duration,
            "credit_history": history,
            "purpose": purpose,
            "credit_amount": credit_amount,
            "savings": savings,
            "employment_since": employment,
            "installment_rate": installment_rate,
            "personal_status_sex": personal_status,
            "other_debtors": debtors,
            "present_residence_since": residence_since,
            "property": property_,
            "age": age,
            "other_installment_plans": plans,
            "housing": housing,
            "existing_credits": existing_credits,
            "job": job,
            "num_dependents": num_dependents,
            "telephone": telephone,
            "foreign_worker": foreign,
            "sex": sex,
            "credit_risk": credit_risk,
        },
        kinds=GERMANCREDIT_SPEC.column_kinds(),
    )

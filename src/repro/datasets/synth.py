"""Scaled synthetic inflation of the paper datasets.

The four paper datasets top out at ~33k rows; million-row grids and
batch-scoring benchmarks need the same *fairness structure* at 30–300×
the size. :func:`inflate` resamples a source frame to any target row
count with a **stratified bootstrap**: rows are drawn per joint cell of
(every protected attribute's privileged indicator × the binary label),
with cell sizes assigned by largest-remainder proportional allocation.
That construction preserves exactly the statistics the fairness metrics
read — per-protected-group base rates, label marginals, and their joint
— up to the ±1-row rounding of each cell, while per-cell bootstrap keeps
all within-cell feature correlations (each synthetic row *is* a source
row). Missing values inflate along with everything else, so MNAR
missingness structure survives too.

Everything is driven by one ``np.random.default_rng(seed)``: the same
``(name, n_rows, seed)`` always produces the identical frame.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..frame import DataFrame
from .base import DatasetSpec


def inflate(
    frame: DataFrame, spec: DatasetSpec, n_rows: int, seed: int = 0
) -> DataFrame:
    """Resample ``frame`` to ``n_rows`` rows, preserving fairness joints.

    Stratifies on the joint of every protected attribute's privileged
    indicator and the binary label, allocates the target size across
    cells by largest remainder, bootstraps within each cell, and shuffles
    globally so row order carries no cell signal.
    """
    if n_rows < 1:
        raise ValueError(f"n_rows must be >= 1, got {n_rows}")
    if frame.num_rows == 0:
        raise ValueError("cannot inflate an empty frame")
    cells = _cell_ids(frame, spec)
    rng = np.random.default_rng(seed)
    n_cells = int(cells.max()) + 1
    counts = np.bincount(cells, minlength=n_cells)
    targets = _largest_remainder(counts, n_rows)
    picks = np.empty(n_rows, dtype=np.int64)
    cursor = 0
    for cell in range(n_cells):
        size = int(targets[cell])
        if size == 0:
            continue
        members = np.nonzero(cells == cell)[0]
        picks[cursor : cursor + size] = members[
            rng.integers(0, len(members), size)
        ]
        cursor += size
    return frame.take(picks[rng.permutation(n_rows)])


def synthesize(
    name: str, n_rows: int, seed: int = 0
) -> Tuple[DataFrame, DatasetSpec]:
    """Load a registered dataset at full size and inflate it to ``n_rows``."""
    from . import load_dataset

    frame, spec = load_dataset(name)
    return inflate(frame, spec, n_rows, seed=seed), spec


def group_label_marginals(
    frame: DataFrame, spec: DatasetSpec
) -> Dict[str, Dict[str, float]]:
    """Favorable-label rate per (protected attribute, group) plus sizes.

    The report the CLI prints and the acceptance test compares: for each
    protected attribute, the privileged/unprivileged group fractions and
    their favorable-label base rates.
    """
    label = spec.label_binary(frame)
    n = frame.num_rows
    report: Dict[str, Dict[str, float]] = {}
    for attribute in spec.protected_attributes:
        privileged = attribute.binary_column(frame) == 1.0
        n_priv = int(privileged.sum())
        report[attribute.column] = {
            "privileged_fraction": n_priv / n,
            "privileged_base_rate": (
                float(label[privileged].mean()) if n_priv else float("nan")
            ),
            "unprivileged_base_rate": (
                float(label[~privileged].mean()) if n_priv < n else float("nan")
            ),
        }
    report["__label__"] = {"favorable_rate": float(label.mean())}
    return report


def _cell_ids(frame: DataFrame, spec: DatasetSpec) -> np.ndarray:
    """Joint stratification cell of every row (protected bits × label)."""
    cells = spec.label_binary(frame).astype(np.int64)
    for attribute in spec.protected_attributes:
        cells = 2 * cells + attribute.binary_column(frame).astype(np.int64)
    return cells


def _largest_remainder(counts: np.ndarray, total: int) -> np.ndarray:
    """Proportional integer allocation of ``total`` across ``counts``.

    Floors the exact quotas, then hands the leftover units to the cells
    with the largest fractional parts (ties to the lower cell id, which
    keeps the allocation deterministic). Empty source cells get nothing,
    so every allocated cell can actually be bootstrapped from.
    """
    quotas = counts * (total / counts.sum())
    floors = np.floor(quotas).astype(np.int64)
    leftover = total - int(floors.sum())
    if leftover:
        remainders = quotas - floors
        # stable sort descending by remainder: ties break to lower id
        order = np.argsort(-remainders, kind="stable")[:leftover]
        floors[order] += 1
    return floors

"""Synthetic ProPublica COMPAS dataset.

~6,172 defendants from the two-year recidivism cohort: demographics,
criminal history, charge degree, COMPAS decile scores, and the binary
``two_year_recid`` outcome. Sensitive attributes race and sex. The
generator reproduces the headline statistics of the ProPublica analysis:
a ~45% recidivism base rate, recidivism driven mostly by priors and youth,
and decile scores skewed upward for African-American defendants beyond
what the outcome model explains.
"""

from __future__ import annotations

import numpy as np

from ..frame import DataFrame
from .base import DatasetSpec, ProtectedAttribute

PROPUBLICA_SPEC = DatasetSpec(
    name="propublica",
    label_column="two_year_recid",
    favorable_value="no",  # not being rearrested is the favorable outcome
    numeric_features=(
        "age",
        "juv_fel_count",
        "juv_misd_count",
        "juv_other_count",
        "priors_count",
        "decile_score",
    ),
    categorical_features=("c_charge_degree", "age_cat", "sex"),
    protected_attributes=(
        ProtectedAttribute(column="race", privileged_values=("Caucasian",)),
        ProtectedAttribute(column="sex", privileged_values=("Female",)),
    ),
    default_protected="race",
)

_RACES = ["African-American", "Caucasian", "Hispanic", "Other", "Asian", "Native American"]
_RACE_P = [0.514, 0.340, 0.082, 0.055, 0.005, 0.004]


def generate_propublica(n: int = 6172, seed: int = 0) -> DataFrame:
    """Generate the synthetic propublica frame (complete, no missing values)."""
    rng = np.random.default_rng(seed)
    race = rng.choice(_RACES, size=n, p=_RACE_P)
    black = race == "African-American"
    sex = rng.choice(["Male", "Female"], size=n, p=[0.81, 0.19])
    age = np.clip(rng.gamma(4.6, 7.6, n), 18, 96).round()
    age_cat = np.where(
        age < 25, "Less than 25", np.where(age <= 45, "25 - 45", "Greater than 45")
    ).astype(object)
    priors = np.clip(rng.negative_binomial(1.1, 0.26, n), 0, 38).astype(float)
    juv_fel = np.clip(rng.poisson(0.06, n), 0, 10).astype(float)
    juv_misd = np.clip(rng.poisson(0.09, n), 0, 12).astype(float)
    juv_other = np.clip(rng.poisson(0.10, n), 0, 9).astype(float)
    charge = rng.choice(["F", "M"], size=n, p=[0.64, 0.36])

    # recidivism: priors and youth dominate; modest race/sex effects
    risk = (
        0.16 * priors
        + 0.35 * juv_fel
        + 0.22 * juv_misd
        - 0.040 * (age - 34.0)
        + 0.18 * (charge == "F")
        + 0.23 * black
        + 0.17 * (sex == "Male")
        + rng.normal(0.0, 1.0, n)
    )
    threshold = np.quantile(risk, 1.0 - 0.451)
    recid = np.where(risk > threshold, "yes", "no").astype(object)

    # decile scores track the risk model but with an extra race skew (the
    # disparity ProPublica documented)
    score_latent = risk + 0.55 * black + rng.normal(0.0, 0.6, n)
    edges = np.quantile(score_latent, np.linspace(0.1, 0.9, 9))
    decile = (np.searchsorted(edges, score_latent) + 1).astype(float)

    return DataFrame.from_dict(
        {
            "sex": sex,
            "age": age,
            "age_cat": age_cat,
            "race": race,
            "juv_fel_count": juv_fel,
            "juv_misd_count": juv_misd,
            "juv_other_count": juv_other,
            "priors_count": priors,
            "c_charge_degree": charge,
            "decile_score": decile,
            "two_year_recid": recid,
        },
        kinds=PROPUBLICA_SPEC.column_kinds(),
    )

"""Fork-based group fan-out shared by executors and grid search.

One scheduling core serves both layers of parallelism in the system: the
experiment executors (:mod:`repro.core.executors`) fan preparation groups
out over worker processes, and :class:`repro.learn.GridSearchCV` fans
candidate×fold chunks out inside a single experiment run.

The pool uses the ``fork`` start method on purpose: payloads routinely
contain closures, lambdas and fitted estimators that do not pickle.
The payload, worker callable and group list are published in a module
global before the pool spawns, each forked worker inherits them, and only
group *indices* cross the process boundary on the way in (results are
pickled on the way back, so they must be picklable).

Because workers share nothing but the immutable payload, parallel runs
produce results identical to serial execution.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, List, Optional, Sequence, Tuple

#: (payload, worker, groups) inherited by forked pool workers
_WORKER_STATE: Optional[Tuple] = None


def fork_available() -> bool:
    """Whether this platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def _run_indexed(index: int):
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - defensive
        raise RuntimeError("worker has no published state; pool misconfigured")
    payload, worker, groups = state
    return worker(payload, groups[index])


def run_groups(
    payload,
    worker: Callable,
    groups: Sequence,
    jobs: int,
    on_done: Callable[[int, object, object], None],
) -> None:
    """Run ``worker(payload, group)`` for every group.

    ``on_done(index, group, result)`` fires as each group completes —
    incrementally, in completion order under the pool — so callers can
    persist partial progress. With ``jobs <= 1``, a single group, or no
    fork support, execution happens serially in submission order.

    If a group raises, unstarted groups are cancelled, in-flight groups
    are allowed to finish and are still reported through ``on_done``,
    and the error then propagates.
    """
    groups = list(groups)
    jobs = min(int(jobs), len(groups))
    if jobs > 1 and not fork_available():
        warnings.warn(
            "parallel execution needs the 'fork' start method to ship "
            "work to child processes; running serially instead",
            RuntimeWarning,
            stacklevel=2,
        )
        jobs = 1
    if jobs <= 1:
        for index, group in enumerate(groups):
            on_done(index, group, worker(payload, group))
        return

    global _WORKER_STATE
    # save/restore rather than reset: a nested run_groups (e.g. a
    # GridSearchCV n_jobs fan-out inside an executor worker) must leave
    # the state this process inherited at fork intact for its next task
    inherited = _WORKER_STATE
    _WORKER_STATE = (payload, worker, groups)
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            futures = {
                pool.submit(_run_indexed, index): index
                for index in range(len(groups))
            }
            reported = set()
            try:
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in finished:
                        result = future.result()
                        index = futures[future]
                        reported.add(future)
                        on_done(index, groups[index], result)
            except BaseException:
                # a failed group must not discard work other processes
                # completed: stop unstarted groups, let in-flight ones
                # finish (pool shutdown waits for them regardless) and
                # report every success before propagating
                for future in futures:
                    future.cancel()
                wait(set(futures))
                for future in futures:
                    if (
                        future not in reported
                        and future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        index = futures[future]
                        on_done(index, groups[index], future.result())
                raise
    finally:
        _WORKER_STATE = inherited


def fork_process(target: Callable[[], object]) -> int:
    """Fork a long-lived worker process that runs ``target()`` and exits.

    The single-machine "distributed over localhost" mode spawns its grid
    workers this way: the child inherits the coordinator's published plan
    copy-on-write (closures and all), runs the target, and ``os._exit``s
    so no parent state (atexit handlers, buffered streams) runs twice.
    Exit status is 0 on success, 1 on an exception (traceback printed).
    """
    if not fork_available():  # pragma: no cover - platform-specific
        raise RuntimeError("fork_process needs the 'fork' start method")
    pid = os.fork()
    if pid != 0:
        return pid
    status = 0
    try:
        target()
    except BaseException:
        traceback.print_exc()
        status = 1
    finally:
        os._exit(status)


def reap_process(
    pid: int, kill_after: float = 10.0, grace: float = 2.0
) -> Optional[int]:
    """Collect a forked child, escalating TERM -> KILL if it lingers.

    Polls for up to ``grace`` seconds first, so a child that is about to
    exit on its own (a grid worker draining its final ``done`` reply) is
    collected cleanly instead of signalled. Returns the child's raw
    ``waitpid`` status, or ``None`` when it was already reaped elsewhere.
    """
    try:
        deadline = time.monotonic() + grace
        while True:
            done, status = os.waitpid(pid, os.WNOHANG)
            if done:
                return status
            if time.monotonic() >= deadline:
                break
            time.sleep(0.02)
        os.kill(pid, signal.SIGTERM)
        deadline = time.monotonic() + kill_after
        while time.monotonic() < deadline:
            done, status = os.waitpid(pid, os.WNOHANG)
            if done:
                return status
            time.sleep(0.05)
        os.kill(pid, signal.SIGKILL)
        return os.waitpid(pid, 0)[1]
    except (ChildProcessError, ProcessLookupError):
        return None


def split_for_balance(groups: List[list], workers: int) -> List[list]:
    """Split the largest groups until every worker can stay busy."""
    groups = [list(group) for group in groups]
    while len(groups) < workers:
        largest = max(groups, key=len)
        if len(largest) < 2:
            break
        groups.remove(largest)
        middle = len(largest) // 2
        groups.extend([largest[:middle], largest[middle:]])
    return groups

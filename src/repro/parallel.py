"""Fork-based group fan-out shared by executors and grid search.

One scheduling core serves both layers of parallelism in the system: the
experiment executors (:mod:`repro.core.executors`) fan preparation groups
out over worker processes, and :class:`repro.learn.GridSearchCV` fans
candidate×fold chunks out inside a single experiment run.

The pool uses the ``fork`` start method on purpose: payloads routinely
contain closures, lambdas and fitted estimators that do not pickle.
The payload, worker callable and group list are published in a module
global before the pool spawns, each forked worker inherits them, and only
group *indices* cross the process boundary on the way in (results are
pickled on the way back, so they must be picklable).

Because workers share nothing but the immutable payload, parallel runs
produce results identical to serial execution.
"""

from __future__ import annotations

import multiprocessing
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, List, Optional, Sequence, Tuple

#: (payload, worker, groups) inherited by forked pool workers
_WORKER_STATE: Optional[Tuple] = None


def fork_available() -> bool:
    """Whether this platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def _run_indexed(index: int):
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - defensive
        raise RuntimeError("worker has no published state; pool misconfigured")
    payload, worker, groups = state
    return worker(payload, groups[index])


def run_groups(
    payload,
    worker: Callable,
    groups: Sequence,
    jobs: int,
    on_done: Callable[[int, object, object], None],
) -> None:
    """Run ``worker(payload, group)`` for every group.

    ``on_done(index, group, result)`` fires as each group completes —
    incrementally, in completion order under the pool — so callers can
    persist partial progress. With ``jobs <= 1``, a single group, or no
    fork support, execution happens serially in submission order.

    If a group raises, unstarted groups are cancelled, in-flight groups
    are allowed to finish and are still reported through ``on_done``,
    and the error then propagates.
    """
    groups = list(groups)
    jobs = min(int(jobs), len(groups))
    if jobs > 1 and not fork_available():
        warnings.warn(
            "parallel execution needs the 'fork' start method to ship "
            "work to child processes; running serially instead",
            RuntimeWarning,
            stacklevel=2,
        )
        jobs = 1
    if jobs <= 1:
        for index, group in enumerate(groups):
            on_done(index, group, worker(payload, group))
        return

    global _WORKER_STATE
    # save/restore rather than reset: a nested run_groups (e.g. a
    # GridSearchCV n_jobs fan-out inside an executor worker) must leave
    # the state this process inherited at fork intact for its next task
    inherited = _WORKER_STATE
    _WORKER_STATE = (payload, worker, groups)
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            futures = {
                pool.submit(_run_indexed, index): index
                for index in range(len(groups))
            }
            reported = set()
            try:
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in finished:
                        result = future.result()
                        index = futures[future]
                        reported.add(future)
                        on_done(index, groups[index], result)
            except BaseException:
                # a failed group must not discard work other processes
                # completed: stop unstarted groups, let in-flight ones
                # finish (pool shutdown waits for them regardless) and
                # report every success before propagating
                for future in futures:
                    future.cancel()
                wait(set(futures))
                for future in futures:
                    if (
                        future not in reported
                        and future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        index = futures[future]
                        on_done(index, groups[index], future.result())
                raise
    finally:
        _WORKER_STATE = inherited


def split_for_balance(groups: List[list], workers: int) -> List[list]:
    """Split the largest groups until every worker can stay busy."""
    groups = [list(group) for group in groups]
    while len(groups) < workers:
        largest = max(groups, key=len)
        if len(largest) < 2:
            break
        groups.remove(largest)
        middle = len(largest) // 2
        groups.extend([largest[:middle], largest[middle:]])
    return groups

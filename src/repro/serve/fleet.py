"""Multi-core serving: a pre-forked worker fleet behind one listen port.

One Python process cannot use more than one core for scoring — the GIL
serializes every ``score_frame`` pass no matter how many handler threads
the HTTP layer spawns. :class:`ServingFleet` scales the serving layer the
way the paper's "millions of users" framing demands: a supervisor forks
``workers`` processes that *share one port*, each running the full
single-process stack (persistent HTTP/1.1 loop + MicroBatcher +
FairnessMonitor) over a pipeline artifact loaded **once, pre-fork** and
shared copy-on-write.

Port sharing has two modes, picked automatically:

* **SO_REUSEPORT** (Linux, modern BSDs) — every worker binds its own
  listening socket to the same address; the kernel hash-balances incoming
  connections across the listening sockets. A dead worker only loses the
  connections already in its accept queue; its replacement binds the same
  port and rejoins the balance group.
* **pre-fork accept** (fallback) — the supervisor binds and listens once
  before forking; workers inherit the socket and all ``accept()`` on it.

The fleet stays *observable as one server*. Each worker exposes its raw
:meth:`~repro.serve.service.ScoringService.state` on a per-worker unix
control socket; hitting ``/metrics`` (or ``/healthz``) on **any** worker
makes that worker collect every sibling's state and answer fleet-wide:
counters are summed (each worker's sample is internally consistent, so
``requests == successes + errors`` survives the sum), per-worker
liveness (pid, uptime, queue depth) is listed, and the per-worker
FairnessMonitor windows are combined with
:meth:`~repro.serve.monitor.FairnessMonitor.from_states` into one merged
fairness view with alerts evaluated at the fleet level.

Lifecycle: the supervisor polls its children and respawns any that die;
``SIGTERM``/``SIGINT`` trigger a graceful drain — workers stop accepting,
finish in-flight requests, flush their MicroBatcher queues (typed errors
for anything undispatchable), then exit; stragglers are killed after
``drain_timeout``.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import tempfile
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import telemetry
from .monitor import FairnessMonitor
from .service import ScoringService, dumps_strict, make_server

SO_REUSEPORT_AVAILABLE = hasattr(socket, "SO_REUSEPORT")
FORK_AVAILABLE = hasattr(os, "fork")

_CONTROL_TIMEOUT = 2.0


# ----------------------------------------------------------------------
# per-worker control channel
# ----------------------------------------------------------------------
class _ControlServer(threading.Thread):
    """Dump-state-on-connect unix socket, served from a worker thread.

    The protocol is one-way: connect, receive one strict-JSON document
    (the worker's ``service.state()``), EOF. The dump goes through
    :func:`~repro.serve.service.dumps_strict` so a NaN in any monitor
    slot serializes as ``null`` instead of the invalid bare ``NaN``
    token that would break fleet-wide ``/metrics`` aggregation.
    """

    def __init__(self, path: str, state_fn: Callable[[], Dict[str, Any]]):
        super().__init__(name="repro-fleet-control", daemon=True)
        self.path = path
        self.state_fn = state_fn
        if os.path.exists(path):
            os.unlink(path)
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.bind(path)
        self.sock.listen(16)

    def run(self) -> None:
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return  # stop() closed the socket
            try:
                payload = dumps_strict(self.state_fn())
                conn.sendall(payload)
            except Exception:
                # a failed peer poll must never kill the worker
                telemetry.counter("serve.fleet.control_dump_errors").inc()
            finally:
                conn.close()

    def stop(self) -> None:
        try:
            self.sock.close()
        finally:
            if os.path.exists(self.path):
                try:
                    os.unlink(self.path)
                # lint: allow(silent-except) -- best-effort shutdown cleanup;
                # a leftover socket file is re-unlinked by the next bind
                except OSError:
                    pass


def _read_control_state(path: str, timeout: float = _CONTROL_TIMEOUT):
    """One worker's state dict, or ``None`` if it cannot be reached."""
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout)
            sock.connect(path)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        return json.loads(b"".join(chunks).decode("utf-8"))
    except (OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# fleet-wide aggregation (runs inside whichever worker got the request)
# ----------------------------------------------------------------------
class FleetView:
    """A worker's window onto its siblings, wired into ScoringService.

    Set as ``service.fleet``; :meth:`ScoringService.health` and
    :meth:`ScoringService.metrics` delegate here so any worker can answer
    for the whole fleet.
    """

    def __init__(self, index: int, control_paths: List[str]):
        self.index = index
        self.control_paths = list(control_paths)

    @property
    def size(self) -> int:
        return len(self.control_paths)

    def states(self, service: ScoringService) -> List[Optional[Dict[str, Any]]]:
        """Every worker's state in index order (``None`` = unreachable).

        The handling worker reads its own state directly — its control
        socket would work too, but the local call cannot fail.
        """
        return [
            service.state()
            if index == self.index
            else _read_control_state(path)
            for index, path in enumerate(self.control_paths)
        ]

    def health(self, service: ScoringService) -> Dict[str, Any]:
        states = self.states(service)
        workers = [self._liveness(i, s) for i, s in enumerate(states)]
        alive = sum(1 for s in states if s is not None)
        return {
            "fleet": {
                "size": self.size,
                "worker_index": self.index,
                "workers_alive": alive,
            },
            "workers": workers,
        }

    def metrics(self, service: ScoringService) -> Dict[str, Any]:
        states = self.states(service)
        reachable = [s for s in states if s is not None]
        out: Dict[str, Any] = {
            "fleet": {
                "size": self.size,
                "worker_index": self.index,
                "workers_alive": len(reachable),
            },
            "requests": sum(s["requests"] for s in reachable),
            "successes": sum(s["successes"] for s in reachable),
            "errors": sum(s["errors"] for s in reachable),
            "records_scored": sum(s["records_scored"] for s in reachable),
            "workers": [self._liveness(i, s) for i, s in enumerate(states)],
        }
        batching = [s["batching"] for s in reachable if "batching" in s]
        if batching:
            dispatched = sum(b["batches_dispatched"] for b in batching)
            coalesced = sum(b["records_batched"] for b in batching)
            out["batching"] = {
                "batches_dispatched": dispatched,
                "records_batched": coalesced,
                "mean_batch_size": (
                    coalesced / dispatched if dispatched else 0.0
                ),
                "queue_depth": sum(b["queue_depth"] for b in batching),
            }
        monitor_states = [s["monitor"] for s in reachable if "monitor" in s]
        if monitor_states:
            merged = FairnessMonitor.from_states(monitor_states)
            snapshot = merged.snapshot()
            out["monitor"] = snapshot
            out["alerts"] = [
                alert.describe() for alert in merged.check(snapshot)
            ]
        out["handler_errors"] = sum(
            s.get("handler_errors", 0) for s in reachable
        )
        telemetry_states = [
            s["telemetry"]
            for s in reachable
            if isinstance(s.get("telemetry"), dict)
        ]
        if telemetry_states:
            out["telemetry"] = telemetry.merge_states(telemetry_states)
        return out

    @staticmethod
    def _liveness(index: int, state: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        if state is None:
            return {"index": index, "status": "unreachable"}
        summary = {
            "index": index,
            "status": "ok",
            "pid": state["pid"],
            "uptime_seconds": state["uptime_seconds"],
            "queue_depth": state["queue_depth"],
            "inflight": state["inflight"],
            "requests": state["requests"],
            "successes": state["successes"],
            "errors": state["errors"],
            "records_scored": state["records_scored"],
        }
        if "latency_ms" in state:
            summary["latency_ms"] = state["latency_ms"]
        return summary


# ----------------------------------------------------------------------
# supervisor
# ----------------------------------------------------------------------
class ServingFleet:
    """Fork-and-supervise ``workers`` scoring processes on one port.

    ``service_factory`` is called **inside each child after fork** to
    build that worker's :class:`ScoringService` — so per-worker state
    (monitor windows, batching queues, dispatcher threads) is born in the
    child, while everything the factory closes over (the loaded pipeline
    artifact, typically hundreds of megabytes of model state) was
    materialized once pre-fork and is shared copy-on-write.
    """

    def __init__(
        self,
        service_factory: Callable[[], ScoringService],
        host: str = "127.0.0.1",
        port: int = 8080,
        workers: int = 2,
        reuse_port: Optional[bool] = None,
        drain_timeout: float = 10.0,
        respawn: bool = True,
        log: Optional[Callable[[str], None]] = None,
    ):
        if not FORK_AVAILABLE:
            raise RuntimeError(
                "ServingFleet needs os.fork(); use --workers 1 on this platform"
            )
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.service_factory = service_factory
        self.host = host
        self.port = port
        self.workers = int(workers)
        self.reuse_port = (
            SO_REUSEPORT_AVAILABLE if reuse_port is None else bool(reuse_port)
        )
        if self.reuse_port and not SO_REUSEPORT_AVAILABLE:
            raise RuntimeError("SO_REUSEPORT is not available on this platform")
        self.drain_timeout = float(drain_timeout)
        self.respawn = respawn
        self._log = log or (lambda message: None)
        self._children: Dict[int, int] = {}  # worker index -> pid
        self._listen_sock: Optional[socket.socket] = None
        self._control_dir: Optional[str] = None
        self.control_paths: List[str] = []
        self._supervisor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._stop_requested = threading.Event()

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        return "SO_REUSEPORT" if self.reuse_port else "pre-fork accept"

    def worker_pids(self) -> List[int]:
        return [self._children[i] for i in sorted(self._children)]

    def start(self) -> Tuple[str, int]:
        """Bind, fork the fleet, start supervising; returns (host, port)."""
        if self.reuse_port:
            # bind (never listen!) a placeholder to resolve port 0 and keep
            # the address reserved across worker restarts; only listening
            # REUSEPORT sockets receive connections, so this socket never
            # steals one
            self._listen_sock = self._bound_socket(listen=False)
        else:
            # classic pre-fork: one listening socket, inherited by every
            # worker; the supervisor keeps it open so respawned workers
            # inherit it too
            self._listen_sock = self._bound_socket(listen=True)
        self.host, self.port = self._listen_sock.getsockname()[:2]
        self._control_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        self.control_paths = [
            os.path.join(self._control_dir, f"worker-{index}.sock")
            for index in range(self.workers)
        ]
        for index in range(self.workers):
            self._spawn(index)
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-fleet-supervisor", daemon=True
        )
        self._supervisor.start()
        self._log(
            f"fleet up: {self.workers} workers on http://{self.host}:"
            f"{self.port} ({self.mode})"
        )
        return self.host, self.port

    def request_stop(self) -> None:
        """Signal-handler-safe: ask :meth:`wait` to run the shutdown."""
        self._stop_requested.set()

    def wait(self) -> None:
        """Block until :meth:`request_stop`, then stop the fleet."""
        try:
            self._stop_requested.wait()
        finally:
            self.stop()

    def stop(self) -> None:
        """Graceful drain: SIGTERM workers, wait, SIGKILL stragglers."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        self._stop_requested.set()
        for pid in self.worker_pids():
            self._signal(pid, signal.SIGTERM)
        deadline = time.monotonic() + self.drain_timeout + 5.0
        pending = dict(self._children)
        while pending and time.monotonic() < deadline:
            for index, pid in list(pending.items()):
                if self._reap(pid):
                    del pending[index]
            if pending:
                time.sleep(0.05)
        for index, pid in pending.items():
            self._log(f"worker {index} (pid {pid}) ignored drain; killing")
            self._signal(pid, signal.SIGKILL)
            self._reap(pid, block=True)
        self._children.clear()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        if self._listen_sock is not None:
            self._listen_sock.close()
            self._listen_sock = None
        for path in self.control_paths:
            if os.path.exists(path):
                try:
                    os.unlink(path)
                # lint: allow(silent-except) -- best-effort removal of
                # per-worker control sockets in a tempdir at shutdown
                except OSError:
                    pass
        if self._control_dir is not None and os.path.isdir(self._control_dir):
            try:
                os.rmdir(self._control_dir)
            # lint: allow(silent-except) -- the tempdir may be non-empty if
            # a worker was SIGKILLed mid-drain; the OS tempdir reaper owns
            # leftovers
            except OSError:
                pass
        self._log("fleet stopped")

    # ------------------------------------------------------------------
    def _bound_socket(self, listen: bool) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if self.reuse_port:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.host, self.port))
            if listen:
                sock.listen(128)
        except BaseException:
            sock.close()
            raise
        return sock

    def _spawn(self, index: int) -> None:
        pid = os.fork()
        if pid == 0:
            self._worker_main(index)  # never returns
            os._exit(1)  # pragma: no cover - unreachable
        self._children[index] = pid

    def _supervise(self) -> None:
        """Respawn dead workers until the fleet is asked to stop."""
        while not self._stopping.is_set():
            for index, pid in list(self._children.items()):
                if not self._reap(pid):
                    continue
                if self._stopping.is_set():
                    break
                if self._children.get(index) != pid:
                    continue  # already replaced
                if self.respawn:
                    self._log(f"worker {index} (pid {pid}) died; respawning")
                    self._spawn(index)
                else:
                    del self._children[index]
            time.sleep(0.2)

    def _reap(self, pid: int, block: bool = False) -> bool:
        """True once ``pid`` has exited (and has been wait()ed on)."""
        try:
            done, _ = os.waitpid(pid, 0 if block else os.WNOHANG)
        except ChildProcessError:
            return True  # already reaped
        return done == pid

    @staticmethod
    def _signal(pid: int, signum: int) -> None:
        try:
            os.kill(pid, signum)
        # lint: allow(silent-except) -- the worker already exited, which is
        # exactly what the signal was asking for
        except ProcessLookupError:
            pass

    # ------------------------------------------------------------------
    # child process
    # ------------------------------------------------------------------
    def _worker_main(self, index: int) -> None:
        """Everything a worker does, from fork to ``os._exit``."""
        try:
            stop = threading.Event()
            signal.signal(signal.SIGTERM, lambda *_: stop.set())
            # the supervisor turns Ctrl-C into a graceful SIGTERM; a raw
            # KeyboardInterrupt mid-drain would defeat that
            signal.signal(signal.SIGINT, signal.SIG_IGN)

            service = self.service_factory()
            service.fleet = FleetView(index, self.control_paths)
            if self.reuse_port:
                # the supervisor's placeholder is not this worker's problem
                if self._listen_sock is not None:
                    self._listen_sock.close()
                server = make_server(
                    service, host=self.host, port=self.port, reuse_port=True
                )
            else:
                server = make_server(service, sock=self._listen_sock)
            control = _ControlServer(self.control_paths[index], service.state)
            control.start()

            serve_thread = threading.Thread(
                target=server.serve_forever,
                name=f"repro-fleet-worker-{index}",
                daemon=True,
            )
            serve_thread.start()
            stop.wait()

            # graceful drain: stop accepting, let in-flight requests finish
            # (responses are single buffered writes, so nothing is ever
            # half-written), flush the MicroBatcher queue, then leave
            service.draining = True
            server.shutdown()
            service.drain(self.drain_timeout)
            control.stop()
            server.server_close()
        except Exception as error:  # pragma: no cover - crash path
            telemetry.log_line(
                f"[repro.serve.fleet] worker {index} crashed: "
                f"{type(error).__name__}: {error}",
                force=True,
            )
            os._exit(1)
        os._exit(0)

"""Stdlib HTTP scoring endpoint (no framework, no new dependencies).

Routes::

    GET  /healthz   liveness + model identity
    GET  /metrics   request counters, latency stats, monitor snapshot+alerts
    POST /score     {"records": [{...}, ...]} or a single record object
                    -> {"labels": [...], "scores": [...], ...}

Built on :class:`http.server.ThreadingHTTPServer`: one thread per
connection, which the read-only numpy scoring path handles safely; the
monitor guards its window with a lock. Single records go through the
engine's frame-free fast path, batches through the vectorized frame path.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..frame import DataFrame
from .monitor import FairnessMonitor
from .scoring import ScoringEngine

MAX_BODY_BYTES = 16 * 1024 * 1024


class ScoringService:
    """Request-handling core, independent of the HTTP plumbing (testable)."""

    def __init__(
        self,
        engine: ScoringEngine,
        model_id: str = "unknown",
        monitor: Optional[FairnessMonitor] = None,
    ):
        self.engine = engine
        self.model_id = model_id
        if monitor is not None:
            self.engine.monitor = monitor
        self.monitor = self.engine.monitor
        self._lock = threading.Lock()
        self._requests = 0
        self._records_scored = 0
        self._errors = 0
        self._latencies: List[float] = []
        self._started_at = time.time()

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        spec = self.engine.pipeline.spec
        return {
            "status": "ok",
            "model_id": self.model_id,
            "dataset": spec.name,
            "protected_attribute": self.engine.pipeline.protected_attribute,
            "schema_fingerprint": self.engine.pipeline.schema_fingerprint(),
            "uptime_seconds": time.time() - self._started_at,
        }

    def metrics(self) -> Dict[str, Any]:
        with self._lock:
            latencies = sorted(self._latencies[-1000:])
            out: Dict[str, Any] = {
                "requests": self._requests,
                "records_scored": self._records_scored,
                "errors": self._errors,
            }
        if latencies:
            out["latency_ms"] = {
                "p50": _percentile(latencies, 0.50),
                "p95": _percentile(latencies, 0.95),
                "max": latencies[-1],
            }
        if self.monitor is not None:
            snapshot = self.monitor.snapshot()
            out["monitor"] = snapshot
            out["alerts"] = [
                alert.describe() for alert in self.monitor.check(snapshot)
            ]
        return out

    def score(self, payload: Any) -> Dict[str, Any]:
        """Score a parsed JSON payload (single record or batch)."""
        started = time.time()
        try:
            if isinstance(payload, dict) and "records" in payload:
                records = payload["records"]
                if not isinstance(records, list):
                    raise ValueError('"records" must be a list of objects')
                result = self._score_batch(records)
            elif isinstance(payload, dict):
                result = self.engine.score_record(payload)
                result = {"records_scored": 1, **result}
            else:
                raise ValueError(
                    "payload must be a record object or {'records': [...]}"
                )
        except Exception:
            with self._lock:
                self._errors += 1
            raise
        finally:
            elapsed = (time.time() - started) * 1000.0
            with self._lock:
                self._requests += 1
                self._latencies.append(elapsed)
                if len(self._latencies) > 10000:
                    del self._latencies[: len(self._latencies) - 1000]
        with self._lock:
            self._records_scored += result.get("records_scored", 0)
        return result

    def _score_batch(self, records: List[Dict[str, Any]]) -> Dict[str, Any]:
        if not records:
            return {"records_scored": 0, "labels": [], "scores": []}
        spec = self.engine.pipeline.spec
        kinds = spec.column_kinds()
        names = [n for n in kinds if any(n in r for r in records)]
        data = {name: [r.get(name) for r in records] for name in names}
        frame = DataFrame.from_dict(
            data, kinds={name: kinds[name] for name in names}
        )
        batch = self.engine.score_frame(frame)
        out: Dict[str, Any] = {
            "records_scored": batch.num_scored,
            "labels": [float(v) for v in batch.labels],
            "scores": None
            if batch.scores is None
            else [float(v) for v in batch.scores],
        }
        if not batch.row_mask.all():
            out["scored_rows"] = [int(i) for i in batch.row_mask.nonzero()[0]]
        return out


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
def make_server(
    service: ScoringService, host: str = "127.0.0.1", port: int = 8080
) -> ThreadingHTTPServer:
    """Build a ready-to-serve ThreadingHTTPServer bound to the service."""

    class Handler(BaseHTTPRequestHandler):
        # silence per-request stderr logging; the service keeps counters
        def log_message(self, format, *args):  # noqa: A002
            pass

        def _respond(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload, allow_nan=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802
            if self.path == "/healthz":
                self._respond(200, service.health())
            elif self.path == "/metrics":
                self._respond(200, service.metrics())
            else:
                self._respond(404, {"error": f"no route {self.path}"})

        def do_POST(self):  # noqa: N802
            if self.path != "/score":
                self._respond(404, {"error": f"no route {self.path}"})
                return
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0 or length > MAX_BODY_BYTES:
                self._respond(400, {"error": "missing or oversized request body"})
                return
            try:
                payload = json.loads(self.rfile.read(length).decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                self._respond(400, {"error": f"invalid JSON: {error}"})
                return
            try:
                self._respond(200, service.score(payload))
            except (KeyError, ValueError, TypeError) as error:
                self._respond(422, {"error": str(error)})
            except Exception as error:  # pragma: no cover - defensive
                self._respond(500, {"error": f"{type(error).__name__}: {error}"})

    return ThreadingHTTPServer((host, port), Handler)


def _percentile(sorted_values: List[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]

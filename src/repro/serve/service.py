"""Stdlib HTTP scoring endpoint (no framework, no new dependencies).

Routes::

    GET  /healthz   liveness + model identity
    GET  /metrics   request counters, latency stats, monitor snapshot+alerts
    POST /score     {"records": [{...}, ...]} or a single record object
                    -> {"labels": [...], "scores": [...], ...}

Built on :class:`http.server.ThreadingHTTPServer` with keep-alive
(HTTP/1.1), buffered responses, and ``TCP_NODELAY`` — without those, the
unbuffered header writes of the stdlib handler interact with Nagle's
algorithm and delayed ACKs to stall every persistent-connection response
by tens of milliseconds. Connection threads only parse HTTP and wait;
single-record scoring is coalesced by a :class:`~repro.serve.batching.
MicroBatcher` into vectorized ``score_frame`` calls (set ``max_batch=1``
to score inline, thread-per-request style). Batch payloads are already
vectorized and go straight to the engine.

All responses are strict JSON: non-finite floats (NaN/Infinity) are
encoded as ``null``, never as the bare ``NaN`` tokens ``json.dumps``
emits by default, which strict parsers (``JSON.parse``, most non-Python
clients) reject.
"""

from __future__ import annotations

import json
import math
import os
import socket
import sys
import threading
import time
from http.server import ThreadingHTTPServer
from socketserver import StreamRequestHandler
from typing import Any, Dict, List, Optional

from .. import telemetry
from .batching import BatcherClosed, MicroBatcher, ServiceOverloaded
from .monitor import FairnessMonitor
from .scoring import ScoringEngine, records_to_frame

MAX_BODY_BYTES = 16 * 1024 * 1024

#: connection-teardown errors are routine under load; this guard keeps an
#: error storm visible (one structured line per token, a counter always)
#: without flooding stderr
_HANDLER_ERROR_LOG = telemetry.RateLimitedLog(
    rate=5.0, burst=10, suppressed_counter="serve.handler_errors_suppressed"
)


def json_safe(value: Any) -> Any:
    """``value`` with every non-finite float replaced by ``None``.

    ``json.dumps(..., allow_nan=True)`` emits bare ``NaN``/``Infinity``
    tokens, which are not JSON; a monitor window with an undefined metric
    (say, disparate impact with an empty privileged group) must not make
    the whole /metrics response unparseable to strict clients.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value


def dumps_strict(payload: Any) -> bytes:
    """Serialize to strict (RFC 8259) JSON bytes; non-finite floats -> null.

    Non-finite values are rare, so the common case serializes directly
    (``allow_nan=False`` raises on them) and only the failure pays for the
    recursive :func:`json_safe` rebuild.
    """
    try:
        return json.dumps(payload, allow_nan=False).encode("utf-8")
    except ValueError:
        return json.dumps(json_safe(payload), allow_nan=False).encode("utf-8")


class ScoringService:
    """Request-handling core, independent of the HTTP plumbing (testable).

    ``max_batch`` > 1 routes single-record payloads through a
    :class:`MicroBatcher` (bounded queue + dispatcher thread) so concurrent
    point queries are scored in one vectorized pass; ``max_batch=1``
    preserves the inline thread-per-request behavior.
    """

    def __init__(
        self,
        engine: ScoringEngine,
        model_id: str = "unknown",
        monitor: Optional[FairnessMonitor] = None,
        max_batch: int = 1,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
    ):
        self.engine = engine
        self.model_id = model_id
        if monitor is not None:
            self.engine.monitor = monitor
        self.monitor = self.engine.monitor
        self._batcher: Optional[MicroBatcher] = None
        if max_batch > 1:
            self._batcher = MicroBatcher(
                engine,
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
                max_queue=max_queue,
            )
        self._lock = threading.Lock()
        self._requests = 0  # guarded-by: _lock
        self._records_scored = 0  # guarded-by: _lock
        self._errors = 0  # guarded-by: _lock
        self._inflight = 0  # guarded-by: _lock
        self._latencies: List[float] = []  # guarded-by: _lock
        self._started_at = time.time()
        # set by the fleet layer: a FleetView makes /healthz and /metrics
        # aggregate across workers; draining=True closes keep-alive
        # connections after each response during graceful shutdown
        self.fleet: Optional[Any] = None
        self.draining = False

    def close(self) -> None:
        """Stop the batching dispatcher (no-op for inline services)."""
        if self._batcher is not None:
            self._batcher.close()

    def drain(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: wait out in-flight work, then close.

        Blocks until no request is being scored and the batching queue is
        empty (or ``timeout`` expires), then closes the batcher — whose own
        drain contract flushes anything still queued and fails leftovers
        with a typed error. Callers stop accepting new connections first;
        this only waits for work already in the building.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                inflight = self._inflight
            depth = 0.0
            if self._batcher is not None:
                depth = self._batcher.stats()["queue_depth"]
            if inflight == 0 and depth == 0:
                break
            time.sleep(0.01)
        self.close()

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        spec = self.engine.pipeline.spec
        out = {
            "status": "ok",
            "model_id": self.model_id,
            "dataset": spec.name,
            "protected_attribute": self.engine.pipeline.protected_attribute,
            "schema_fingerprint": self.engine.pipeline.schema_fingerprint(),
            "uptime_seconds": time.time() - self._started_at,
        }
        if self.fleet is not None:
            out.update(self.fleet.health(self))
        return out

    def metrics(self) -> Dict[str, Any]:
        if self.fleet is not None:
            return self.fleet.metrics(self)
        return self.local_metrics()

    def local_metrics(self) -> Dict[str, Any]:
        with self._lock:
            latencies = sorted(self._latencies[-1000:])
            out: Dict[str, Any] = {
                "requests": self._requests,
                "records_scored": self._records_scored,
                "errors": self._errors,
            }
        if latencies:
            out["latency_ms"] = {
                "p50": _percentile(latencies, 0.50),
                "p95": _percentile(latencies, 0.95),
                "max": latencies[-1],
            }
        if self._batcher is not None:
            out["batching"] = self._batcher.stats()
        if self.monitor is not None:
            snapshot = self.monitor.snapshot()
            out["monitor"] = snapshot
            out["alerts"] = [
                alert.describe() for alert in self.monitor.check(snapshot)
            ]
        out["handler_errors"] = telemetry.counter("serve.handler_errors").value
        out["telemetry"] = telemetry.metrics_state()
        return out

    def state(self) -> Dict[str, Any]:
        """Raw per-worker state for fleet aggregation (control socket).

        Counters are sampled under one lock acquisition, so the invariant
        ``requests == successes + errors`` holds within every sample — and
        therefore in any sum of samples across workers.
        """
        with self._lock:
            latencies = sorted(self._latencies[-1000:])
            out: Dict[str, Any] = {
                "pid": os.getpid(),
                "requests": self._requests,
                "successes": self._requests - self._errors,
                "errors": self._errors,
                "records_scored": self._records_scored,
                "inflight": self._inflight,
                "uptime_seconds": time.time() - self._started_at,
            }
        if latencies:
            out["latency_ms"] = {
                "p50": _percentile(latencies, 0.50),
                "p95": _percentile(latencies, 0.95),
                "max": latencies[-1],
            }
        out["queue_depth"] = 0.0
        if self._batcher is not None:
            stats = self._batcher.stats()
            out["batching"] = stats
            out["queue_depth"] = stats["queue_depth"]
        if self.monitor is not None:
            out["monitor"] = self.monitor.state()
        out["handler_errors"] = telemetry.counter("serve.handler_errors").value
        out["telemetry"] = telemetry.metrics_state()
        return out

    def score(self, payload: Any) -> Dict[str, Any]:
        """Score a parsed JSON payload (single record or batch)."""
        started = time.time()
        result: Optional[Dict[str, Any]] = None
        with self._lock:
            self._inflight += 1
        try:
            if isinstance(payload, dict) and "records" in payload:
                records = payload["records"]
                if not isinstance(records, list):
                    raise ValueError('"records" must be a list of objects')
                result = self._score_batch(records)
            elif isinstance(payload, dict):
                if self._batcher is not None:
                    result = self._batcher.score(payload)
                else:
                    result = self.engine.score_record(payload)
                result = {"records_scored": 1, **result}
            else:
                raise ValueError(
                    "payload must be a record object or {'records': [...]}"
                )
            return result
        finally:
            # one locked update per request keeps the /metrics counters
            # mutually consistent: requests == successes + errors always,
            # and records_scored never counts a failed request
            elapsed = (time.time() - started) * 1000.0
            telemetry.histogram(
                "serve.request_latency_ms", telemetry.LATENCY_BOUNDS_MS
            ).observe(elapsed)
            if result is None:
                telemetry.counter("serve.request_errors").inc()
            with self._lock:
                self._inflight -= 1
                self._requests += 1
                if result is None:
                    self._errors += 1
                else:
                    self._records_scored += result.get("records_scored", 0)
                self._latencies.append(elapsed)
                if len(self._latencies) > 10000:
                    del self._latencies[: len(self._latencies) - 1000]

    def _score_batch(self, records: List[Dict[str, Any]]) -> Dict[str, Any]:
        if not records:
            return {"records_scored": 0, "labels": [], "scores": []}
        frame = records_to_frame(self.engine.pipeline.spec, records)
        batch = self.engine.score_frame(frame)
        out: Dict[str, Any] = {
            "records_scored": batch.num_scored,
            "labels": [float(v) for v in batch.labels],
            "scores": None
            if batch.scores is None
            else [float(v) for v in batch.scores],
        }
        if not batch.row_mask.all():
            out["scored_rows"] = [int(i) for i in batch.row_mask.nonzero()[0]]
        return out


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    422: "Unprocessable Entity",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}
_MAX_LINE = 65536


def make_server(
    service: ScoringService,
    host: str = "127.0.0.1",
    port: int = 8080,
    sock: Optional[socket.socket] = None,
    reuse_port: bool = False,
) -> ThreadingHTTPServer:
    """Build a ready-to-serve ThreadingHTTPServer bound to the service.

    The connection handler is a minimal HTTP/1.1 loop instead of
    :class:`BaseHTTPRequestHandler`: persistent connections (one thread
    serves many requests, no per-request TCP setup), single-write buffered
    responses with ``TCP_NODELAY`` (the stdlib handler's unbuffered header
    writes interact with Nagle + delayed ACKs into ~40ms stalls per
    keep-alive response), and a two-field header scan — this endpoint only
    ever needs ``Content-Length`` and ``Connection``, so the stdlib's
    email-module header parsing is pure per-request overhead.

    Fleet hooks: pass an already-listening ``sock`` to adopt it instead of
    binding (the pre-fork fallback, where every worker accepts on one
    inherited socket), or ``reuse_port=True`` to bind with
    ``SO_REUSEPORT`` so sibling workers can bind the same address and let
    the kernel spread connections across them.
    """

    class Handler(StreamRequestHandler):
        wbufsize = 64 * 1024  # buffer each response into one TCP segment
        disable_nagle_algorithm = True
        # idle keep-alive connections time out instead of pinning a handler
        # thread forever when a peer dies without closing
        timeout = 120

        def handle(self):
            try:
                while self._one_request():
                    pass
            except (ConnectionError, socket.timeout, BrokenPipeError):
                # client went away; nothing to answer, but make the
                # disconnect visible to fleet-level dashboards
                telemetry.counter("serve.client_disconnects").inc()

        # --------------------------------------------------------------
        def _one_request(self) -> bool:
            """Serve one request; return True to keep the connection."""
            line = self.rfile.readline(_MAX_LINE + 1)
            if not line:
                return False
            if len(line) > _MAX_LINE:
                self._respond(431, {"error": "request line too long"}, False)
                return False
            try:
                method, path, version = line.split()
            except ValueError:
                self._respond(400, {"error": "malformed request line"}, False)
                return False
            keep_alive_default = version != b"HTTP/1.0"
            keep_alive = keep_alive_default
            content_length = 0
            while True:
                header = self.rfile.readline(_MAX_LINE + 1)
                if not header or len(header) > _MAX_LINE:
                    self._respond(431, {"error": "request headers too long"}, False)
                    return False
                if header in (b"\r\n", b"\n"):
                    break
                name, colon, value = header.partition(b":")
                if not colon:
                    continue
                name = name.strip().lower()
                if name == b"content-length":
                    try:
                        content_length = int(value)
                    except ValueError:
                        self._respond(400, {"error": "bad Content-Length"}, False)
                        return False
                elif name == b"connection":
                    token = value.strip().lower()
                    keep_alive = (
                        token != b"close"
                        if keep_alive_default
                        else token == b"keep-alive"
                    )
                elif name == b"expect" and b"100-continue" in value.lower():
                    self.wfile.write(b"HTTP/1.1 100 Continue\r\n\r\n")
                    self.wfile.flush()
            return self._dispatch(
                method, path.decode("latin-1"), content_length, keep_alive
            )

        def _dispatch(
            self, method: bytes, path: str, length: int, keep_alive: bool
        ) -> bool:
            if method == b"GET":
                route, _, query = path.partition("?")
                try:
                    if route == "/healthz":
                        return self._respond(200, service.health(), keep_alive)
                    if route == "/metrics":
                        if "format=prometheus" in query:
                            return self._respond_text(
                                200,
                                render_exposition(service.metrics()),
                                keep_alive,
                            )
                        return self._respond(200, service.metrics(), keep_alive)
                except Exception as error:  # pragma: no cover - defensive
                    return self._respond(
                        500,
                        {"error": f"{type(error).__name__}: {error}"},
                        keep_alive,
                    )
                return self._respond(404, {"error": f"no route {path}"}, keep_alive)
            if method != b"POST":
                route = method.decode("latin-1")
                return self._respond(
                    501, {"error": f"unsupported method {route}"}, False
                )
            if path != "/score":
                if 0 < length <= MAX_BODY_BYTES:
                    self.rfile.read(length)  # keep the connection in sync
                    return self._respond(
                        404, {"error": f"no route {path}"}, keep_alive
                    )
                return self._respond(404, {"error": f"no route {path}"}, False)
            if length <= 0 or length > MAX_BODY_BYTES:
                # the body was never read; drop the connection so leftover
                # bytes cannot be parsed as the next keep-alive request
                return self._respond(
                    400, {"error": "missing or oversized request body"}, False
                )
            try:
                payload = json.loads(self.rfile.read(length).decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                return self._respond(
                    400, {"error": f"invalid JSON: {error}"}, keep_alive
                )
            try:
                return self._respond(200, service.score(payload), keep_alive)
            except BatcherClosed as error:
                # shutting down: answer, then close so the client reconnects
                # (and lands on a surviving worker in fleet mode)
                return self._respond(503, {"error": str(error)}, False)
            except ServiceOverloaded as error:
                return self._respond(503, {"error": str(error)}, keep_alive)
            except (KeyError, ValueError, TypeError) as error:
                return self._respond(422, {"error": str(error)}, keep_alive)
            except Exception as error:  # pragma: no cover - defensive
                return self._respond(
                    500, {"error": f"{type(error).__name__}: {error}"}, keep_alive
                )

        def _respond(
            self, status: int, payload: Dict[str, Any], keep_alive: bool
        ) -> bool:
            return self._send(
                status, dumps_strict(payload), "application/json", keep_alive
            )

        def _respond_text(
            self, status: int, text: str, keep_alive: bool
        ) -> bool:
            return self._send(
                status,
                text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
                keep_alive,
            )

        def _send(
            self, status: int, body: bytes, content_type: str, keep_alive: bool
        ) -> bool:
            if service.draining:
                # finish this response, then hand the connection back so
                # the worker can exit without stranding keep-alive peers
                keep_alive = False
            reason = _REASONS.get(status, "Unknown")
            connection = "keep-alive" if keep_alive else "close"
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {connection}\r\n"
                "\r\n"
            ).encode("latin-1")
            self.wfile.write(head + body)
            self.wfile.flush()
            return keep_alive

    class Server(ThreadingHTTPServer):
        daemon_threads = True
        # queue bursts at the socket instead of refusing connections while
        # every handler thread is busy
        request_queue_size = 128

        def handle_error(self, request, client_address):
            # connection teardown races are routine under load; everything
            # else is already answered with a 500 by the handler. Count
            # every one (an error storm must show in /metrics) and log a
            # structured line while the rate budget lasts.
            handle_connection_error(client_address)

    server = Server((host, port), Handler, bind_and_activate=False)
    if sock is not None:
        # adopt an inherited, already-listening socket (pre-fork fallback)
        server.socket.close()
        server.socket = sock
        server.server_address = sock.getsockname()
        return server
    try:
        if reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise OSError("SO_REUSEPORT is not available on this platform")
            server.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
        server.server_bind()
        server.server_activate()
    except BaseException:
        server.server_close()
        raise
    return server


def handle_connection_error(client_address: Any) -> None:
    """Record one connection-handler failure (called from an ``except``).

    The telemetry counter makes error storms visible in ``/metrics``
    (``handler_errors``, summed fleet-wide); the structured stderr line is
    token-bucket rate-limited so a storm reports its first few instances
    plus a suppressed count instead of flooding the tty.
    """
    telemetry.counter("serve.handler_errors").inc()
    error = sys.exc_info()[1]
    address = None
    if isinstance(client_address, tuple) and len(client_address) >= 2:
        address = f"{client_address[0]}:{client_address[1]}"
    _HANDLER_ERROR_LOG.log(
        {
            "event": "serve.handler_error",
            "pid": os.getpid(),
            "client": address,
            "error": (
                f"{type(error).__name__}: {error}"
                if error is not None
                else "unknown"
            ),
            "suppressed": _HANDLER_ERROR_LOG.suppressed,
        }
    )


def render_exposition(metrics: Dict[str, Any]) -> str:
    """Prometheus text form of a ``/metrics`` payload (local or fleet).

    The service's own locked counters map onto ``serve_*`` series; the
    embedded telemetry registry state (already fleet-merged when the
    payload came through a FleetView) renders as-is. The two never share
    a name, so the overlay cannot double-count.
    """
    base = {
        "counters": {
            "serve.requests": int(metrics.get("requests", 0)),
            "serve.errors": int(metrics.get("errors", 0)),
            "serve.records_scored": int(metrics.get("records_scored", 0)),
        },
        "gauges": {},
        "histograms": {},
    }
    fleet = metrics.get("fleet")
    if isinstance(fleet, dict):
        base["gauges"]["serve.fleet_size"] = float(fleet.get("size", 0))
        base["gauges"]["serve.workers_alive"] = float(
            fleet.get("workers_alive", 0)
        )
    state = metrics.get("telemetry")
    merged = telemetry.merge_states([base, state]) if state else base
    return telemetry.render_prometheus(merged)


def _percentile(sorted_values: List[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]

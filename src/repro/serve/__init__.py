"""Model serving: pipeline artifacts, registry, scoring engine, monitoring.

The experiment layer (PRs 1–3) produces fitted pipelines that used to die
with the process. This subsystem makes them durable and usable:

* :mod:`~repro.serve.artifacts` — versioned, dependency-free JSON+npz
  serialization of a complete fitted pipeline (no pickle anywhere);
* :mod:`~repro.serve.registry` — file-backed model registry with
  promote/tag/rollback, keyed by the plan layer's ``run_key`` fingerprints;
* :mod:`~repro.serve.scoring` — batch scoring engine over the vectorized
  featurization paths plus a single-record fast path;
* :mod:`~repro.serve.monitor` — sliding-window runtime monitoring of
  accuracy proxies and group fairness metrics with alert thresholds,
  backed by preallocated NumPy ring buffers;
* :mod:`~repro.serve.batching` — micro-batching core that coalesces
  concurrent single-record requests into vectorized scoring passes;
* :mod:`~repro.serve.service` — a stdlib HTTP JSON scoring endpoint
  (keep-alive, strict JSON, bounded-queue load shedding);
* :mod:`~repro.serve.fleet` — pre-forked multi-core worker fleet sharing
  one port (SO_REUSEPORT or inherited-socket pre-fork accept) with
  fleet-wide merged monitoring, worker respawn, and graceful drain.
"""

from .artifacts import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    PipelineArtifact,
    load_artifact,
    save_artifact,
    schema_fingerprint,
)
from .batching import BatcherClosed, MicroBatcher, ServiceOverloaded
from .fleet import FleetView, ServingFleet
from .monitor import Alert, FairnessMonitor
from .registry import ModelRegistry
from .scoring import BatchScores, ScoringEngine, records_to_frame
from .service import ScoringService, dumps_strict, json_safe, make_server

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "Alert",
    "BatchScores",
    "BatcherClosed",
    "FairnessMonitor",
    "FleetView",
    "MicroBatcher",
    "ModelRegistry",
    "PipelineArtifact",
    "ScoringEngine",
    "ScoringService",
    "ServingFleet",
    "ServiceOverloaded",
    "dumps_strict",
    "json_safe",
    "load_artifact",
    "make_server",
    "records_to_frame",
    "save_artifact",
    "schema_fingerprint",
]

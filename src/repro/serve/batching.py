"""Micro-batching scoring core: coalesce concurrent point queries.

The HTTP layer is thread-per-connection, so a burst of single-record
``/score`` requests lands as many concurrent ``score_record`` calls — each
paying the full per-call overhead of featurizing, predicting, and
monitoring one row. :class:`MicroBatcher` replaces that with a bounded
request queue and one dispatcher thread that coalesces whatever requests
are waiting (up to ``max_batch``, waiting at most ``max_wait_ms`` for
stragglers) into a single vectorized
:meth:`~repro.serve.scoring.ScoringEngine.score_frame` call. Each request
carries a :class:`concurrent.futures.Future`; handler threads block on
their own future and get either the same response dict ``score_record``
would have produced or a typed error.

Failure semantics:

* a full queue raises :class:`ServiceOverloaded` at submit time (the HTTP
  layer maps it to 503), so saturation produces fast, explicit rejections
  instead of unbounded latency;
* a record the pipeline's handler drops (complete-case analysis) gets the
  same :class:`ValueError` the single-record path raises;
* if the coalesced frame itself fails to score, the batch falls back to
  per-record ``score_record`` calls so each request receives its *own*
  typed error — one malformed record cannot poison its batch-mates;
* :meth:`MicroBatcher.close` has a drain contract: new submissions are
  rejected with :class:`BatcherClosed`, already-queued requests flush
  through final dispatch passes, and anything still queued when the drain
  deadline expires resolves with :class:`BatcherClosed` instead of
  blocking its caller forever.
"""

from __future__ import annotations

import threading
import time
import weakref
from concurrent.futures import Future
from typing import Any, Dict, List, Optional

import numpy as np

from .. import telemetry
from .scoring import DROPPED_RECORD_ERROR, ScoringEngine, records_to_frame


class ServiceOverloaded(RuntimeError):
    """The request queue is full; the caller should shed load (HTTP 503)."""


class BatcherClosed(RuntimeError):
    """The batcher is shut down; the request was rejected, not scored.

    Raised at submit time once :meth:`MicroBatcher.close` has run, and set
    on any future whose request was still queued when the drain deadline
    expired — a typed signal (the HTTP layer maps it to 503 + connection
    close) that the caller should retry against another worker.
    """


class _Request:
    __slots__ = ("record", "future")

    def __init__(self, record: Dict[str, Any]):
        self.record = record
        self.future: Future = Future()


class MicroBatcher:
    """Bounded queue + dispatcher thread feeding one scoring engine."""

    def __init__(
        self,
        engine: ScoringEngine,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.max_queue = int(max_queue)
        self._queue: List[_Request] = []  # guarded-by: _cond
        self._cond = threading.Condition()
        self._closed = False  # guarded-by: _cond
        self._batches_dispatched = 0
        self._coalesced_records = 0
        # live queue-depth gauge, weakly bound: the registry entry must
        # never keep a replaced batcher (its thread, its engine) alive
        ref = weakref.ref(self)
        telemetry.gauge("serve.batch_queue_depth").set_fn(
            lambda: float(len(batcher._queue))
            if (batcher := ref()) is not None
            else 0.0
        )
        self._thread = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(self, record: Dict[str, Any]) -> Future:
        """Enqueue one record; the future resolves to a response dict."""
        request = _Request(record)
        with self._cond:
            if self._closed:
                raise BatcherClosed("MicroBatcher is closed")
            if len(self._queue) >= self.max_queue:
                raise ServiceOverloaded(
                    f"scoring queue full ({self.max_queue} pending requests)"
                )
            self._queue.append(request)
            self._cond.notify()
        return request.future

    def score(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Submit and wait: the blocking call handler threads use."""
        return self.submit(record).result()

    def stats(self) -> Dict[str, float]:
        with self._cond:
            dispatched = self._batches_dispatched
            coalesced = self._coalesced_records
            depth = len(self._queue)
        return {
            "batches_dispatched": float(dispatched),
            "records_batched": float(coalesced),
            "mean_batch_size": (
                coalesced / dispatched if dispatched else 0.0
            ),
            "queue_depth": float(depth),
        }

    def close(self, timeout: float = 10.0) -> None:
        """Stop the dispatcher; drain, then fail anything left with a type.

        The contract, in order:

        1. new submissions are rejected with :class:`BatcherClosed` from
           the moment close() takes the lock;
        2. requests already queued are flushed through the dispatcher's
           final dispatch passes and resolve normally;
        3. if the dispatcher cannot finish within ``timeout`` (a wedged
           scoring engine), every request still queued has its future
           resolved with :class:`BatcherClosed` — no caller is left
           blocking on a future nobody will ever complete. Requests the
           dispatcher already took off the queue stay owned by it and
           resolve with the engine's eventual result or error.

        Idempotent; later calls re-run only the leftover-failing step.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=timeout)
        self._fail_pending()

    def _fail_pending(self) -> None:
        with self._cond:
            leftover = self._queue[:]
            del self._queue[:]
        for request in leftover:
            request.future.set_exception(
                BatcherClosed(
                    "MicroBatcher closed before this request was dispatched"
                )
            )

    # ------------------------------------------------------------------
    # dispatcher side
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            self._dispatch(batch)

    def _collect(self) -> Optional[List[_Request]]:
        """Block for the first request, then coalesce whatever is queued.

        Returns ``None`` only when closed and drained. The policy is
        work-conserving: everything already queued (up to ``max_batch``)
        dispatches immediately — under sustained load requests pile up
        *during* the previous scoring pass, so batches form naturally with
        zero added latency. Only a lone request waits, at most
        ``max_wait``, for a first batch-mate; the moment one arrives the
        queue is drained again and the batch dispatches.
        """
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                self._cond.wait()
            batch = self._take(self.max_batch)
            if len(batch) > 1 or self.max_wait <= 0:
                return batch
            deadline = time.monotonic() + self.max_wait
            while not self._queue and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return batch
                self._cond.wait(remaining)
            batch.extend(self._take(self.max_batch - len(batch)))
            return batch

    def _take(self, limit: int) -> List[_Request]:  # guarded-by: _cond
        taken = self._queue[:limit]
        del self._queue[:limit]
        return taken

    def _dispatch(self, batch: List[_Request]) -> None:
        with self._cond:
            self._batches_dispatched += 1
            self._coalesced_records += len(batch)
        telemetry.histogram(
            "serve.batch_size", telemetry.SIZE_BOUNDS
        ).observe(len(batch))
        if len(batch) == 1:
            self._score_individually(batch)
            return
        try:
            results = self._score_coalesced([r.record for r in batch])
        except Exception:
            # frame-level failure: re-score one by one so every request
            # gets its own typed error instead of a shared frame error
            self._score_individually(batch)
            return
        for request, result in zip(batch, results):
            if isinstance(result, Exception):
                request.future.set_exception(result)
            else:
                request.future.set_result(result)

    def _score_individually(self, batch: List[_Request]) -> None:
        for request in batch:
            try:
                request.future.set_result(self.engine.score_record(request.record))
            except Exception as error:
                request.future.set_exception(error)

    def _score_coalesced(self, records: List[Dict[str, Any]]) -> List[Any]:
        """One vectorized scoring pass; per-record results or typed errors."""
        engine = self.engine
        frame = records_to_frame(engine.pipeline.spec, records)
        scored = engine.score_frame(frame)
        mask = scored.row_mask
        positions = np.cumsum(mask) - 1
        results: List[Any] = []
        for i, kept in enumerate(mask):
            if not kept:
                results.append(ValueError(DROPPED_RECORD_ERROR))
                continue
            j = int(positions[i])
            label = float(scored.labels[j])
            score = None if scored.scores is None else float(scored.scores[j])
            results.append(engine.record_result(label, score))
        return results

"""File-backed model registry with promote/tag/rollback.

Disk layout (everything human-readable, nothing pickled)::

    <root>/
        registry.json              # model index + tag histories
        models/<model_id>/manifest.json
        models/<model_id>/arrays.npz

``model_id`` defaults to the experiment plan's deterministic ``run_key``
fingerprint (:mod:`repro.core.plan`), so a registry entry links back to the
exact :class:`~repro.core.results.ResultsStore` records of the run that
produced it; pipelines exported outside a grid get a content hash instead.

Tags (e.g. ``production``) keep their full promotion history, so
``rollback`` is a constant-time pointer move to the previously promoted
model — the durable-state lesson this subsystem borrows from replicated
data stores.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import time
from typing import Any, Dict, List, Optional

from ..core.results import ResultsStore, RunResult
from .artifacts import PipelineArtifact, load_artifact, save_artifact


class ModelRegistry:
    """Versioned store of exported pipelines on a local filesystem."""

    def __init__(self, root: str, create: bool = True):
        """Open (or, with ``create=True``, initialize) a registry at ``root``.

        Read-only consumers (scoring, serving, listing) should pass
        ``create=False`` so a mistyped path fails loudly instead of
        materializing an empty registry on disk.
        """
        self.root = root
        if not create:
            if not os.path.exists(self.index_path):
                raise FileNotFoundError(
                    f"no model registry at {root!r} (missing registry.json)"
                )
            return
        os.makedirs(self.models_dir, exist_ok=True)
        if not os.path.exists(self.index_path):
            self._write_index({"models": {}, "tags": {}})

    # ------------------------------------------------------------------
    # paths / index
    # ------------------------------------------------------------------
    @property
    def models_dir(self) -> str:
        return os.path.join(self.root, "models")

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "registry.json")

    def model_path(self, model_id: str) -> str:
        return os.path.join(self.models_dir, model_id)

    def _read_index(self) -> Dict[str, Any]:
        with open(self.index_path) as handle:
            return json.load(handle)

    def _write_index(self, index: Dict[str, Any]) -> None:
        tmp = self.index_path + ".tmp"
        with open(tmp, "w") as handle:
            # lint: allow(strict-json) -- the index never crosses the wire:
            # it is read back only by _read_index (Python json.load, which
            # parses NaN), and fairness metrics with empty groups must
            # round-trip as NaN, not null
            json.dump(index, handle, sort_keys=True, indent=1, allow_nan=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.index_path)

    @contextlib.contextmanager
    def _locked(self, timeout: float = 10.0):
        """Advisory cross-process lock around index read-modify-write.

        O_EXCL creation of a ``.lock`` file; concurrent publishers block
        instead of silently dropping each other's index entries.
        """
        lock_path = self.index_path + ".lock"
        deadline = time.time() + timeout
        while True:
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                break
            except FileExistsError:
                if time.time() > deadline:
                    raise TimeoutError(
                        f"registry lock {lock_path} held for over {timeout}s; "
                        "remove it if a writer crashed"
                    ) from None
                time.sleep(0.05)
        try:
            yield
        finally:
            os.close(fd)
            with contextlib.suppress(FileNotFoundError):
                os.unlink(lock_path)

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        pipeline: PipelineArtifact,
        result: Optional[RunResult] = None,
        model_id: Optional[str] = None,
        tags: Optional[List[str]] = None,
        overwrite: bool = False,
    ) -> Dict[str, Any]:
        """Persist a pipeline and index it; returns the registry record.

        ``model_id`` defaults to the pipeline metadata's ``run_key`` (the
        plan fingerprint) and falls back to a digest of the manifest.
        ``result`` links the entry to its experiment metrics.
        """
        manifest = pipeline.to_manifest()
        if model_id is None:
            model_id = pipeline.metadata.get("run_key")
        if model_id is None:
            model_id = _content_fingerprint(manifest["components"])
        model_id = str(model_id)
        separators = [os.sep] + ([os.altsep] if os.altsep else [])
        if any(s in model_id for s in separators) or model_id in (".", ".."):
            raise ValueError(f"invalid model id {model_id!r}")

        record: Dict[str, Any] = {
            "model_id": model_id,
            "dataset": pipeline.spec.name,
            "protected_attribute": pipeline.protected_attribute,
            "schema_fingerprint": manifest["schema_fingerprint"],
            "created_at": time.time(),
            # verification arrays live in the artifact itself; the index
            # stays small, JSON-only metadata
            "metadata": {
                k: v for k, v in pipeline.metadata.items() if k != "verification"
            },
        }
        if result is not None:
            record["metrics"] = {
                "test": dict(result.test_metrics),
                "validation": dict(result.best_candidate.validation_metrics),
            }
            record["components"] = dict(result.components)
            record["random_seed"] = result.random_seed
            if result.run_key:
                record["run_key"] = result.run_key
        elif pipeline.metadata.get("run_key"):
            record["run_key"] = pipeline.metadata["run_key"]

        with self._locked():
            index = self._read_index()
            if model_id in index["models"] and not overwrite:
                raise ValueError(
                    f"model {model_id!r} is already registered; pass "
                    "overwrite=True to replace it"
                )
            directory = self.model_path(model_id)
            if os.path.exists(directory) and overwrite:
                shutil.rmtree(directory)
            save_artifact(directory, manifest)
            index["models"][model_id] = record
            self._write_index(index)
        for tag in tags or ():
            self.promote(model_id, tag)
        return record

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def list_models(self) -> List[Dict[str, Any]]:
        index = self._read_index()
        return sorted(
            index["models"].values(), key=lambda record: record.get("created_at", 0.0)
        )

    def tags(self) -> Dict[str, str]:
        """Current tag → model_id mapping."""
        index = self._read_index()
        return {
            tag: history[-1] for tag, history in index["tags"].items() if history
        }

    def resolve(self, reference: str) -> str:
        """Resolve a model id or tag to a model id."""
        index = self._read_index()
        if reference in index["models"]:
            return reference
        history = index["tags"].get(reference)
        if history:
            return history[-1]
        raise KeyError(
            f"{reference!r} is neither a model id nor a tag; "
            f"models: {sorted(index['models'])}, tags: {sorted(index['tags'])}"
        )

    def get_record(self, reference: str) -> Dict[str, Any]:
        return self._read_index()["models"][self.resolve(reference)]

    def load_pipeline(self, reference: str) -> PipelineArtifact:
        """Reload a pipeline by model id or tag (fresh-process safe)."""
        return PipelineArtifact.load(self.model_path(self.resolve(reference)))

    def load_manifest(self, reference: str) -> Dict[str, Any]:
        return load_artifact(self.model_path(self.resolve(reference)))

    # ------------------------------------------------------------------
    # tag lifecycle
    # ------------------------------------------------------------------
    def promote(self, model_id: str, tag: str = "production") -> None:
        """Point a tag at a model, appending to the tag's history."""
        with self._locked():
            index = self._read_index()
            if model_id not in index["models"]:
                raise KeyError(f"cannot promote unknown model {model_id!r}")
            history = index["tags"].setdefault(tag, [])
            if not history or history[-1] != model_id:
                history.append(model_id)
            self._write_index(index)

    def rollback(self, tag: str = "production") -> str:
        """Drop the tag's current model; returns the restored model id."""
        with self._locked():
            index = self._read_index()
            history = index["tags"].get(tag)
            if not history:
                raise KeyError(f"tag {tag!r} has no promotion history")
            if len(history) < 2:
                raise ValueError(
                    f"tag {tag!r} has no previous model to roll back to "
                    f"(history: {history})"
                )
            history.pop()
            self._write_index(index)
            return history[-1]

    def tag_history(self, tag: str) -> List[str]:
        return list(self._read_index()["tags"].get(tag, []))

    # ------------------------------------------------------------------
    # results linkage
    # ------------------------------------------------------------------
    def results_for(self, reference: str, store: ResultsStore) -> List[RunResult]:
        """Every stored run record matching the model's ``run_key``."""
        record = self.get_record(reference)
        run_key = record.get("run_key")
        if not run_key:
            return []
        return [r for r in store.load(strict=False) if r.run_key == run_key]


def _content_fingerprint(components: Dict[str, Any]) -> str:
    """Deterministic content hash of a manifest's components tree.

    Isolated from :meth:`ModelRegistry.publish` so the canonical-JSON
    payload stays free of wall-clock fields like ``created_at`` — the
    fingerprint must depend only on what the pipeline *is*.
    """
    # lint: allow(strict-json) -- digest input, never wire JSON: a NaN
    # parameter must hash deterministically (the 'NaN' token), not raise
    canonical = json.dumps(
        components, sort_keys=True, default=_digest_default
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


def _digest_default(value):
    """JSON fallback for digesting manifests that still hold arrays."""
    import numpy as np

    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"cannot digest {type(value).__name__}")

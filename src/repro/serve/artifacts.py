"""Versioned, dependency-free serialization of fitted pipelines.

An exported pipeline is a *directory* with exactly two members:

``manifest.json``
    The component tree — every fitted component's :meth:`to_state` payload
    with numeric arrays replaced by ``{"__array__": "a<n>"}`` references —
    plus format/version headers, the input-schema fingerprint, and free-form
    metadata (run_key, metrics, dataset provenance).
``arrays.npz``
    The referenced numeric arrays, stored losslessly by :func:`numpy.savez`.

Why not pickle: a pickle payload executes arbitrary code on load, so a
model pulled from a shared registry would be an RCE vector. This format
reconstructs components only through the explicit class registry in
:mod:`repro.serialize` and stores nothing but JSON scalars and numeric
arrays — object arrays (which numpy can only persist via pickle) are
rejected at save time.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..datasets import DatasetSpec
from ..serialize import restore, state_of

# importing these modules populates the SERIALIZABLE registry with every
# component an artifact may reference
from ..core import interventions as _interventions  # noqa: F401
from ..core import learners as _learners  # noqa: F401
from ..core import missing_values as _missing_values  # noqa: F401
from ..core.featurization import Featurizer  # noqa: F401
from ..learn import encoders as _encoders  # noqa: F401

ARTIFACT_FORMAT = "fairprep-pipeline"
ARTIFACT_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

_ARRAY_KEY = "__array__"


# ----------------------------------------------------------------------
# array hoisting: JSON tree + npz side file
# ----------------------------------------------------------------------
def _pack(tree: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Replace numpy arrays anywhere in a state tree by npz references."""
    if isinstance(tree, np.ndarray):
        if tree.dtype.kind in "OUS":
            raise TypeError(
                "object/string arrays cannot enter an artifact; convert them "
                "to JSON lists in to_state() (the no-pickle contract)"
            )
        key = f"a{len(arrays)}"
        arrays[key] = tree
        return {_ARRAY_KEY: key}
    if isinstance(tree, dict):
        if _ARRAY_KEY in tree:
            raise ValueError(f"state dicts must not use the reserved key {_ARRAY_KEY!r}")
        return {str(k): _pack(v, arrays) for k, v in tree.items()}
    if isinstance(tree, (list, tuple)):
        return [_pack(v, arrays) for v in tree]
    if isinstance(tree, (np.integer,)):
        return int(tree)
    if isinstance(tree, (np.floating,)):
        return float(tree)
    if isinstance(tree, (np.bool_,)):
        return bool(tree)
    return tree


def _unpack(tree: Any, arrays) -> Any:
    """Resolve npz references back into numpy arrays."""
    if isinstance(tree, dict):
        if set(tree.keys()) == {_ARRAY_KEY}:
            return arrays[tree[_ARRAY_KEY]]
        return {k: _unpack(v, arrays) for k, v in tree.items()}
    if isinstance(tree, list):
        return [_unpack(v, arrays) for v in tree]
    return tree


def save_artifact(directory: str, manifest: Dict[str, Any]) -> str:
    """Write a manifest tree (arrays allowed anywhere) as manifest.json + arrays.npz."""
    os.makedirs(directory, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {}
    packed = _pack(manifest, arrays)
    npz_path = os.path.join(directory, ARRAYS_NAME)
    np.savez(npz_path, **arrays)
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    tmp = manifest_path + ".tmp"
    with open(tmp, "w") as handle:
        # lint: allow(strict-json) -- artifact manifests never cross the
        # wire: load_artifact reads them back with Python's json.load
        # (which parses NaN), and fitted parameters that are legitimately
        # NaN must round-trip unchanged
        json.dump(packed, handle, sort_keys=True, indent=1, allow_nan=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, manifest_path)
    return directory


def load_artifact(directory: str) -> Dict[str, Any]:
    """Read an artifact directory back into a manifest tree with arrays."""
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path) as handle:
        packed = json.load(handle)
    npz_path = os.path.join(directory, ARRAYS_NAME)
    arrays: Dict[str, np.ndarray] = {}
    if os.path.exists(npz_path):
        # allow_pickle stays False: only plain numeric arrays may load
        with np.load(npz_path, allow_pickle=False) as handle:
            arrays = {key: handle[key] for key in handle.files}
    return _unpack(packed, arrays)


def schema_fingerprint(spec: DatasetSpec, feature_names: List[str]) -> str:
    """Stable digest of the scoring input/output schema.

    Covers the raw input contract (feature columns and their kinds, label
    and protected columns) *and* the featurized output width, so two
    pipelines collide exactly when they can score the same records and emit
    comparable feature vectors.
    """
    payload = {
        "numeric_features": list(spec.numeric_features),
        "categorical_features": list(spec.categorical_features),
        "label_column": spec.label_column,
        "favorable_value": spec.favorable_value,
        "protected": [
            [p.column, list(p.privileged_values)] for p in spec.protected_attributes
        ],
        "feature_names": list(feature_names),
    }
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


class PipelineArtifact:
    """A complete fitted scoring pipeline, ready to persist or serve.

    Bundles the frozen lifecycle path a new record travels at scoring time:
    missing-value handling → featurization → (eval side of the) fairness
    pre-processing intervention → model → fairness post-processing. The
    experiment layer builds instances via
    :meth:`~repro.core.experiment.Experiment.fitted_pipeline`; the registry
    persists and reloads them.
    """

    def __init__(
        self,
        spec: DatasetSpec,
        protected_attribute: str,
        handler,
        featurizer: Featurizer,
        pre_processor,
        model,
        post_processor,
        metadata: Optional[Dict[str, Any]] = None,
    ):
        self.spec = spec
        self.protected_attribute = protected_attribute
        self.handler = handler
        self.featurizer = featurizer
        self.pre_processor = pre_processor
        self.model = model
        self.post_processor = post_processor
        self.metadata = dict(metadata or {})

    # ------------------------------------------------------------------
    def schema_fingerprint(self) -> str:
        return schema_fingerprint(self.spec, self.featurizer.feature_names_)

    def to_manifest(self) -> Dict[str, Any]:
        return {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "schema_fingerprint": self.schema_fingerprint(),
            "spec": self.spec.to_dict(),
            "protected_attribute": self.protected_attribute,
            "components": {
                "handler": state_of(self.handler),
                "featurizer": state_of(self.featurizer),
                "pre_processor": state_of(self.pre_processor),
                "model": state_of(self.model),
                "post_processor": state_of(self.post_processor),
            },
            "metadata": self.metadata,
        }

    @classmethod
    def from_manifest(cls, manifest: Dict[str, Any]) -> "PipelineArtifact":
        if manifest.get("format") != ARTIFACT_FORMAT:
            raise ValueError(
                f"not a {ARTIFACT_FORMAT} manifest: format={manifest.get('format')!r}"
            )
        version = manifest.get("version")
        if version != ARTIFACT_VERSION:
            raise ValueError(
                f"unsupported artifact version {version!r} "
                f"(this build reads version {ARTIFACT_VERSION})"
            )
        components = manifest["components"]
        artifact = cls(
            spec=DatasetSpec.from_dict(manifest["spec"]),
            protected_attribute=manifest["protected_attribute"],
            handler=restore(components["handler"]),
            featurizer=restore(components["featurizer"]),
            pre_processor=restore(components["pre_processor"]),
            model=restore(components["model"]),
            post_processor=restore(components["post_processor"]),
            metadata=dict(manifest.get("metadata", {})),
        )
        stored = manifest.get("schema_fingerprint")
        actual = artifact.schema_fingerprint()
        if stored is not None and stored != actual:
            raise ValueError(
                f"schema fingerprint mismatch: manifest says {stored}, "
                f"reconstructed pipeline has {actual} — artifact is corrupt "
                "or was edited"
            )
        return artifact

    # ------------------------------------------------------------------
    def save(self, directory: str) -> str:
        return save_artifact(directory, self.to_manifest())

    @classmethod
    def load(cls, directory: str) -> "PipelineArtifact":
        return cls.from_manifest(load_artifact(directory))

"""Batch + single-record scoring over a frozen pipeline.

The batch path replays the exact featurization/intervention path an
:class:`~repro.core.experiment.Experiment` applies to its held-out test
split — same fitted components, same vectorized code — so a reloaded
pipeline reproduces in-process predictions byte for byte. The single-record
fast path featurizes one record straight from a dict (no DataFrame, no
per-column dictionary encoding) for low-latency point queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.interventions import NoIntervention
from ..fairness import BinaryLabelDataset, ClassificationMetric
from ..frame import DataFrame
from ..learn import OneHotEncoder
from .artifacts import PipelineArtifact

DROPPED_RECORD_ERROR = (
    "record has missing values and the pipeline's handler drops "
    "incomplete records"
)


@dataclass
class BatchScores:
    """Outcome of scoring a frame.

    ``row_mask`` marks which *input* rows were scored: handlers that drop
    incomplete records (complete-case analysis) shrink the output, and the
    mask maps predictions back onto input positions.
    """

    labels: np.ndarray
    scores: Optional[np.ndarray]
    row_mask: np.ndarray
    predictions: BinaryLabelDataset
    truth: Optional[BinaryLabelDataset] = None

    @property
    def num_scored(self) -> int:
        return len(self.labels)


class ScoringEngine:
    """High-throughput scoring over an exported :class:`PipelineArtifact`."""

    def __init__(self, pipeline: PipelineArtifact, monitor=None):
        self.pipeline = pipeline
        self.monitor = monitor
        self._row_scorer: Optional[_RowScorer] = None

    # ------------------------------------------------------------------
    # batch path
    # ------------------------------------------------------------------
    def score_frame(self, frame: DataFrame) -> BatchScores:
        """Score every (complete) row of a raw-schema DataFrame."""
        pipeline = self.pipeline
        spec = pipeline.spec
        required = spec.feature_columns + [
            spec.protected(pipeline.protected_attribute).column
        ]
        missing_columns = [c for c in required if c not in frame]
        if missing_columns:
            raise KeyError(
                f"frame lacks columns {missing_columns} required by "
                f"the {spec.name} pipeline"
            )
        handled = pipeline.handler.handle_missing(frame)
        # the mask comes from the handler's own drop decision (kept_mask),
        # never from a re-derivation of its criterion: a handler that drops
        # on other columns (say, the protected attribute) would otherwise
        # yield a mask whose popcount disagrees with the scored rows
        row_mask = np.asarray(pipeline.handler.kept_mask(frame), dtype=bool)
        if int(row_mask.sum()) != handled.num_rows:
            raise RuntimeError(
                f"handler {pipeline.handler.name()} kept_mask marks "
                f"{int(row_mask.sum())} rows but handle_missing returned "
                f"{handled.num_rows}; the handler must override kept_mask "
                "to match its own drop decision"
            )
        if handled.num_rows == 0:
            # every row was incomplete and the handler drops such rows
            empty = np.empty(0, dtype=np.float64)
            placeholder = BinaryLabelDataset(
                features=np.zeros((0, len(pipeline.featurizer.feature_names_))),
                labels=empty,
                protected_attributes=np.zeros((0, 1)),
                protected_attribute_names=[pipeline.protected_attribute],
            )
            return BatchScores(
                labels=empty,
                scores=None,
                row_mask=row_mask,
                predictions=placeholder,
            )

        data = pipeline.featurizer.transform(handled, require_label=False)
        # ground truth is only trusted where the label is actually present;
        # spec.label_binary maps a *missing* label to 0.0, which must never
        # be fed to metrics or the monitor as a real unfavorable outcome
        has_label_column = spec.label_column in frame
        if has_label_column:
            label_known = ~handled.col(spec.label_column).missing_mask()
            fully_labeled = bool(label_known.all())
        else:
            label_known = None
            fully_labeled = False
        eval_data = pipeline.pre_processor.transform_eval(data)
        labels, scores = _predict_both(pipeline.model, eval_data.features)
        if scores is None and not isinstance(pipeline.post_processor, NoIntervention):
            raise ValueError(
                f"post-processor {pipeline.post_processor.name()} requires "
                "prediction scores but the model provides none"
            )
        predictions = data.with_predictions(labels=labels, scores=scores)
        predictions = pipeline.post_processor.apply(predictions)

        if self.monitor is not None:
            true_labels = None
            if has_label_column:
                true_labels = data.labels.copy()
                true_labels[~label_known] = np.nan  # unlabeled, not unfavorable
            self.monitor.observe_batch(
                groups=data.protected_attributes[:, 0],
                predictions=predictions.labels,
                scores=predictions.scores,
                true_labels=true_labels,
            )
        return BatchScores(
            labels=predictions.labels,
            scores=predictions.scores,
            row_mask=row_mask,
            predictions=predictions,
            truth=data if fully_labeled else None,
        )

    def evaluate_frame(self, frame: DataFrame) -> Dict[str, float]:
        """Score a labeled frame and compute the full fairness metric bundle.

        This is the exact metric computation the experiment layer runs on
        its test split, so reloaded-vs-in-process comparisons can assert
        metric equality, not just label equality.
        """
        batch = self.score_frame(frame)
        return self.evaluate_batch(batch)

    def evaluate_batch(self, batch: BatchScores) -> Dict[str, float]:
        """Metric bundle of an already-scored batch (no second scoring pass)."""
        if batch.truth is None:
            raise ValueError(
                "batch lacks complete ground truth in label column "
                f"{self.pipeline.spec.label_column!r}; cannot evaluate"
            )
        attribute = self.pipeline.protected_attribute
        metric = ClassificationMetric(
            batch.truth,
            batch.predictions,
            unprivileged_groups=[{attribute: 0.0}],
            privileged_groups=[{attribute: 1.0}],
        )
        return metric.all_metrics()

    # ------------------------------------------------------------------
    # single-record fast path
    # ------------------------------------------------------------------
    def score_record(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Score one record (a plain dict) without materializing a frame.

        Missing-value handlers with per-record semantics (mode imputation,
        pass-through) are applied inline; handlers that need frame context
        (learned imputation) fall back to the one-row frame path, and
        row-dropping handlers reject incomplete records outright.
        """
        if self._row_scorer is None:
            self._row_scorer = _RowScorer(self.pipeline)
        scorer = self._row_scorer
        if scorer.needs_frame_fallback(record):
            batch = self.score_frame(_one_row_frame(self.pipeline.spec, record))
            if batch.num_scored == 0:
                raise ValueError(DROPPED_RECORD_ERROR)
            label = float(batch.labels[0])
            score = None if batch.scores is None else float(batch.scores[0])
            return self.record_result(label, score)

        features = scorer.featurize(record)
        protected = scorer.protected_value(record)
        pipeline = self.pipeline
        data = BinaryLabelDataset(
            features=features,
            labels=np.zeros(1, dtype=np.float64),
            protected_attributes=np.asarray([[protected]], dtype=np.float64),
            protected_attribute_names=[pipeline.protected_attribute],
            feature_names=pipeline.featurizer.feature_names_,
        )
        eval_data = pipeline.pre_processor.transform_eval(data)
        labels, scores = _predict_both(pipeline.model, eval_data.features)
        predictions = data.with_predictions(labels=labels, scores=scores)
        predictions = pipeline.post_processor.apply(predictions)
        label = float(predictions.labels[0])
        score = (
            None if predictions.scores is None else float(predictions.scores[0])
        )
        if self.monitor is not None:
            true_label = _true_label(pipeline.spec, record)
            self.monitor.observe(
                group=protected,
                prediction=label,
                score=score,
                true_label=true_label,
            )
        return self.record_result(label, score)

    def record_result(self, label: float, score: Optional[float]) -> Dict[str, Any]:
        """The single-record response payload for a scored (label, score)."""
        spec = self.pipeline.spec
        return {
            "label": label,
            "score": score,
            "favorable": bool(label == 1.0),
            "decision": spec.favorable_value if label == 1.0 else f"not {spec.favorable_value}",
        }


# ----------------------------------------------------------------------
# per-record featurization
# ----------------------------------------------------------------------
class _RowScorer:
    """Precomputed per-column transforms for frame-free featurization."""

    def __init__(self, pipeline: PipelineArtifact):
        self.pipeline = pipeline
        featurizer = pipeline.featurizer
        self.numeric = list(featurizer._numeric)
        self.categorical = list(featurizer._categorical)
        self.scaler = getattr(featurizer, "scaler_", None)
        self.encoder = getattr(featurizer, "encoder_", None)
        handler = pipeline.handler
        self.fill_values = dict(getattr(handler, "_fill_values", {}) or {})
        self.handler_drops = bool(getattr(handler, "drops_rows", False))
        # learned imputation needs the shared predictor matrix: no fast path
        self.handler_needs_frame = hasattr(handler, "_models")
        protected = pipeline.spec.protected(pipeline.protected_attribute)
        self.protected_column = protected.column
        self.privileged_values = set(protected.privileged_values)
        # missing record values never reach these tables: _value() either
        # imputes them (handler fill statistics) or raises first
        self.onehot_tables: Optional[List[dict]] = None
        if isinstance(self.encoder, OneHotEncoder):
            self.onehot_tables = []
            offset = 0
            for categories in self.encoder.categories_:
                width = len(categories) + 1
                slots = {category: offset + i for i, category in enumerate(categories)}
                self.onehot_tables.append(
                    {"slots": slots, "unseen": offset + width - 1}
                )
                offset += width
            self.onehot_width = offset

    # ------------------------------------------------------------------
    def needs_frame_fallback(self, record: Dict[str, Any]) -> bool:
        if self.handler_needs_frame:
            return True
        if self.handler_drops and any(
            _is_missing(record.get(name))
            for name in self.numeric + self.categorical
        ):
            return True
        return False

    def _value(self, record: Dict[str, Any], name: str):
        value = record.get(name)
        if _is_missing(value):
            if name in self.fill_values:
                return self.fill_values[name]
            raise ValueError(
                f"record is missing feature {name!r} and the pipeline's "
                "handler cannot impute it"
            )
        return value

    def featurize(self, record: Dict[str, Any]) -> np.ndarray:
        blocks: List[np.ndarray] = []
        if self.numeric:
            row = np.asarray(
                [[float(self._value(record, name)) for name in self.numeric]],
                dtype=np.float64,
            )
            blocks.append(self.scaler.transform(row))
        if self.categorical:
            values = [str(self._value(record, name)) for name in self.categorical]
            if self.onehot_tables is not None:
                row = np.zeros((1, self.onehot_width), dtype=np.float64)
                for value, table in zip(values, self.onehot_tables):
                    row[0, table["slots"].get(value, table["unseen"])] = 1.0
                blocks.append(row)
            else:
                from ..frame import Column

                columns = [
                    Column.categorical(name, [value])
                    for name, value in zip(self.categorical, values)
                ]
                blocks.append(self.encoder.transform(columns))
        if not blocks:
            return np.zeros((1, 0))
        return np.hstack(blocks)

    def protected_value(self, record: Dict[str, Any]) -> float:
        value = record.get(self.protected_column)
        if _is_missing(value):
            return 0.0
        return 1.0 if str(value) in self.privileged_values else 0.0


def _predict_both(model, features: np.ndarray):
    """Labels and scores, in one model pass when the model supports it."""
    if hasattr(model, "predict_with_scores"):
        return model.predict_with_scores(features)
    return model.predict(features), model.predict_scores(features)


def _is_missing(value) -> bool:
    if value is None:
        return True
    if isinstance(value, float) and value != value:
        return True
    return False


def _true_label(spec, record: Dict[str, Any]) -> Optional[float]:
    value = record.get(spec.label_column)
    if _is_missing(value):
        return None
    return 1.0 if str(value) == str(spec.favorable_value) else 0.0


def _one_row_frame(spec, record: Dict[str, Any]) -> DataFrame:
    """Materialize a record as a one-row frame with the spec's column kinds."""
    kinds = spec.column_kinds()
    data = {}
    for name, kind in kinds.items():
        if name == spec.label_column and name not in record:
            continue
        value = record.get(name)
        data[name] = [None if _is_missing(value) else value]
    return DataFrame.from_dict(data, kinds={k: v for k, v in kinds.items() if k in data})


def records_to_frame(spec, records: List[Dict[str, Any]]) -> DataFrame:
    """Coalesce record dicts into one raw-schema frame (spec column kinds).

    A column is materialized when *any* record carries it; records that lack
    it contribute missing values, which is exactly what the pipeline's
    missing-value handler is fit to deal with.
    """
    kinds = spec.column_kinds()
    names = [n for n in kinds if any(n in r for r in records)]
    data = {name: [r.get(name) for r in records] for name in names}
    return DataFrame.from_dict(data, kinds={name: kinds[name] for name in names})

"""Sliding-window runtime monitoring of accuracy and group fairness.

A deployed pipeline drifts: incoming traffic shifts, and a model that was
fair on its validation split can violate the four-fifths rule in
production. :class:`FairnessMonitor` keeps the last *N* scored records and
recomputes, over that window, the same group metrics the experiment layer
reports — disparate impact and the equal-opportunity gap via
:mod:`repro.fairness.metrics` (the exact code path, not a reimplementation)
— plus accuracy proxies (selection rate, mean score, and accuracy whenever
ground-truth labels arrive). Configurable thresholds turn a snapshot into
:class:`Alert` records the serving layer exposes on its ``/metrics`` route.

The window lives in preallocated NumPy ring buffers (one per observed
field, plus validity masks for the optional score/truth fields), so
``observe_batch`` is a vectorized two-slice copy under the lock and
``snapshot`` materializes the window with array slices — no Python-level
loop ever holds the lock, which keeps ``/metrics`` cheap while scoring
traffic hammers ``observe_batch``.

Monitors are also *mergeable*: :meth:`FairnessMonitor.state` captures the
window (oldest record first) plus configuration as a JSON-serializable
dict, and :meth:`FairnessMonitor.from_states` / :meth:`FairnessMonitor.
merge` rebuild one monitor from many such states. Merging is defined as
observing the states' window contents as one concatenated stream, in the
order given — the contract the multi-worker serving fleet relies on to
combine per-worker windows into a single fleet-wide fairness view.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..fairness import BinaryLabelDataset, ClassificationMetric
from ..fairness.metrics import BinaryLabelDatasetMetric

# metric -> (lower bound, upper bound); None disables a side. The defaults
# encode the four-fifths rule on disparate impact and a ±0.1 band on the
# equal-opportunity gap (the bounds the paper's intervention studies target).
DEFAULT_THRESHOLDS: Dict[str, Tuple[Optional[float], Optional[float]]] = {
    "disparate_impact": (0.8, 1.25),
    "equal_opportunity_difference": (-0.1, 0.1),
    "statistical_parity_difference": (-0.1, 0.1),
}


@dataclass(frozen=True)
class Alert:
    """One threshold violation over the current window."""

    metric: str
    value: float
    lower: Optional[float]
    upper: Optional[float]
    window: int

    def describe(self) -> str:
        bounds = f"[{self.lower}, {self.upper}]"
        return (
            f"{self.metric}={self.value:.4f} outside {bounds} "
            f"over the last {self.window} records"
        )


class FairnessMonitor:
    """Thread-safe sliding window over scored records."""

    def __init__(
        self,
        protected_attribute: str,
        window_size: int = 1000,
        thresholds: Optional[Dict[str, Tuple[Optional[float], Optional[float]]]] = None,
        min_observations: int = 50,
        favorable_label: float = 1.0,
        unfavorable_label: float = 0.0,
    ):
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.protected_attribute = protected_attribute
        self.window_size = int(window_size)
        self.thresholds = dict(
            DEFAULT_THRESHOLDS if thresholds is None else thresholds
        )
        self.min_observations = int(min_observations)
        self.favorable_label = float(favorable_label)
        self.unfavorable_label = float(unfavorable_label)
        n = self.window_size
        self._groups = np.empty(n, dtype=np.float64)
        self._predictions = np.empty(n, dtype=np.float64)
        self._scores = np.empty(n, dtype=np.float64)
        self._score_valid = np.zeros(n, dtype=bool)
        self._truths = np.empty(n, dtype=np.float64)
        self._truth_valid = np.zeros(n, dtype=bool)
        self._pos = 0  # guarded-by: _lock (next write slot)
        self._count = 0  # guarded-by: _lock (filled slots, <= window_size)
        self._total_observed = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def observe(
        self,
        group: float,
        prediction: float,
        score: Optional[float] = None,
        true_label: Optional[float] = None,
    ) -> None:
        """Record one scored instance (group = protected value, 1.0/0.0)."""
        group = float(group)
        prediction = float(prediction)
        score_value = np.nan if score is None else float(score)
        truth_value = np.nan if true_label is None else float(true_label)
        truth_known = truth_value == truth_value  # NaN truth means unlabeled
        with self._lock:
            p = self._pos
            self._groups[p] = group
            self._predictions[p] = prediction
            self._scores[p] = score_value
            self._score_valid[p] = score is not None
            self._truths[p] = truth_value
            self._truth_valid[p] = truth_known
            self._pos = (p + 1) % self.window_size
            self._count = min(self.window_size, self._count + 1)
            self._total_observed += 1

    def observe_batch(
        self,
        groups: np.ndarray,
        predictions: np.ndarray,
        scores: Optional[np.ndarray] = None,
        true_labels: Optional[np.ndarray] = None,
    ) -> None:
        """Record a scored batch; a NaN in ``true_labels`` means *unlabeled*.

        All four inputs are validated and raveled **before** the window is
        touched: a shape or length mismatch raises :class:`ValueError` and
        leaves the window exactly as it was (no partial ingestion).
        """
        groups = np.asarray(groups, dtype=np.float64).ravel()
        predictions = np.asarray(predictions, dtype=np.float64).ravel()
        total = len(groups)
        if len(predictions) != total:
            raise ValueError(
                f"predictions length {len(predictions)} != groups length {total}"
            )
        if scores is not None:
            scores = np.asarray(scores, dtype=np.float64).ravel()
            if len(scores) != total:
                raise ValueError(
                    f"scores length {len(scores)} != groups length {total}"
                )
        if true_labels is not None:
            true_labels = np.asarray(true_labels, dtype=np.float64).ravel()
            if len(true_labels) != total:
                raise ValueError(
                    f"true_labels length {len(true_labels)} != groups length {total}"
                )
        # rows beyond the window would be evicted immediately; skip them
        if total > self.window_size:
            start = total - self.window_size
            groups = groups[start:]
            predictions = predictions[start:]
            scores = None if scores is None else scores[start:]
            true_labels = None if true_labels is None else true_labels[start:]
        k = len(groups)
        with self._lock:
            self._write_ring(self._groups, groups, k)
            self._write_ring(self._predictions, predictions, k)
            self._write_ring(self._scores, np.nan if scores is None else scores, k)
            self._write_ring(self._score_valid, scores is not None, k)
            self._write_ring(
                self._truths, np.nan if true_labels is None else true_labels, k
            )
            self._write_ring(
                self._truth_valid,
                False if true_labels is None else true_labels == true_labels,
                k,
            )
            self._pos = (self._pos + k) % self.window_size
            self._count = min(self.window_size, self._count + k)
            self._total_observed += total

    def _write_ring(self, buffer: np.ndarray, values, k: int) -> None:  # guarded-by: _lock
        """Copy ``k`` values (array or scalar fill) into the ring at ``_pos``.

        Caller holds the lock and advances ``_pos`` once per batch; this
        helper only performs the (at most two) contiguous slice writes.
        """
        p, n = self._pos, self.window_size
        first = min(k, n - p)
        scalar = np.ndim(values) == 0
        buffer[p : p + first] = values if scalar else values[:first]
        rest = k - first
        if rest:
            buffer[:rest] = values if scalar else values[first:]

    # ------------------------------------------------------------------
    # state snapshot + merge
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """The monitor's window and configuration as plain Python values.

        The window arrays come out oldest record first — the exact order a
        fresh monitor must re-observe them in to reproduce this one — and
        every value is JSON-serializable (missing scores/labels are carried
        as explicit validity masks, not ``NaN`` sentinels), so states can
        cross process boundaries over the fleet's control sockets.
        """
        with self._lock:
            count = self._count
            total = self._total_observed
            groups = self._window_view(self._groups, count)
            predictions = self._window_view(self._predictions, count)
            scores = self._window_view(self._scores, count)
            score_valid = self._window_view(self._score_valid, count)
            truths = self._window_view(self._truths, count)
            truth_valid = self._window_view(self._truth_valid, count)
        # NaN only ever appears in masked-out slots; zero them so the state
        # survives strict JSON encoders unchanged
        scores = np.where(score_valid, scores, 0.0)
        truths = np.where(truth_valid, truths, 0.0)
        return {
            "protected_attribute": self.protected_attribute,
            "window_size": self.window_size,
            "min_observations": self.min_observations,
            "favorable_label": self.favorable_label,
            "unfavorable_label": self.unfavorable_label,
            "thresholds": {
                metric: [lower, upper]
                for metric, (lower, upper) in self.thresholds.items()
            },
            "total_observed": int(total),
            "groups": groups.tolist(),
            "predictions": predictions.tolist(),
            "scores": scores.tolist(),
            "score_valid": score_valid.tolist(),
            "truths": truths.tolist(),
            "truth_valid": truth_valid.tolist(),
        }

    def merge(
        self, *others: Union["FairnessMonitor", Dict[str, Any]]
    ) -> "FairnessMonitor":
        """Ingest other monitors' windows into this one, in order.

        Equivalent to this monitor having observed each other monitor's
        window contents (oldest first) as a continuation of its own
        stream. Accepts live monitors or :meth:`state` dicts; returns
        ``self`` for chaining.
        """
        for other in others:
            state = other.state() if isinstance(other, FairnessMonitor) else other
            if state["protected_attribute"] != self.protected_attribute:
                raise ValueError(
                    "cannot merge monitors over different protected "
                    f"attributes ({state['protected_attribute']!r} != "
                    f"{self.protected_attribute!r})"
                )
            if (
                state["favorable_label"] != self.favorable_label
                or state["unfavorable_label"] != self.unfavorable_label
            ):
                raise ValueError("cannot merge monitors with different labels")
            self._ingest(state)
        return self

    @classmethod
    def from_states(
        cls,
        states: Iterable[Dict[str, Any]],
        window_size: Optional[int] = None,
    ) -> "FairnessMonitor":
        """One monitor equivalent to observing the states' windows in order.

        Configuration (protected attribute, labels, thresholds,
        ``min_observations``) comes from the first state. ``window_size``
        defaults to the total number of windowed records across all states
        so a fleet-wide merge drops nothing; pass an explicit size to keep
        the per-worker semantics (last *N* of the concatenated stream).
        """
        states = list(states)
        if not states:
            raise ValueError("from_states needs at least one state")
        first = states[0]
        if window_size is None:
            window_size = max(
                1, sum(len(state["groups"]) for state in states)
            )
        thresholds = {
            metric: (bounds[0], bounds[1])
            for metric, bounds in first["thresholds"].items()
        }
        monitor = cls(
            protected_attribute=first["protected_attribute"],
            window_size=window_size,
            thresholds=thresholds,
            min_observations=first["min_observations"],
            favorable_label=first["favorable_label"],
            unfavorable_label=first["unfavorable_label"],
        )
        return monitor.merge(*states)

    def _ingest(self, state: Dict[str, Any]) -> None:
        """Append one state's window to this monitor's ring, vectorized."""
        groups = np.asarray(state["groups"], dtype=np.float64)
        predictions = np.asarray(state["predictions"], dtype=np.float64)
        score_valid = np.asarray(state["score_valid"], dtype=bool)
        truth_valid = np.asarray(state["truth_valid"], dtype=bool)
        scores = np.where(
            score_valid, np.asarray(state["scores"], dtype=np.float64), np.nan
        )
        truths = np.where(
            truth_valid, np.asarray(state["truths"], dtype=np.float64), np.nan
        )
        total = len(groups)
        if total > self.window_size:
            start = total - self.window_size
            groups = groups[start:]
            predictions = predictions[start:]
            scores = scores[start:]
            score_valid = score_valid[start:]
            truths = truths[start:]
            truth_valid = truth_valid[start:]
        k = len(groups)
        with self._lock:
            if k:
                self._write_ring(self._groups, groups, k)
                self._write_ring(self._predictions, predictions, k)
                self._write_ring(self._scores, scores, k)
                self._write_ring(self._score_valid, score_valid, k)
                self._write_ring(self._truths, truths, k)
                self._write_ring(self._truth_valid, truth_valid, k)
                self._pos = (self._pos + k) % self.window_size
                self._count = min(self.window_size, self._count + k)
            self._total_observed += int(state["total_observed"])

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Windowed metrics, via the experiment layer's own metric classes."""
        with self._lock:
            count = self._count
            total = self._total_observed
            groups = self._window_view(self._groups, count)
            predictions = self._window_view(self._predictions, count)
            scores = self._window_view(self._scores, count)
            score_valid = self._window_view(self._score_valid, count)
            truths = self._window_view(self._truths, count)
            truth_valid = self._window_view(self._truth_valid, count)
        out: Dict[str, float] = {
            "window": float(count),
            "total_observed": float(total),
        }
        if not count:
            return out

        pred_data = self._dataset(predictions, groups)
        both_groups = bool((groups == 1.0).any() and (groups == 0.0).any())
        out["selection_rate"] = float(
            (predictions == self.favorable_label).mean()
        )
        if score_valid.any():
            out["mean_score"] = float(np.mean(scores[score_valid]))
        if both_groups:
            dataset_metric = BinaryLabelDatasetMetric(
                pred_data,
                unprivileged_groups=[{self.protected_attribute: 0.0}],
                privileged_groups=[{self.protected_attribute: 1.0}],
            )
            out["disparate_impact"] = dataset_metric.disparate_impact()
            out["statistical_parity_difference"] = (
                dataset_metric.statistical_parity_difference()
            )

        out["labeled_fraction"] = float(truth_valid.mean())
        if truth_valid.any():
            true_labels = truths[truth_valid]
            sub_groups = groups[truth_valid]
            sub_predictions = predictions[truth_valid]
            truth_data = self._dataset(true_labels, sub_groups)
            pred_sub = self._dataset(sub_predictions, sub_groups)
            out["accuracy"] = float((sub_predictions == true_labels).mean())
            if (sub_groups == 1.0).any() and (sub_groups == 0.0).any():
                metric = ClassificationMetric(
                    truth_data,
                    pred_sub,
                    unprivileged_groups=[{self.protected_attribute: 0.0}],
                    privileged_groups=[{self.protected_attribute: 1.0}],
                )
                out["equal_opportunity_difference"] = (
                    metric.equal_opportunity_difference()
                )
                out["average_odds_difference"] = metric.average_odds_difference()
        return out

    def _window_view(self, buffer: np.ndarray, count: int) -> np.ndarray:
        """The window contents, oldest record first (caller holds the lock).

        Oldest-first ordering reproduces the exact float summation order of
        the original deque implementation, keeping metrics bit-identical.
        """
        if count < self.window_size:
            return buffer[:count].copy()
        p = self._pos
        if p == 0:
            return buffer.copy()
        return np.concatenate([buffer[p:], buffer[:p]])

    def check(self, snapshot: Optional[Dict[str, float]] = None) -> List[Alert]:
        """Threshold violations over the current window (empty = healthy).

        Pass a precomputed :meth:`snapshot` to avoid rebuilding the window
        metrics (the /metrics route reports both from one snapshot).
        """
        snap = self.snapshot() if snapshot is None else snapshot
        window = int(snap.get("window", 0))
        if window < self.min_observations:
            return []
        alerts: List[Alert] = []
        for metric, (lower, upper) in self.thresholds.items():
            value = snap.get(metric)
            if value is None or np.isnan(value):
                continue
            if (lower is not None and value < lower) or (
                upper is not None and value > upper
            ):
                alerts.append(
                    Alert(
                        metric=metric,
                        value=float(value),
                        lower=lower,
                        upper=upper,
                        window=window,
                    )
                )
        return alerts

    def reset(self) -> None:
        with self._lock:
            self._pos = 0
            self._count = 0
            self._score_valid[:] = False
            self._truth_valid[:] = False

    # ------------------------------------------------------------------
    def _dataset(self, labels: np.ndarray, groups: np.ndarray) -> BinaryLabelDataset:
        """Wrap window columns as a (feature-less) BinaryLabelDataset."""
        n = len(labels)
        return BinaryLabelDataset(
            features=np.zeros((n, 0)),
            labels=labels,
            protected_attributes=groups.reshape(-1, 1),
            protected_attribute_names=[self.protected_attribute],
            favorable_label=self.favorable_label,
            unfavorable_label=self.unfavorable_label,
        )

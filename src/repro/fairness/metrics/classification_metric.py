"""Classification fairness metrics (the AIF360 ``ClassificationMetric`` analog).

Computes, for the overall population and separately for the privileged and
unprivileged groups, a 25-entry performance dictionary; and 22 global
metrics contrasting the two groups — matching the metric inventory the
FairPrep paper reports ("25 different metrics for the overall train and test
set ... 22 different global metrics ... between the privileged and the
unprivileged groups").
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..dataset import BinaryLabelDataset, GroupSpec
from .dataset_metric import BinaryLabelDatasetMetric
from .entropy import generalized_entropy_index_from_benefits


def _safe_ratio(numerator: float, denominator: float) -> float:
    if denominator == 0 or np.isnan(denominator):
        return float("nan")
    return numerator / denominator


class ClassificationMetric(BinaryLabelDatasetMetric):
    """Fairness and accuracy measures of predictions against ground truth.

    Parameters
    ----------
    dataset_true:
        Ground-truth dataset.
    dataset_pred:
        Same rows, with ``labels`` holding the classifier's predictions
        (and optionally ``scores`` holding probabilities).
    """

    def __init__(
        self,
        dataset_true: BinaryLabelDataset,
        dataset_pred: BinaryLabelDataset,
        unprivileged_groups: Optional[GroupSpec] = None,
        privileged_groups: Optional[GroupSpec] = None,
    ):
        dataset_true.validate_compatible(dataset_pred)
        super().__init__(dataset_true, unprivileged_groups, privileged_groups)
        self.dataset_pred = dataset_pred

    # ------------------------------------------------------------------
    # confusion-matrix primitives
    # ------------------------------------------------------------------
    def binary_confusion_matrix(self, privileged: Optional[bool] = None) -> Dict[str, float]:
        """Weighted TP/FP/TN/FN within the requested stratum."""
        mask = self._mask(privileged)
        w = self.dataset.instance_weights[mask]
        true_pos = self.dataset.favorable_mask()[mask]
        pred_pos = (self.dataset_pred.labels == self.dataset.favorable_label)[mask]
        return {
            "TP": float(w[true_pos & pred_pos].sum()),
            "FP": float(w[~true_pos & pred_pos].sum()),
            "TN": float(w[~true_pos & ~pred_pos].sum()),
            "FN": float(w[true_pos & ~pred_pos].sum()),
        }

    def performance_measures(self, privileged: Optional[bool] = None) -> Dict[str, float]:
        """The 25-entry per-stratum metric dictionary."""
        c = self.binary_confusion_matrix(privileged)
        tp, fp, tn, fn = c["TP"], c["FP"], c["TN"], c["FN"]
        total = tp + fp + tn + fn
        actual_pos = tp + fn
        actual_neg = tn + fp
        pred_pos = tp + fp
        pred_neg = tn + fn
        tpr = _safe_ratio(tp, actual_pos)
        tnr = _safe_ratio(tn, actual_neg)
        fpr = _safe_ratio(fp, actual_neg)
        fnr = _safe_ratio(fn, actual_pos)
        ppv = _safe_ratio(tp, pred_pos)
        npv = _safe_ratio(tn, pred_neg)
        fdr = _safe_ratio(fp, pred_pos)
        fomr = _safe_ratio(fn, pred_neg)
        accuracy = _safe_ratio(tp + tn, total)
        f1 = (
            float("nan")
            if np.isnan(ppv) or np.isnan(tpr) or (ppv + tpr) == 0
            else 2.0 * ppv * tpr / (ppv + tpr)
        )
        return {
            "num_instances": total,
            "num_positives": actual_pos,
            "num_negatives": actual_neg,
            "base_rate": _safe_ratio(actual_pos, total),
            "num_true_positives": tp,
            "num_false_positives": fp,
            "num_true_negatives": tn,
            "num_false_negatives": fn,
            "num_pred_positives": pred_pos,
            "num_pred_negatives": pred_neg,
            "selection_rate": _safe_ratio(pred_pos, total),
            "true_positive_rate": tpr,
            "true_negative_rate": tnr,
            "false_positive_rate": fpr,
            "false_negative_rate": fnr,
            "positive_predictive_value": ppv,
            "negative_predictive_value": npv,
            "false_discovery_rate": fdr,
            "false_omission_rate": fomr,
            "accuracy": accuracy,
            "error_rate": float("nan") if np.isnan(accuracy) else 1.0 - accuracy,
            "balanced_accuracy": 0.5 * (tpr + tnr),
            "precision": ppv,
            "recall": tpr,
            "f1": f1,
        }

    # named accessors -----------------------------------------------------
    def accuracy(self, privileged: Optional[bool] = None) -> float:
        return self.performance_measures(privileged)["accuracy"]

    def error_rate(self, privileged: Optional[bool] = None) -> float:
        return self.performance_measures(privileged)["error_rate"]

    def selection_rate(self, privileged: Optional[bool] = None) -> float:
        return self.performance_measures(privileged)["selection_rate"]

    def true_positive_rate(self, privileged: Optional[bool] = None) -> float:
        return self.performance_measures(privileged)["true_positive_rate"]

    def false_positive_rate(self, privileged: Optional[bool] = None) -> float:
        return self.performance_measures(privileged)["false_positive_rate"]

    def false_negative_rate(self, privileged: Optional[bool] = None) -> float:
        return self.performance_measures(privileged)["false_negative_rate"]

    def true_negative_rate(self, privileged: Optional[bool] = None) -> float:
        return self.performance_measures(privileged)["true_negative_rate"]

    def positive_predictive_value(self, privileged: Optional[bool] = None) -> float:
        return self.performance_measures(privileged)["positive_predictive_value"]

    # ------------------------------------------------------------------
    # group-contrast metrics
    # ------------------------------------------------------------------
    def _difference(self, name: str) -> float:
        return (
            self.performance_measures(privileged=False)[name]
            - self.performance_measures(privileged=True)[name]
        )

    def _ratio(self, name: str) -> float:
        return _safe_ratio(
            self.performance_measures(privileged=False)[name],
            self.performance_measures(privileged=True)[name],
        )

    def statistical_parity_difference(self) -> float:
        """Selection-rate difference of the *predictions* (unpriv - priv)."""
        return self._difference("selection_rate")

    def disparate_impact(self) -> float:
        """Selection-rate ratio of the predictions (unpriv / priv)."""
        return self._ratio("selection_rate")

    def equal_opportunity_difference(self) -> float:
        return self._difference("true_positive_rate")

    def true_positive_rate_difference(self) -> float:
        return self._difference("true_positive_rate")

    def false_positive_rate_difference(self) -> float:
        return self._difference("false_positive_rate")

    def false_negative_rate_difference(self) -> float:
        return self._difference("false_negative_rate")

    def false_positive_rate_ratio(self) -> float:
        return self._ratio("false_positive_rate")

    def false_negative_rate_ratio(self) -> float:
        return self._ratio("false_negative_rate")

    def false_discovery_rate_difference(self) -> float:
        return self._difference("false_discovery_rate")

    def false_omission_rate_difference(self) -> float:
        return self._difference("false_omission_rate")

    def false_discovery_rate_ratio(self) -> float:
        return self._ratio("false_discovery_rate")

    def false_omission_rate_ratio(self) -> float:
        return self._ratio("false_omission_rate")

    def positive_predictive_value_difference(self) -> float:
        return self._difference("positive_predictive_value")

    def error_rate_difference(self) -> float:
        return self._difference("error_rate")

    def error_rate_ratio(self) -> float:
        return self._ratio("error_rate")

    def accuracy_difference(self) -> float:
        return self._difference("accuracy")

    def average_odds_difference(self) -> float:
        """Mean of the FPR and TPR differences (Hardt et al. relaxation)."""
        return 0.5 * (
            self.false_positive_rate_difference()
            + self.true_positive_rate_difference()
        )

    def average_abs_odds_difference(self) -> float:
        return 0.5 * (
            abs(self.false_positive_rate_difference())
            + abs(self.true_positive_rate_difference())
        )

    # individual / entropy-based metrics -----------------------------------
    def _benefits(self) -> np.ndarray:
        """Per-instance benefit b_i = pred - true + 1 (Speicher et al.)."""
        pred = (self.dataset_pred.labels == self.dataset.favorable_label).astype(
            np.float64
        )
        true = self.dataset.favorable_mask().astype(np.float64)
        return pred - true + 1.0

    def generalized_entropy_index(self, alpha: float = 2.0) -> float:
        """Inequality of the benefit distribution across individuals."""
        return generalized_entropy_index_from_benefits(
            self._benefits(), self.dataset.instance_weights, alpha
        )

    def theil_index(self) -> float:
        return self.generalized_entropy_index(alpha=1.0)

    def coefficient_of_variation(self) -> float:
        return float(2.0 * np.sqrt(max(self.generalized_entropy_index(alpha=2.0), 0.0)))

    def between_group_generalized_entropy_index(self, alpha: float = 2.0) -> float:
        """Entropy index after replacing each benefit by its group mean."""
        benefits = self._benefits()
        weights = self.dataset.instance_weights
        grouped = benefits.copy()
        for privileged in (True, False):
            mask = self._mask(privileged)
            total = weights[mask].sum()
            if total > 0:
                grouped[mask] = np.average(benefits[mask], weights=weights[mask])
        return generalized_entropy_index_from_benefits(grouped, weights, alpha)

    def between_group_theil_index(self) -> float:
        return self.between_group_generalized_entropy_index(alpha=1.0)

    def between_group_coefficient_of_variation(self) -> float:
        return float(
            2.0
            * np.sqrt(max(self.between_group_generalized_entropy_index(alpha=2.0), 0.0))
        )

    # ------------------------------------------------------------------
    # bundles
    # ------------------------------------------------------------------
    def group_metrics(self) -> Dict[str, float]:
        """The 22-entry global (between-group) metric dictionary."""
        return {
            "statistical_parity_difference": self.statistical_parity_difference(),
            "disparate_impact": self.disparate_impact(),
            "equal_opportunity_difference": self.equal_opportunity_difference(),
            "average_odds_difference": self.average_odds_difference(),
            "average_abs_odds_difference": self.average_abs_odds_difference(),
            "true_positive_rate_difference": self.true_positive_rate_difference(),
            "false_positive_rate_difference": self.false_positive_rate_difference(),
            "false_negative_rate_difference": self.false_negative_rate_difference(),
            "false_positive_rate_ratio": self.false_positive_rate_ratio(),
            "false_negative_rate_ratio": self.false_negative_rate_ratio(),
            "false_discovery_rate_difference": self.false_discovery_rate_difference(),
            "false_omission_rate_difference": self.false_omission_rate_difference(),
            "false_discovery_rate_ratio": self.false_discovery_rate_ratio(),
            "false_omission_rate_ratio": self.false_omission_rate_ratio(),
            "positive_predictive_value_difference": self.positive_predictive_value_difference(),
            "error_rate_difference": self.error_rate_difference(),
            "error_rate_ratio": self.error_rate_ratio(),
            "accuracy_difference": self.accuracy_difference(),
            "generalized_entropy_index": self.generalized_entropy_index(),
            "theil_index": self.theil_index(),
            "coefficient_of_variation": self.coefficient_of_variation(),
            "between_group_theil_index": self.between_group_theil_index(),
        }

    def all_metrics(self) -> Dict[str, float]:
        """Flat bundle: per-stratum measures plus the group contrasts.

        This is what an experiment run writes to disk: 25 metrics × 3 strata
        + 22 group metrics.
        """
        out: Dict[str, float] = {}
        for stratum, privileged in (
            ("overall", None),
            ("privileged", True),
            ("unprivileged", False),
        ):
            if privileged is not None and (
                self.privileged_groups is None or self.unprivileged_groups is None
            ):
                continue
            for name, value in self.performance_measures(privileged).items():
                out[f"{stratum}__{name}"] = value
        if self.privileged_groups is not None and self.unprivileged_groups is not None:
            for name, value in self.group_metrics().items():
                out[f"group__{name}"] = value
        return out

"""Generalized entropy indices over benefit distributions (Speicher et al.)."""

from __future__ import annotations

import numpy as np


def generalized_entropy_index_from_benefits(
    benefits: np.ndarray, weights: np.ndarray = None, alpha: float = 2.0
) -> float:
    """Generalized entropy index GE(alpha) of a non-negative benefit vector.

    * ``alpha = 0``: mean log deviation;
    * ``alpha = 1``: Theil index;
    * otherwise: ``mean((b/mu)^alpha - 1) / (alpha (alpha - 1))``.

    Zero-benefit entries contribute their limit values (0 for alpha in (0, 1],
    and the index is undefined/inf for alpha <= 0 with zeros, in which case
    NaN is returned).
    """
    benefits = np.asarray(benefits, dtype=np.float64)
    if (benefits < 0).any():
        raise ValueError("benefits must be non-negative")
    if weights is None:
        weights = np.ones_like(benefits)
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if total == 0:
        return float("nan")
    mu = float(np.average(benefits, weights=weights))
    if mu == 0:
        return float("nan")
    ratio = benefits / mu
    if alpha == 1.0:
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(ratio > 0, ratio * np.log(ratio), 0.0)
        return float(np.average(terms, weights=weights))
    if alpha == 0.0:
        if (benefits == 0).any():
            return float("nan")
        return float(-np.average(np.log(ratio), weights=weights))
    terms = (ratio**alpha - 1.0) / (alpha * (alpha - 1.0))
    return float(np.average(terms, weights=weights))

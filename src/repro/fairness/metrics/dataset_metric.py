"""Metrics over a single labeled dataset (before any classifier runs).

Mirrors AIF360's ``BinaryLabelDatasetMetric``: base rates and their
privileged/unprivileged disparities, plus the individual-fairness
*consistency* score of Zemel et al.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...learn.neighbors import nearest_neighbor_indices
from ..dataset import BinaryLabelDataset, GroupSpec


class BinaryLabelDatasetMetric:
    """Dataset-level fairness measures between two groups."""

    def __init__(
        self,
        dataset: BinaryLabelDataset,
        unprivileged_groups: Optional[GroupSpec] = None,
        privileged_groups: Optional[GroupSpec] = None,
    ):
        self.dataset = dataset
        self.unprivileged_groups = unprivileged_groups
        self.privileged_groups = privileged_groups
        if unprivileged_groups is not None and privileged_groups is not None:
            overlap = dataset.group_mask(unprivileged_groups) & dataset.group_mask(
                privileged_groups
            )
            if overlap.any():
                raise ValueError(
                    "privileged and unprivileged groups overlap on "
                    f"{int(overlap.sum())} instances"
                )

    # ------------------------------------------------------------------
    def _mask(self, privileged: Optional[bool]) -> np.ndarray:
        if privileged is None:
            return np.ones(self.dataset.num_instances, dtype=bool)
        groups = self.privileged_groups if privileged else self.unprivileged_groups
        if groups is None:
            raise ValueError(
                "privileged/unprivileged groups were not provided at construction"
            )
        return self.dataset.group_mask(groups)

    def num_instances(self, privileged: Optional[bool] = None) -> float:
        """Total instance weight in the requested stratum."""
        mask = self._mask(privileged)
        return float(self.dataset.instance_weights[mask].sum())

    def num_positives(self, privileged: Optional[bool] = None) -> float:
        mask = self._mask(privileged) & self.dataset.favorable_mask()
        return float(self.dataset.instance_weights[mask].sum())

    def num_negatives(self, privileged: Optional[bool] = None) -> float:
        mask = self._mask(privileged) & ~self.dataset.favorable_mask()
        return float(self.dataset.instance_weights[mask].sum())

    def base_rate(self, privileged: Optional[bool] = None) -> float:
        """P(label = favorable) in the requested stratum (weighted)."""
        total = self.num_instances(privileged)
        if total == 0:
            return float("nan")
        return self.num_positives(privileged) / total

    def disparate_impact(self) -> float:
        """base_rate(unprivileged) / base_rate(privileged); 1.0 is parity."""
        privileged_rate = self.base_rate(privileged=True)
        if privileged_rate == 0 or np.isnan(privileged_rate):
            return float("nan")
        return self.base_rate(privileged=False) / privileged_rate

    def statistical_parity_difference(self) -> float:
        """base_rate(unprivileged) - base_rate(privileged); 0.0 is parity."""
        return self.base_rate(privileged=False) - self.base_rate(privileged=True)

    def consistency(self, n_neighbors: int = 5) -> float:
        """Zemel et al. individual fairness: label agreement with neighbours.

        ``1 - mean_i |y_i - mean(y of the k nearest neighbours of i)|``
        """
        X = self.dataset.features
        y = self.dataset.favorable_mask().astype(np.float64)
        neighbors = nearest_neighbor_indices(X, X, n_neighbors)
        neighbor_means = y[neighbors].mean(axis=1)
        return float(1.0 - np.abs(y - neighbor_means).mean())

    def smoothed_empirical_differential_fairness(self, concentration: float = 1.0) -> float:
        """Foulds et al. differential-fairness bound over the two groups."""
        counts = []
        for privileged in (True, False):
            mask = self._mask(privileged)
            weights = self.dataset.instance_weights[mask]
            positives = self.dataset.favorable_mask()[mask]
            total = weights.sum()
            pos = weights[positives].sum()
            # Dirichlet smoothing with two outcomes
            rate = (pos + concentration / 2.0) / (total + concentration)
            counts.append(rate)
        p_priv, p_unpriv = counts
        odds = [
            abs(np.log(p_unpriv) - np.log(p_priv)),
            abs(np.log(1.0 - p_unpriv) - np.log(1.0 - p_priv)),
        ]
        return float(max(odds))

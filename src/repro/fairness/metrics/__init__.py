"""Fairness metrics: dataset-level and classification-level."""

from .classification_metric import ClassificationMetric
from .dataset_metric import BinaryLabelDatasetMetric
from .entropy import generalized_entropy_index_from_benefits

__all__ = [
    "BinaryLabelDatasetMetric",
    "ClassificationMetric",
    "generalized_entropy_index_from_benefits",
]

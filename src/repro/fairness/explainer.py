"""Plain-language explanations of fairness metrics.

AIF360 ships a ``MetricTextExplainer``; FairPrep's §7 goal of empowering
less technical users to run fairness studies needs the same affordance.
:class:`MetricTextExplainer` turns the numeric metric bundle into short
sentences with an interpretation of the direction and magnitude.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .metrics import ClassificationMetric


class MetricTextExplainer:
    """Render a :class:`ClassificationMetric` as human-readable sentences."""

    def __init__(self, metric: ClassificationMetric):
        self.metric = metric

    # ------------------------------------------------------------------
    def accuracy(self) -> str:
        overall = self.metric.accuracy()
        privileged = self.metric.accuracy(privileged=True)
        unprivileged = self.metric.accuracy(privileged=False)
        return (
            f"Overall accuracy is {overall:.1%}; "
            f"{privileged:.1%} for the privileged group and "
            f"{unprivileged:.1%} for the unprivileged group "
            f"({self._gap_phrase(unprivileged - privileged)})."
        )

    def disparate_impact(self) -> str:
        value = self.metric.disparate_impact()
        if np.isnan(value):
            return "Disparate impact is undefined (a group received no favorable predictions)."
        verdict = (
            "satisfies the four-fifths rule"
            if 0.8 <= value <= 1.25
            else "violates the four-fifths rule"
        )
        return (
            f"Disparate impact is {value:.3f}: the unprivileged group receives "
            f"favorable predictions at {value:.1%} of the privileged group's "
            f"rate, which {verdict}."
        )

    def statistical_parity_difference(self) -> str:
        value = self.metric.statistical_parity_difference()
        direction = (
            "more" if value > 0 else "fewer" if value < 0 else "exactly as many"
        )
        return (
            f"Statistical parity difference is {value:+.3f}: the unprivileged "
            f"group receives {direction} favorable predictions than the "
            f"privileged group (0 is parity)."
        )

    def equal_opportunity_difference(self) -> str:
        value = self.metric.equal_opportunity_difference()
        return (
            f"Equal opportunity difference (TPR gap) is {value:+.3f}: "
            f"qualified members of the unprivileged group are "
            f"{'less' if value < 0 else 'more or equally'} likely to be "
            f"recognized than qualified members of the privileged group."
        )

    def error_rate_disparity(self) -> str:
        privileged = self.metric.error_rate(privileged=True)
        unprivileged = self.metric.error_rate(privileged=False)
        gap = unprivileged - privileged
        return (
            f"Error rates: {privileged:.1%} (privileged) vs "
            f"{unprivileged:.1%} (unprivileged) — "
            f"{self._gap_phrase(-gap)}."
        )

    def theil_index(self) -> str:
        value = self.metric.theil_index()
        return (
            f"Theil index of the benefit distribution is {value:.4f} "
            f"(0 means every individual receives the same benefit)."
        )

    def explain_all(self) -> List[str]:
        """Every explanation, in reporting order."""
        return [
            self.accuracy(),
            self.disparate_impact(),
            self.statistical_parity_difference(),
            self.equal_opportunity_difference(),
            self.error_rate_disparity(),
            self.theil_index(),
        ]

    def report(self) -> str:
        return "\n".join(self.explain_all())

    @staticmethod
    def _gap_phrase(advantage_of_unprivileged: float) -> str:
        magnitude = abs(advantage_of_unprivileged)
        if np.isnan(magnitude):
            return "one group is empty, so the gap is undefined"
        if magnitude < 0.01:
            return "essentially no gap between the groups"
        qualifier = "a small" if magnitude < 0.05 else "a substantial"
        loser = "privileged" if advantage_of_unprivileged > 0 else "unprivileged"
        return f"{qualifier} gap of {magnitude:.1%} at the expense of the {loser} group"

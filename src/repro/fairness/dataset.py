"""Binary-label dataset abstraction (the AIF360 ``BinaryLabelDataset`` analog).

A :class:`BinaryLabelDataset` bundles everything a fairness metric or
intervention needs: the feature matrix, binary labels, optional prediction
scores, instance weights, and the protected-attribute columns with their
privileged/unprivileged group definitions.

Group definitions follow the AIF360 convention: a *group* is a list of
dicts, each dict mapping protected attribute names to required values; a row
belongs to the group if it matches *any* dict completely (OR of ANDs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

FAVORABLE = 1.0
UNFAVORABLE = 0.0

GroupSpec = List[Dict[str, float]]


class BinaryLabelDataset:
    """Features, binary labels, weights and protected attributes.

    Parameters
    ----------
    features:
        ``(n, d)`` numeric matrix (already featurized).
    labels:
        ``(n,)`` array of ``favorable_label`` / ``unfavorable_label``.
    protected_attributes:
        ``(n, p)`` numeric matrix of protected attribute values
        (conventionally 1.0 for the privileged value).
    protected_attribute_names:
        Names for the ``p`` protected columns.
    instance_weights:
        Optional ``(n,)`` weights (all ones by default); interventions such
        as reweighing act on these.
    scores:
        Optional ``(n,)`` probability-like scores in [0, 1] used by
        post-processing interventions.
    feature_names:
        Optional names for the ``d`` feature columns.
    """

    def __init__(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        protected_attributes: np.ndarray,
        protected_attribute_names: Sequence[str],
        instance_weights: Optional[np.ndarray] = None,
        scores: Optional[np.ndarray] = None,
        feature_names: Optional[Sequence[str]] = None,
        favorable_label: float = FAVORABLE,
        unfavorable_label: float = UNFAVORABLE,
    ):
        self.features = np.asarray(features, dtype=np.float64)
        if self.features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        n = self.features.shape[0]

        self.labels = np.asarray(labels, dtype=np.float64).ravel()
        if len(self.labels) != n:
            raise ValueError("labels length does not match features")
        if favorable_label == unfavorable_label:
            raise ValueError("favorable and unfavorable labels must differ")
        self.favorable_label = float(favorable_label)
        self.unfavorable_label = float(unfavorable_label)
        allowed = {self.favorable_label, self.unfavorable_label}
        present = set(np.unique(self.labels))
        if not present <= allowed:
            raise ValueError(
                f"labels contain values {sorted(present - allowed)} outside "
                f"{sorted(allowed)}"
            )

        self.protected_attributes = np.asarray(
            protected_attributes, dtype=np.float64
        )
        if self.protected_attributes.ndim == 1:
            self.protected_attributes = self.protected_attributes.reshape(-1, 1)
        if self.protected_attributes.shape[0] != n:
            raise ValueError("protected_attributes rows do not match features")
        self.protected_attribute_names = list(protected_attribute_names)
        if len(self.protected_attribute_names) != self.protected_attributes.shape[1]:
            raise ValueError(
                "protected_attribute_names length does not match columns"
            )

        if instance_weights is None:
            self.instance_weights = np.ones(n, dtype=np.float64)
        else:
            self.instance_weights = np.asarray(instance_weights, dtype=np.float64).ravel()
            if len(self.instance_weights) != n:
                raise ValueError("instance_weights length does not match features")
            if (self.instance_weights < 0).any():
                raise ValueError("instance_weights must be non-negative")

        if scores is None:
            self.scores = None
        else:
            self.scores = np.asarray(scores, dtype=np.float64).ravel()
            if len(self.scores) != n:
                raise ValueError("scores length does not match features")

        if feature_names is None:
            self.feature_names = [f"f{i}" for i in range(self.features.shape[1])]
        else:
            self.feature_names = list(feature_names)
            if len(self.feature_names) != self.features.shape[1]:
                raise ValueError("feature_names length does not match columns")

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    @property
    def num_instances(self) -> int:
        return self.features.shape[0]

    def copy(self) -> "BinaryLabelDataset":
        return BinaryLabelDataset(
            features=self.features.copy(),
            labels=self.labels.copy(),
            protected_attributes=self.protected_attributes.copy(),
            protected_attribute_names=list(self.protected_attribute_names),
            instance_weights=self.instance_weights.copy(),
            scores=None if self.scores is None else self.scores.copy(),
            feature_names=list(self.feature_names),
            favorable_label=self.favorable_label,
            unfavorable_label=self.unfavorable_label,
        )

    def subset(self, mask) -> "BinaryLabelDataset":
        """Row subset by boolean mask or index array."""
        mask = np.asarray(mask)
        return BinaryLabelDataset(
            features=self.features[mask],
            labels=self.labels[mask],
            protected_attributes=self.protected_attributes[mask],
            protected_attribute_names=list(self.protected_attribute_names),
            instance_weights=self.instance_weights[mask],
            scores=None if self.scores is None else self.scores[mask],
            feature_names=list(self.feature_names),
            favorable_label=self.favorable_label,
            unfavorable_label=self.unfavorable_label,
        )

    def with_predictions(self, labels=None, scores=None) -> "BinaryLabelDataset":
        """Copy carrying new labels and/or scores (for prediction datasets)."""
        out = self.copy()
        if labels is not None:
            labels = np.asarray(labels, dtype=np.float64).ravel()
            if len(labels) != self.num_instances:
                raise ValueError("labels length mismatch")
            out.labels = labels
        if scores is not None:
            scores = np.asarray(scores, dtype=np.float64).ravel()
            if len(scores) != self.num_instances:
                raise ValueError("scores length mismatch")
            out.scores = scores
        return out

    def protected_column(self, name: str) -> np.ndarray:
        try:
            j = self.protected_attribute_names.index(name)
        except ValueError:
            raise KeyError(
                f"no protected attribute {name!r}; "
                f"available: {self.protected_attribute_names}"
            ) from None
        return self.protected_attributes[:, j]

    # ------------------------------------------------------------------
    # group handling
    # ------------------------------------------------------------------
    def group_mask(self, groups: Optional[GroupSpec]) -> np.ndarray:
        """Boolean row mask for a group spec (OR of ANDs); None = all rows."""
        if groups is None:
            return np.ones(self.num_instances, dtype=bool)
        if not groups:
            raise ValueError("group spec must contain at least one condition")
        mask = np.zeros(self.num_instances, dtype=bool)
        for condition in groups:
            if not condition:
                raise ValueError("group condition dict must not be empty")
            clause = np.ones(self.num_instances, dtype=bool)
            for name, value in condition.items():
                clause &= self.protected_column(name) == float(value)
            mask |= clause
        return mask

    def favorable_mask(self) -> np.ndarray:
        return self.labels == self.favorable_label

    def validate_compatible(self, other: "BinaryLabelDataset") -> None:
        """Check that ``other`` aligns row-for-row (for metric computation)."""
        if other.num_instances != self.num_instances:
            raise ValueError("datasets have different numbers of instances")
        if other.protected_attribute_names != self.protected_attribute_names:
            raise ValueError("protected attribute names differ")
        if not np.array_equal(other.protected_attributes, self.protected_attributes):
            raise ValueError("protected attribute values differ between datasets")
        if (
            other.favorable_label != self.favorable_label
            or other.unfavorable_label != self.unfavorable_label
        ):
            raise ValueError("label conventions differ between datasets")

"""Pre-processing fairness interventions."""

from .disparate_impact_remover import DisparateImpactRemover
from .reweighing import Reweighing

__all__ = ["DisparateImpactRemover", "Reweighing"]

"""Disparate impact remover (Feldman et al., KDD 2015).

Edits feature values so that the per-group marginal distributions move
toward a common "median" distribution, while preserving the rank order of
values *within* each group. ``repair_level`` interpolates between no change
(0.0) and full repair (1.0).

Unlike the reference implementation (which repairs a dataset in place), this
version supports the leak-free fit/transform split the FairPrep lifecycle
requires: the per-group quantile functions and the target distribution are
estimated on the training data only, then applied to any split.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ...serialize import serializable
from ..dataset import BinaryLabelDataset, GroupSpec


@serializable
class DisparateImpactRemover:
    """Rank-preserving feature repair toward a between-group median distribution.

    Parameters
    ----------
    repair_level:
        0.0 = identity; 1.0 = every group's marginal becomes the common
        median distribution.
    sensitive_attribute:
        Protected attribute whose values define the groups. Defaults to the
        dataset's first protected attribute.
    features_to_repair:
        Names of feature columns to repair; defaults to all features.
    """

    def __init__(
        self,
        repair_level: float = 1.0,
        sensitive_attribute: Optional[str] = None,
        features_to_repair: Optional[Sequence[str]] = None,
    ):
        if not 0.0 <= repair_level <= 1.0:
            raise ValueError("repair_level must lie in [0, 1]")
        self.repair_level = repair_level
        self.sensitive_attribute = sensitive_attribute
        self.features_to_repair = (
            None if features_to_repair is None else list(features_to_repair)
        )

    # ------------------------------------------------------------------
    def fit(self, dataset: BinaryLabelDataset) -> "DisparateImpactRemover":
        """Estimate per-group quantile functions and the median distribution."""
        attribute = self.sensitive_attribute or dataset.protected_attribute_names[0]
        sensitive = dataset.protected_column(attribute)
        self.attribute_ = attribute
        self.group_values_ = sorted(set(np.unique(sensitive)))
        if len(self.group_values_) < 2:
            raise ValueError(
                f"sensitive attribute {attribute!r} has a single value; "
                "nothing to repair"
            )
        names = self.features_to_repair or list(dataset.feature_names)
        missing = [n for n in names if n not in dataset.feature_names]
        if missing:
            raise KeyError(f"features not in dataset: {missing}")
        self.repaired_features_ = names

        quantile_grid = np.linspace(0.0, 1.0, 101)
        self.quantile_grid_ = quantile_grid
        # per feature: per group quantile values + the cross-group median curve
        self.group_quantiles_: Dict[str, Dict[float, np.ndarray]] = {}
        self.median_quantiles_: Dict[str, np.ndarray] = {}
        for name in names:
            j = dataset.feature_names.index(name)
            column = dataset.features[:, j]
            per_group = {}
            curves = []
            for value in self.group_values_:
                members = column[sensitive == value]
                if members.size == 0:
                    continue
                curve = np.quantile(members, quantile_grid)
                per_group[value] = curve
                curves.append(curve)
            self.group_quantiles_[name] = per_group
            self.median_quantiles_[name] = np.median(np.vstack(curves), axis=0)
        return self

    def transform(self, dataset: BinaryLabelDataset) -> BinaryLabelDataset:
        """Repair a dataset's features using the fitted distributions."""
        if not hasattr(self, "median_quantiles_"):
            raise RuntimeError("DisparateImpactRemover must be fit before transform")
        out = dataset.copy()
        if self.repair_level == 0.0:
            return out
        sensitive = dataset.protected_column(self.attribute_)
        for name in self.repaired_features_:
            j = dataset.feature_names.index(name)
            column = out.features[:, j]
            repaired = column.copy()
            for value, curve in self.group_quantiles_[name].items():
                members = sensitive == value
                if not members.any():
                    continue
                # position of each value within its group's training distribution
                quantiles = np.interp(
                    column[members],
                    curve,
                    self.quantile_grid_,
                    left=0.0,
                    right=1.0,
                )
                target = np.interp(
                    quantiles, self.quantile_grid_, self.median_quantiles_[name]
                )
                repaired[members] = (
                    (1.0 - self.repair_level) * column[members]
                    + self.repair_level * target
                )
            unseen = ~np.isin(sensitive, list(self.group_quantiles_[name].keys()))
            if unseen.any():
                # groups never seen in training keep their original values
                repaired[unseen] = column[unseen]
            out.features[:, j] = repaired
        return out

    def fit_transform(self, dataset: BinaryLabelDataset) -> BinaryLabelDataset:
        return self.fit(dataset).transform(dataset)

    def to_state(self) -> dict:
        if not hasattr(self, "median_quantiles_"):
            raise RuntimeError(
                "DisparateImpactRemover must be fit before serialization"
            )
        return {
            "params": {
                "repair_level": self.repair_level,
                "sensitive_attribute": self.sensitive_attribute,
                "features_to_repair": self.features_to_repair,
            },
            "attribute_": self.attribute_,
            "group_values_": [float(v) for v in self.group_values_],
            "repaired_features_": list(self.repaired_features_),
            "quantile_grid_": self.quantile_grid_,
            # group values are floats: keep them next to their curves in
            # lists rather than stringifying them into JSON object keys
            "group_quantiles_": [
                [name, [[float(v), curve] for v, curve in sorted(per_group.items())]]
                for name, per_group in self.group_quantiles_.items()
            ],
            "median_quantiles_": [
                [name, curve] for name, curve in self.median_quantiles_.items()
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "DisparateImpactRemover":
        instance = cls(**state["params"])
        instance.attribute_ = state["attribute_"]
        instance.group_values_ = [float(v) for v in state["group_values_"]]
        instance.repaired_features_ = list(state["repaired_features_"])
        instance.quantile_grid_ = np.asarray(state["quantile_grid_"], dtype=np.float64)
        instance.group_quantiles_ = {
            name: {
                float(v): np.asarray(curve, dtype=np.float64) for v, curve in pairs
            }
            for name, pairs in state["group_quantiles_"]
        }
        instance.median_quantiles_ = {
            name: np.asarray(curve, dtype=np.float64)
            for name, curve in state["median_quantiles_"]
        }
        return instance

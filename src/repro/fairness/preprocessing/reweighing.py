"""Reweighing (Kamiran & Calders, 2012).

Assigns each instance the weight ``P_expected(group, label) /
P_observed(group, label)`` so that group membership and label become
statistically independent in the weighted training distribution. After
reweighing, the weighted statistical parity difference of the dataset is
exactly zero — a property the test suite asserts.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ...serialize import serializable
from ..dataset import BinaryLabelDataset, GroupSpec


@serializable
class Reweighing:
    """Pre-processing intervention that edits instance weights only."""

    def __init__(self, unprivileged_groups: GroupSpec, privileged_groups: GroupSpec):
        self.unprivileged_groups = unprivileged_groups
        self.privileged_groups = privileged_groups

    def fit(self, dataset: BinaryLabelDataset) -> "Reweighing":
        """Learn the four (group × label) reweighing factors."""
        w = dataset.instance_weights
        total = w.sum()
        favorable = dataset.favorable_mask()
        self.factors_: Dict[Tuple[bool, bool], float] = {}
        for privileged, groups in (
            (True, self.privileged_groups),
            (False, self.unprivileged_groups),
        ):
            group_mask = dataset.group_mask(groups)
            weight_group = w[group_mask].sum()
            for positive in (True, False):
                label_mask = favorable if positive else ~favorable
                weight_label = w[label_mask].sum()
                weight_cell = w[group_mask & label_mask].sum()
                if weight_cell == 0:
                    self.factors_[(privileged, positive)] = 1.0
                else:
                    expected = weight_group * weight_label / total
                    self.factors_[(privileged, positive)] = float(
                        expected / weight_cell
                    )
        return self

    def transform(self, dataset: BinaryLabelDataset) -> BinaryLabelDataset:
        """Apply the learned factors to a dataset's instance weights."""
        if not hasattr(self, "factors_"):
            raise RuntimeError("Reweighing must be fit before transform")
        out = dataset.copy()
        favorable = dataset.favorable_mask()
        for privileged, groups in (
            (True, self.privileged_groups),
            (False, self.unprivileged_groups),
        ):
            group_mask = dataset.group_mask(groups)
            for positive in (True, False):
                label_mask = favorable if positive else ~favorable
                cell = group_mask & label_mask
                out.instance_weights[cell] = (
                    dataset.instance_weights[cell] * self.factors_[(privileged, positive)]
                )
        return out

    def fit_transform(self, dataset: BinaryLabelDataset) -> BinaryLabelDataset:
        return self.fit(dataset).transform(dataset)

    def to_state(self) -> dict:
        if not hasattr(self, "factors_"):
            raise RuntimeError("Reweighing must be fit before serialization")
        return {
            "unprivileged_groups": self.unprivileged_groups,
            "privileged_groups": self.privileged_groups,
            "factors_": [
                [bool(privileged), bool(positive), float(value)]
                for (privileged, positive), value in sorted(self.factors_.items())
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "Reweighing":
        instance = cls(
            unprivileged_groups=state["unprivileged_groups"],
            privileged_groups=state["privileged_groups"],
        )
        instance.factors_ = {
            (privileged, positive): value
            for privileged, positive, value in state["factors_"]
        }
        return instance

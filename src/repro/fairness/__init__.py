"""Fairness substrate with the AIF360 API shape.

Datasets, metrics and the intervention families the FairPrep paper
evaluates: reweighing and disparate-impact removal (pre-processing),
adversarial debiasing and prejudice removal (in-processing), reject-option
classification, calibrated equalized odds and equalized odds
(post-processing).
"""

from .dataset import FAVORABLE, UNFAVORABLE, BinaryLabelDataset
from .explainer import MetricTextExplainer
from .inprocessing import AdversarialDebiasing, PrejudiceRemover
from .metrics import (
    BinaryLabelDatasetMetric,
    ClassificationMetric,
    generalized_entropy_index_from_benefits,
)
from .postprocessing import (
    CalibratedEqOddsPostprocessing,
    EqOddsPostprocessing,
    RejectOptionClassification,
)
from .preprocessing import DisparateImpactRemover, Reweighing

__all__ = [
    "AdversarialDebiasing",
    "BinaryLabelDataset",
    "BinaryLabelDatasetMetric",
    "CalibratedEqOddsPostprocessing",
    "ClassificationMetric",
    "DisparateImpactRemover",
    "EqOddsPostprocessing",
    "FAVORABLE",
    "MetricTextExplainer",
    "PrejudiceRemover",
    "RejectOptionClassification",
    "Reweighing",
    "UNFAVORABLE",
    "generalized_entropy_index_from_benefits",
]

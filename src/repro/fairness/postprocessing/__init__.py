"""Post-processing fairness interventions."""

from .calibrated_eq_odds import CalibratedEqOddsPostprocessing
from .eq_odds import EqOddsPostprocessing
from .reject_option import RejectOptionClassification

__all__ = [
    "CalibratedEqOddsPostprocessing",
    "EqOddsPostprocessing",
    "RejectOptionClassification",
]

"""Reject option classification (Kamiran, Karim & Zhang, ICDM 2012).

Within a *critical region* around the decision boundary — where the
classifier is least confident — predictions are overridden in favour of the
unprivileged group. The class threshold and the width of the critical
region are selected on a labeled (validation) dataset by maximizing
balanced accuracy subject to a fairness-metric constraint, following the
AIF360 implementation the paper uses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...serialize import serializable
from ..dataset import BinaryLabelDataset, GroupSpec
from ..metrics import ClassificationMetric

_METRICS = (
    "Statistical parity difference",
    "Average odds difference",
    "Equal opportunity difference",
)


@serializable
class RejectOptionClassification:
    """Post-processing intervention driven by prediction scores."""

    def __init__(
        self,
        unprivileged_groups: GroupSpec,
        privileged_groups: GroupSpec,
        low_class_thresh: float = 0.01,
        high_class_thresh: float = 0.99,
        num_class_thresh: int = 100,
        num_ROC_margin: int = 50,
        metric_name: str = "Statistical parity difference",
        metric_ub: float = 0.05,
        metric_lb: float = -0.05,
    ):
        if metric_name not in _METRICS:
            raise ValueError(f"metric_name must be one of {_METRICS}")
        if not 0.0 <= low_class_thresh < high_class_thresh <= 1.0:
            raise ValueError("need 0 <= low_class_thresh < high_class_thresh <= 1")
        self.unprivileged_groups = unprivileged_groups
        self.privileged_groups = privileged_groups
        self.low_class_thresh = low_class_thresh
        self.high_class_thresh = high_class_thresh
        self.num_class_thresh = num_class_thresh
        self.num_ROC_margin = num_ROC_margin
        self.metric_name = metric_name
        self.metric_ub = metric_ub
        self.metric_lb = metric_lb

    # ------------------------------------------------------------------
    def fit(
        self, dataset_true: BinaryLabelDataset, dataset_pred: BinaryLabelDataset
    ) -> "RejectOptionClassification":
        """Search (class threshold, margin) on labeled validation data."""
        if dataset_pred.scores is None:
            raise ValueError("dataset_pred must carry prediction scores")
        best_constrained = None  # (balanced_accuracy, thresh, margin)
        best_fallback = None  # (abs metric, balanced_accuracy, thresh, margin)
        for class_thresh in np.linspace(
            self.low_class_thresh, self.high_class_thresh, self.num_class_thresh
        ):
            margin_cap = min(class_thresh, 1.0 - class_thresh)
            for margin in np.linspace(0.0, margin_cap, self.num_ROC_margin):
                adjusted = self._apply(dataset_pred, class_thresh, margin)
                metric = ClassificationMetric(
                    dataset_true,
                    adjusted,
                    unprivileged_groups=self.unprivileged_groups,
                    privileged_groups=self.privileged_groups,
                )
                balanced = metric.performance_measures()["balanced_accuracy"]
                fairness = self._fairness_value(metric)
                if np.isnan(balanced) or np.isnan(fairness):
                    continue
                if self.metric_lb <= fairness <= self.metric_ub:
                    candidate = (balanced, class_thresh, margin)
                    if best_constrained is None or candidate > best_constrained:
                        best_constrained = candidate
                fallback = (-abs(fairness), balanced, class_thresh, margin)
                if best_fallback is None or fallback > best_fallback:
                    best_fallback = fallback
        if best_constrained is not None:
            _, self.classification_threshold_, self.ROC_margin_ = best_constrained
        elif best_fallback is not None:
            # no setting satisfied the bound: take the fairest one (AIF360's
            # documented fallback behaviour)
            _, _, self.classification_threshold_, self.ROC_margin_ = best_fallback
        else:
            raise RuntimeError("reject-option search found no valid configuration")
        return self

    def predict(self, dataset_pred: BinaryLabelDataset) -> BinaryLabelDataset:
        """Apply the fitted threshold and critical-region override."""
        if not hasattr(self, "classification_threshold_"):
            raise RuntimeError("RejectOptionClassification must be fit first")
        if dataset_pred.scores is None:
            raise ValueError("dataset_pred must carry prediction scores")
        return self._apply(
            dataset_pred, self.classification_threshold_, self.ROC_margin_
        )

    def fit_predict(
        self, dataset_true: BinaryLabelDataset, dataset_pred: BinaryLabelDataset
    ) -> BinaryLabelDataset:
        return self.fit(dataset_true, dataset_pred).predict(dataset_pred)

    # ------------------------------------------------------------------
    def _apply(
        self, dataset_pred: BinaryLabelDataset, class_thresh: float, margin: float
    ) -> BinaryLabelDataset:
        scores = dataset_pred.scores
        labels = np.where(
            scores > class_thresh,
            dataset_pred.favorable_label,
            dataset_pred.unfavorable_label,
        )
        critical = np.abs(scores - class_thresh) <= margin
        unprivileged = dataset_pred.group_mask(self.unprivileged_groups)
        privileged = dataset_pred.group_mask(self.privileged_groups)
        labels = labels.copy()
        labels[critical & unprivileged] = dataset_pred.favorable_label
        labels[critical & privileged] = dataset_pred.unfavorable_label
        return dataset_pred.with_predictions(labels=labels)

    def to_state(self) -> dict:
        if not hasattr(self, "classification_threshold_"):
            raise RuntimeError(
                "RejectOptionClassification must be fit before serialization"
            )
        return {
            "params": {
                "unprivileged_groups": self.unprivileged_groups,
                "privileged_groups": self.privileged_groups,
                "low_class_thresh": self.low_class_thresh,
                "high_class_thresh": self.high_class_thresh,
                "num_class_thresh": self.num_class_thresh,
                "num_ROC_margin": self.num_ROC_margin,
                "metric_name": self.metric_name,
                "metric_ub": self.metric_ub,
                "metric_lb": self.metric_lb,
            },
            "classification_threshold_": float(self.classification_threshold_),
            "ROC_margin_": float(self.ROC_margin_),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RejectOptionClassification":
        instance = cls(**state["params"])
        instance.classification_threshold_ = float(state["classification_threshold_"])
        instance.ROC_margin_ = float(state["ROC_margin_"])
        return instance

    def _fairness_value(self, metric: ClassificationMetric) -> float:
        if self.metric_name == "Statistical parity difference":
            return metric.statistical_parity_difference()
        if self.metric_name == "Average odds difference":
            return metric.average_odds_difference()
        return metric.equal_opportunity_difference()

"""Calibrated equalized odds post-processing (Pleiss et al., NeurIPS 2017).

Keeps the classifier calibrated within each group while equalizing a chosen
cost (generalized false-positive rate, generalized false-negative rate, or
a weighted combination) between groups: the group with the *lower* cost has
a fraction of its scores replaced by its base rate, which raises its cost to
match the other group's.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...serialize import serializable
from ..dataset import BinaryLabelDataset, GroupSpec

_CONSTRAINTS = ("fnr", "fpr", "weighted")


@serializable
class CalibratedEqOddsPostprocessing:
    """Score-mixing post-processor with a reproducible RNG seed."""

    def __init__(
        self,
        unprivileged_groups: GroupSpec,
        privileged_groups: GroupSpec,
        cost_constraint: str = "weighted",
        seed: Optional[int] = None,
    ):
        if cost_constraint not in _CONSTRAINTS:
            raise ValueError(f"cost_constraint must be one of {_CONSTRAINTS}")
        self.unprivileged_groups = unprivileged_groups
        self.privileged_groups = privileged_groups
        self.cost_constraint = cost_constraint
        self.seed = seed

    # ------------------------------------------------------------------
    def fit(
        self, dataset_true: BinaryLabelDataset, dataset_pred: BinaryLabelDataset
    ) -> "CalibratedEqOddsPostprocessing":
        """Compute per-group mix rates from labeled validation data."""
        if dataset_pred.scores is None:
            raise ValueError("dataset_pred must carry prediction scores")
        dataset_true.validate_compatible(dataset_pred)
        priv = dataset_true.group_mask(self.privileged_groups)
        unpriv = dataset_true.group_mask(self.unprivileged_groups)
        y = dataset_true.favorable_mask().astype(np.float64)
        s = dataset_pred.scores
        w = dataset_true.instance_weights

        self.base_rate_priv_ = _base_rate(y[priv], w[priv])
        self.base_rate_unpriv_ = _base_rate(y[unpriv], w[unpriv])

        priv_cost = self._cost(s[priv], y[priv], w[priv], self.base_rate_priv_)
        unpriv_cost = self._cost(
            s[unpriv], y[unpriv], w[unpriv], self.base_rate_unpriv_
        )
        # cost of the "trivial" predictor that outputs the group base rate
        priv_trivial = self._cost(
            np.full(priv.sum(), self.base_rate_priv_), y[priv], w[priv],
            self.base_rate_priv_,
        )
        unpriv_trivial = self._cost(
            np.full(unpriv.sum(), self.base_rate_unpriv_), y[unpriv], w[unpriv],
            self.base_rate_unpriv_,
        )

        if unpriv_cost > priv_cost:
            # privileged group is "too good": mix it toward its base rate
            denominator = priv_trivial - priv_cost
            rate = (unpriv_cost - priv_cost) / denominator if denominator != 0 else 0.0
            self.priv_mix_rate_ = float(np.clip(rate, 0.0, 1.0))
            self.unpriv_mix_rate_ = 0.0
        else:
            denominator = unpriv_trivial - unpriv_cost
            rate = (priv_cost - unpriv_cost) / denominator if denominator != 0 else 0.0
            self.unpriv_mix_rate_ = float(np.clip(rate, 0.0, 1.0))
            self.priv_mix_rate_ = 0.0
        return self

    def predict(
        self, dataset_pred: BinaryLabelDataset, threshold: float = 0.5
    ) -> BinaryLabelDataset:
        """Mix scores toward group base rates, then threshold."""
        if not hasattr(self, "priv_mix_rate_"):
            raise RuntimeError("CalibratedEqOddsPostprocessing must be fit first")
        if dataset_pred.scores is None:
            raise ValueError("dataset_pred must carry prediction scores")
        rng = np.random.default_rng(self.seed)
        scores = dataset_pred.scores.copy()
        priv = dataset_pred.group_mask(self.privileged_groups)
        unpriv = dataset_pred.group_mask(self.unprivileged_groups)

        priv_flip = rng.random(int(priv.sum())) <= self.priv_mix_rate_
        unpriv_flip = rng.random(int(unpriv.sum())) <= self.unpriv_mix_rate_
        priv_scores = scores[priv]
        priv_scores[priv_flip] = self.base_rate_priv_
        scores[priv] = priv_scores
        unpriv_scores = scores[unpriv]
        unpriv_scores[unpriv_flip] = self.base_rate_unpriv_
        scores[unpriv] = unpriv_scores

        labels = np.where(
            scores >= threshold,
            dataset_pred.favorable_label,
            dataset_pred.unfavorable_label,
        )
        return dataset_pred.with_predictions(labels=labels, scores=scores)

    def fit_predict(
        self,
        dataset_true: BinaryLabelDataset,
        dataset_pred: BinaryLabelDataset,
        threshold: float = 0.5,
    ) -> BinaryLabelDataset:
        return self.fit(dataset_true, dataset_pred).predict(dataset_pred, threshold)

    def to_state(self) -> dict:
        if not hasattr(self, "priv_mix_rate_"):
            raise RuntimeError(
                "CalibratedEqOddsPostprocessing must be fit before serialization"
            )
        return {
            "params": {
                "unprivileged_groups": self.unprivileged_groups,
                "privileged_groups": self.privileged_groups,
                "cost_constraint": self.cost_constraint,
                "seed": self.seed,
            },
            "base_rate_priv_": float(self.base_rate_priv_),
            "base_rate_unpriv_": float(self.base_rate_unpriv_),
            "priv_mix_rate_": float(self.priv_mix_rate_),
            "unpriv_mix_rate_": float(self.unpriv_mix_rate_),
        }

    @classmethod
    def from_state(cls, state: dict) -> "CalibratedEqOddsPostprocessing":
        instance = cls(**state["params"])
        for attr in (
            "base_rate_priv_",
            "base_rate_unpriv_",
            "priv_mix_rate_",
            "unpriv_mix_rate_",
        ):
            setattr(instance, attr, float(state[attr]))
        return instance

    # ------------------------------------------------------------------
    def _cost(self, scores, y, w, base_rate) -> float:
        """Generalized cost of a score vector under the chosen constraint."""
        gfpr = _generalized_fpr(scores, y, w)
        gfnr = _generalized_fnr(scores, y, w)
        if self.cost_constraint == "fpr":
            return gfpr
        if self.cost_constraint == "fnr":
            return gfnr
        # weighted: Pleiss et al. combine both, weighted by outcome prevalence
        return gfpr * (1.0 - base_rate) + gfnr * base_rate


def _base_rate(y: np.ndarray, w: np.ndarray) -> float:
    total = w.sum()
    return float((y * w).sum() / total) if total > 0 else float("nan")


def _generalized_fpr(scores, y, w) -> float:
    negatives = y == 0.0
    total = w[negatives].sum()
    if total == 0:
        return float("nan")
    return float((scores[negatives] * w[negatives]).sum() / total)


def _generalized_fnr(scores, y, w) -> float:
    positives = y == 1.0
    total = w[positives].sum()
    if total == 0:
        return float("nan")
    return float(((1.0 - scores[positives]) * w[positives]).sum() / total)

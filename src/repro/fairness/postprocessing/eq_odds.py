"""Equalized odds post-processing (Hardt, Price & Srebro, NeurIPS 2016).

Finds group-specific randomized label-flipping probabilities that equalize
true- and false-positive rates between groups while minimizing expected
error, via the linear program of the original paper (solved with scipy).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import linprog

from ...serialize import serializable
from ..dataset import BinaryLabelDataset, GroupSpec


@serializable
class EqOddsPostprocessing:
    """Randomized post-processor equalizing odds between two groups."""

    def __init__(
        self,
        unprivileged_groups: GroupSpec,
        privileged_groups: GroupSpec,
        seed: Optional[int] = None,
    ):
        self.unprivileged_groups = unprivileged_groups
        self.privileged_groups = privileged_groups
        self.seed = seed

    def fit(
        self, dataset_true: BinaryLabelDataset, dataset_pred: BinaryLabelDataset
    ) -> "EqOddsPostprocessing":
        """Solve the Hardt et al. LP on labeled validation data.

        Variables (per group g): ``p2p_g`` = P(keep a positive prediction),
        ``n2p_g`` = P(flip a negative prediction to positive). Order:
        [p2p_priv, n2p_priv, p2p_unpriv, n2p_unpriv].
        """
        dataset_true.validate_compatible(dataset_pred)
        rates = {}
        for privileged, groups in (
            (True, self.privileged_groups),
            (False, self.unprivileged_groups),
        ):
            mask = dataset_true.group_mask(groups)
            y = dataset_true.favorable_mask()[mask]
            yhat = (dataset_pred.labels == dataset_pred.favorable_label)[mask]
            w = dataset_true.instance_weights[mask]
            tpr = _rate(yhat, y, w)
            fpr = _rate(yhat, ~y, w)
            base = float(w[y].sum() / w.sum()) if w.sum() > 0 else np.nan
            rates[privileged] = {"tpr": tpr, "fpr": fpr, "base": base}
        if any(np.isnan(v) for group in rates.values() for v in group.values()):
            raise ValueError(
                "a group lacks positives or negatives; cannot equalize odds"
            )

        tpr_p, fpr_p, base_p = (rates[True][k] for k in ("tpr", "fpr", "base"))
        tpr_u, fpr_u, base_u = (rates[False][k] for k in ("tpr", "fpr", "base"))

        # expected error contribution coefficients for each variable
        # error_g = P(y=1)(1 - TPR'_g) + P(y=0) FPR'_g where
        # TPR'_g = p2p_g tpr_g + n2p_g (1 - tpr_g),
        # FPR'_g = p2p_g fpr_g + n2p_g (1 - fpr_g)
        c = np.array(
            [
                -base_p * tpr_p + (1 - base_p) * fpr_p,
                -base_p * (1 - tpr_p) + (1 - base_p) * (1 - fpr_p),
                -base_u * tpr_u + (1 - base_u) * fpr_u,
                -base_u * (1 - tpr_u) + (1 - base_u) * (1 - fpr_u),
            ]
        )
        # equality constraints: TPR'_priv = TPR'_unpriv, FPR'_priv = FPR'_unpriv
        a_eq = np.array(
            [
                [tpr_p, 1 - tpr_p, -tpr_u, -(1 - tpr_u)],
                [fpr_p, 1 - fpr_p, -fpr_u, -(1 - fpr_u)],
            ]
        )
        b_eq = np.zeros(2)
        result = linprog(
            c, A_eq=a_eq, b_eq=b_eq, bounds=[(0.0, 1.0)] * 4, method="highs"
        )
        if not result.success:
            raise RuntimeError(f"equalized-odds LP failed: {result.message}")
        self.p2p_priv_, self.n2p_priv_, self.p2p_unpriv_, self.n2p_unpriv_ = result.x
        return self

    def predict(self, dataset_pred: BinaryLabelDataset) -> BinaryLabelDataset:
        """Randomly flip predictions according to the fitted probabilities."""
        if not hasattr(self, "p2p_priv_"):
            raise RuntimeError("EqOddsPostprocessing must be fit first")
        rng = np.random.default_rng(self.seed)
        labels = dataset_pred.labels.copy()
        for privileged, groups, p2p, n2p in (
            (True, self.privileged_groups, self.p2p_priv_, self.n2p_priv_),
            (False, self.unprivileged_groups, self.p2p_unpriv_, self.n2p_unpriv_),
        ):
            mask = dataset_pred.group_mask(groups)
            positive = labels == dataset_pred.favorable_label
            keep_positive = rng.random(dataset_pred.num_instances) < p2p
            make_positive = rng.random(dataset_pred.num_instances) < n2p
            flip_down = mask & positive & ~keep_positive
            flip_up = mask & ~positive & make_positive
            labels[flip_down] = dataset_pred.unfavorable_label
            labels[flip_up] = dataset_pred.favorable_label
        return dataset_pred.with_predictions(labels=labels)

    def fit_predict(
        self, dataset_true: BinaryLabelDataset, dataset_pred: BinaryLabelDataset
    ) -> BinaryLabelDataset:
        return self.fit(dataset_true, dataset_pred).predict(dataset_pred)

    def to_state(self) -> dict:
        if not hasattr(self, "p2p_priv_"):
            raise RuntimeError(
                "EqOddsPostprocessing must be fit before serialization"
            )
        return {
            "params": {
                "unprivileged_groups": self.unprivileged_groups,
                "privileged_groups": self.privileged_groups,
                "seed": self.seed,
            },
            "p2p_priv_": float(self.p2p_priv_),
            "n2p_priv_": float(self.n2p_priv_),
            "p2p_unpriv_": float(self.p2p_unpriv_),
            "n2p_unpriv_": float(self.n2p_unpriv_),
        }

    @classmethod
    def from_state(cls, state: dict) -> "EqOddsPostprocessing":
        instance = cls(**state["params"])
        for attr in ("p2p_priv_", "n2p_priv_", "p2p_unpriv_", "n2p_unpriv_"):
            setattr(instance, attr, float(state[attr]))
        return instance


def _rate(prediction_positive, condition, weights) -> float:
    total = weights[condition].sum()
    if total == 0:
        return float("nan")
    return float(weights[condition & prediction_positive].sum() / total)

"""Prejudice remover (after Kamishima et al., ECML-PKDD 2012).

Logistic regression with an additional fairness regularizer weighted by
``eta``. The original prejudice index (a mutual-information term) is
replaced by its differentiable demographic-parity surrogate — the squared
gap between the groups' mean predicted probabilities — which preserves the
method's qualitative behaviour (``eta`` trades accuracy against parity) with
a closed-form gradient. The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dataset import BinaryLabelDataset, GroupSpec


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class PrejudiceRemover:
    """Fairness-regularized logistic regression."""

    def __init__(
        self,
        unprivileged_groups: GroupSpec,
        privileged_groups: GroupSpec,
        eta: float = 1.0,
        alpha: float = 1e-4,
        learning_rate: float = 0.5,
        max_iter: int = 300,
        seed: Optional[int] = None,
    ):
        if eta < 0:
            raise ValueError("eta must be non-negative")
        self.unprivileged_groups = unprivileged_groups
        self.privileged_groups = privileged_groups
        self.eta = eta
        self.alpha = alpha
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.seed = seed

    def fit(self, dataset: BinaryLabelDataset) -> "PrejudiceRemover":
        X = dataset.features
        y = dataset.favorable_mask().astype(np.float64)
        weights = dataset.instance_weights / dataset.instance_weights.sum()
        priv = dataset.group_mask(self.privileged_groups)
        unpriv = dataset.group_mask(self.unprivileged_groups)
        w_priv = weights[priv].sum()
        w_unpriv = weights[unpriv].sum()
        if w_priv == 0 or w_unpriv == 0:
            raise ValueError("both groups must be present in the training data")

        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(int(self.max_iter)):
            p = _sigmoid(X @ w + b)
            residual = (p - y) * weights
            grad_w = X.T @ residual + self.alpha * w
            grad_b = residual.sum()
            if self.eta > 0:
                gap = (
                    np.average(p[priv], weights=weights[priv])
                    - np.average(p[unpriv], weights=weights[unpriv])
                )
                dp = p * (1.0 - p)
                # d gap / d w = E_priv[dp x] - E_unpriv[dp x]
                coeff = np.zeros(n)
                coeff[priv] = weights[priv] / w_priv
                coeff[unpriv] -= weights[unpriv] / w_unpriv
                gap_grad_w = X.T @ (coeff * dp)
                gap_grad_b = (coeff * dp).sum()
                grad_w += self.eta * 2.0 * gap * gap_grad_w
                grad_b += self.eta * 2.0 * gap * gap_grad_b
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.coef_ = w
        self.intercept_ = b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "coef_"):
            raise RuntimeError("PrejudiceRemover must be fit first")
        p1 = _sigmoid(np.asarray(X, dtype=np.float64) @ self.coef_ + self.intercept_)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, dataset: BinaryLabelDataset) -> BinaryLabelDataset:
        scores = self.predict_proba(dataset.features)[:, 1]
        labels = np.where(
            scores >= 0.5, dataset.favorable_label, dataset.unfavorable_label
        )
        return dataset.with_predictions(labels=labels, scores=scores)

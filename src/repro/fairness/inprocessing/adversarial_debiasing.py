"""Adversarial debiasing (Zhang, Lemoine & Mitchell, AIES 2018).

A logistic classifier is trained to predict the label while an adversary —
another logistic model reading the classifier's output (and the true label,
for equalized-odds debiasing) — tries to predict the protected attribute.
The classifier's gradient is corrected by (i) removing its projection onto
the adversary's gradient and (ii) subtracting a scaled adversary gradient,
exactly the update rule of the original paper. The paper's TensorFlow
implementation is replaced by closed-form numpy gradients.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dataset import BinaryLabelDataset, GroupSpec


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class AdversarialDebiasing:
    """In-processing intervention: classifier vs. protected-attribute adversary.

    Parameters
    ----------
    adversary_loss_weight:
        The alpha in Zhang et al.'s update; larger = stronger debiasing.
    debias:
        With ``False`` the adversary is ignored, yielding a plain logistic
        classifier (the paper's control condition).
    """

    def __init__(
        self,
        unprivileged_groups: GroupSpec,
        privileged_groups: GroupSpec,
        scope_name: str = "adv_debias",
        adversary_loss_weight: float = 0.1,
        num_epochs: int = 50,
        batch_size: int = 128,
        learning_rate: float = 0.1,
        debias: bool = True,
        seed: Optional[int] = None,
    ):
        self.unprivileged_groups = unprivileged_groups
        self.privileged_groups = privileged_groups
        self.scope_name = scope_name
        self.adversary_loss_weight = adversary_loss_weight
        self.num_epochs = num_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.debias = debias
        self.seed = seed

    # ------------------------------------------------------------------
    def fit(self, dataset: BinaryLabelDataset) -> "AdversarialDebiasing":
        X = dataset.features
        y = dataset.favorable_mask().astype(np.float64)
        z = dataset.group_mask(self.privileged_groups).astype(np.float64)
        w_instances = dataset.instance_weights

        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        self.coef_ = rng.normal(0.0, 0.01, size=d)
        self.intercept_ = 0.0
        # adversary reads [logit, logit*y, logit*(1-y)]
        adversary_w = rng.normal(0.0, 0.01, size=3)
        adversary_b = 0.0

        batch = max(1, int(self.batch_size))
        for epoch in range(int(self.num_epochs)):
            order = rng.permutation(n)
            lr = self.learning_rate / np.sqrt(1.0 + epoch)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, yb, zb, wb = X[idx], y[idx], z[idx], w_instances[idx]
                wb = wb / wb.sum() if wb.sum() > 0 else np.full(len(idx), 1.0 / len(idx))

                logit = xb @ self.coef_ + self.intercept_
                p = _sigmoid(logit)
                # classifier loss gradient (cross-entropy)
                residual = (p - yb) * wb
                grad_w = xb.T @ residual
                grad_b = residual.sum()

                if self.debias:
                    adv_in = np.column_stack([logit, logit * yb, logit * (1 - yb)])
                    adv_logit = adv_in @ adversary_w + adversary_b
                    q = _sigmoid(adv_logit)
                    adv_residual = (q - zb) * wb
                    # adversary's own update (it *descends* its loss)
                    adv_grad_w = adv_in.T @ adv_residual
                    adv_grad_b = adv_residual.sum()
                    # gradient of the adversary loss w.r.t. classifier params
                    # d adv_logit / d logit = u0 + u1*y + u2*(1-y)
                    du = (
                        adversary_w[0]
                        + adversary_w[1] * yb
                        + adversary_w[2] * (1 - yb)
                    )
                    chain = adv_residual * du
                    adv_wrt_w = xb.T @ chain
                    adv_wrt_b = chain.sum()
                    # Zhang et al. projection-corrected update
                    norm = np.linalg.norm(adv_wrt_w)
                    if norm > 1e-12:
                        unit = adv_wrt_w / norm
                        grad_w = (
                            grad_w
                            - (grad_w @ unit) * unit
                            - self.adversary_loss_weight * adv_wrt_w
                        )
                        grad_b = grad_b - self.adversary_loss_weight * adv_wrt_b
                    adversary_w -= lr * adv_grad_w
                    adversary_b -= lr * adv_grad_b

                self.coef_ -= lr * grad_w
                self.intercept_ -= lr * grad_b
        self._adversary_w = adversary_w
        self._adversary_b = adversary_b
        return self

    # ------------------------------------------------------------------
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "coef_"):
            raise RuntimeError("AdversarialDebiasing must be fit first")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, dataset: BinaryLabelDataset) -> BinaryLabelDataset:
        """Score a dataset, returning a copy with predicted labels + scores."""
        scores = self.predict_proba(dataset.features)[:, 1]
        labels = np.where(
            scores >= 0.5, dataset.favorable_label, dataset.unfavorable_label
        )
        return dataset.with_predictions(labels=labels, scores=scores)

"""In-processing fairness interventions."""

from .adversarial_debiasing import AdversarialDebiasing
from .prejudice_remover import PrejudiceRemover

__all__ = ["AdversarialDebiasing", "PrejudiceRemover"]

"""The project-specific rules ``repro lint`` enforces.

Each checker compiles one convention this codebase relies on into an
``ast``-level rule. They are deliberately narrow: every rule names the
invariant it guards and the idiom that satisfies it, so a finding reads
as a prescription, not a style nit. Deliberate exceptions are waived in
place with ``# lint: allow(<rule>) -- reason``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import (
    Finding,
    ModuleInfo,
    call_name,
    dotted_name,
    is_constant,
    keyword_arg,
    register,
)

# ----------------------------------------------------------------------
# 1. no-pickle: serialization must stay pickle-free
# ----------------------------------------------------------------------
_PICKLE_MODULES = {"pickle", "cPickle", "_pickle", "marshal", "shelve", "dill"}


@register(
    "no-pickle",
    "pickle/marshal are banned: artifacts, stores and wire frames are "
    "JSON + npz so loading them can never execute code",
)
def check_no_pickle(module: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _PICKLE_MODULES:
                    yield module.finding(
                        "no-pickle",
                        node,
                        f"import of {alias.name!r}: this codebase serializes "
                        "via JSON + npz (repro.serialize), never pickle",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _PICKLE_MODULES:
                yield module.finding(
                    "no-pickle",
                    node,
                    f"import from {node.module!r}: this codebase serializes "
                    "via JSON + npz (repro.serialize), never pickle",
                )
        elif isinstance(node, ast.Call):
            flag = keyword_arg(node, "allow_pickle")
            if flag is not None and not is_constant(flag, False):
                yield module.finding(
                    "no-pickle",
                    node,
                    "allow_pickle must be literally False: object arrays "
                    "round-trip through pickle, which turns model loading "
                    "into code execution",
                )


# ----------------------------------------------------------------------
# 2. strict-json: everything serve/ emits must be RFC 8259 JSON
# ----------------------------------------------------------------------
def _in_serve(module: ModuleInfo) -> bool:
    return "/serve/" in module.path or module.path.startswith("serve/")


@register(
    "strict-json",
    "serve/ must emit strict JSON: raw json.dumps writes bare NaN/Infinity "
    "tokens that strict parsers reject — use dumps_strict/json_safe, or "
    "allow_nan=False where the payload is provably finite",
)
def check_strict_json(module: ModuleInfo) -> Iterator[Finding]:
    if not _in_serve(module):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node) or ""
        if not (name.endswith("json.dumps") or name.endswith("json.dump")):
            continue
        if is_constant(keyword_arg(node, "allow_nan"), False):
            continue  # explicitly strict at the call site
        yield module.finding(
            "strict-json",
            node,
            f"raw {name}() in serve/: a NaN anywhere in the payload emits "
            "invalid bare 'NaN'; route responses and control-socket state "
            "through dumps_strict/json_safe (or pass allow_nan=False)",
        )


# ----------------------------------------------------------------------
# 3. fingerprint-determinism: canonical-hash payloads must be stable
# ----------------------------------------------------------------------
_NONDETERMINISTIC_CALLS: Dict[str, str] = {
    "id": "id() values change every process",
    "hash": "hash() is salted per process (PYTHONHASHSEED)",
    "os.urandom": "os.urandom is random by definition",
}
_NONDETERMINISTIC_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("time.", "wall-clock values differ across runs"),
    ("random.", "random values differ across runs"),
    ("uuid.", "uuids differ across runs"),
    ("np.random.", "random values differ across runs"),
    ("numpy.random.", "random values differ across runs"),
)


def _is_fingerprint_function(fn: ast.FunctionDef) -> bool:
    if "fingerprint" in fn.name.lower():
        return True
    has_hash = has_dumps = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = call_name(node) or ""
            if name.startswith("hashlib."):
                has_hash = True
            elif name.endswith("json.dumps"):
                has_dumps = True
    return has_hash and has_dumps


@register(
    "fingerprint-determinism",
    "run_key/prep_key/store fingerprints must be pure functions of their "
    "configuration: no clocks, randomness, process ids or unsorted JSON "
    "inside canonical-hash derivations",
)
def check_fingerprint_determinism(module: ModuleInfo) -> Iterator[Finding]:
    for fn in ast.walk(module.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_fingerprint_function(fn):
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node) or ""
            if name in _NONDETERMINISTIC_CALLS:
                yield module.finding(
                    "fingerprint-determinism",
                    node,
                    f"{name}() inside fingerprint derivation "
                    f"{fn.name!r}: {_NONDETERMINISTIC_CALLS[name]}, so the "
                    "fingerprint would stop being deterministic",
                )
                continue
            for prefix, why in _NONDETERMINISTIC_PREFIXES:
                if name.startswith(prefix):
                    yield module.finding(
                        "fingerprint-determinism",
                        node,
                        f"{name}() inside fingerprint derivation "
                        f"{fn.name!r}: {why}, so the fingerprint would stop "
                        "being deterministic",
                    )
                    break
            else:
                if name.endswith("json.dumps") and not is_constant(
                    keyword_arg(node, "sort_keys"), True
                ):
                    yield module.finding(
                        "fingerprint-determinism",
                        node,
                        f"json.dumps without sort_keys=True in fingerprint "
                        f"derivation {fn.name!r}: dict order is insertion "
                        "order, so equal configurations could hash unequal",
                    )


# ----------------------------------------------------------------------
# 4. crash-safe-write: published metadata uses tmp + fsync + rename
# ----------------------------------------------------------------------
_DURABLE_PATH_HINT = re.compile(
    r"manifest|registry|index|artifact|baseline", re.IGNORECASE
)
_WRITE_OPENERS = {"open", "os.fdopen"}


def _write_mode(call: ast.Call) -> bool:
    mode: Optional[ast.expr] = keyword_arg(call, "mode")
    if mode is None and len(call.args) >= 2:
        mode = call.args[1]
    return (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and mode.value.startswith("w")
    )


def _call_names_in(fn: ast.AST) -> Set[str]:
    return {
        call_name(node) or ""
        for node in ast.walk(fn)
        if isinstance(node, ast.Call)
    }


@register(
    "crash-safe-write",
    "manifests/registries/artifacts must publish via tmp-write -> fsync -> "
    "os.replace: a rename without fsync can publish a truncated file after "
    "a crash, and a plain overwrite is torn by definition",
)
def check_crash_safe_write(module: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if (call_name(node) or "") not in _WRITE_OPENERS or not _write_mode(node):
            continue
        scope = module.enclosing_function(node) or module.tree
        names = _call_names_in(scope)
        has_replace = "os.replace" in names or "os.rename" in names
        has_fsync = "os.fsync" in names
        if has_replace and not has_fsync:
            yield module.finding(
                "crash-safe-write",
                node,
                "tmp-write + rename without os.fsync: a crash between "
                "kernel buffering and writeback can publish a truncated "
                "file under the final name — fsync the temp file before "
                "os.replace (see ResultsStore.extend)",
            )
            continue
        if node.args:
            target_src = ast.get_source_segment(module.source, node.args[0]) or ""
            if _DURABLE_PATH_HINT.search(target_src) and not has_replace:
                yield module.finding(
                    "crash-safe-write",
                    node,
                    f"direct overwrite of durable metadata ({target_src!r}): "
                    "write to a temp file, fsync it, then os.replace so "
                    "readers only ever see a complete document",
                )


# ----------------------------------------------------------------------
# 5. fork-safety: no import-time threads/locks without a re-arm hook
# ----------------------------------------------------------------------
_THREADING_PRIMITIVES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Event",
    "threading.Barrier",
    "threading.Thread",
}


@register(
    "fork-safety",
    "modules forked by parallel.py/fleet.py/distributed.py must not create "
    "locks or threads at import time unless they re-arm them via "
    "os.register_at_fork — a child can inherit a lock some coordinator "
    "thread held mid-operation and deadlock forever",
)
def check_fork_safety(module: ModuleInfo) -> Iterator[Finding]:
    has_rearm = any(
        (call_name(node) or "").endswith("register_at_fork")
        for node in ast.walk(module.tree)
        if isinstance(node, ast.Call)
    )
    if has_rearm:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node) or ""
        if name in _THREADING_PRIMITIVES and module.at_module_level(node):
            yield module.finding(
                "fork-safety",
                node,
                f"{name}() at import time without an os.register_at_fork "
                "re-arm: every executor/fleet worker forks this module's "
                "state, and an inherited held lock deadlocks the child",
            )


# ----------------------------------------------------------------------
# 6. guarded-by: declared lock discipline on shared attributes
# ----------------------------------------------------------------------
_GUARDED_ATTR_RE = re.compile(
    r"self\.(\w+)\s*[:=].*#\s*guarded-by:\s*(\w+)"
)
_GUARDED_DEF_RE = re.compile(r"\bdef\s+(\w+)\s*\(.*#\s*guarded-by:\s*(\w+)")
_MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "sort", "reverse", "add", "discard", "update", "setdefault", "fill",
    "appendleft", "popleft",
}


def _self_attr(node: ast.AST) -> Optional[str]:
    """The ``X`` in ``self.X``, ``self.X[...]`` — else ``None``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _flatten_targets(target: ast.AST) -> Iterator[ast.AST]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    else:
        yield target


def _holds_lock(module: ModuleInfo, node: ast.AST, lock: str) -> bool:
    for ancestor in module.ancestors(node):
        if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
            continue
        for item in ancestor.items:
            name = dotted_name(item.context_expr)
            if name == f"self.{lock}" or name == lock:
                return True
    return False


def _guarded_mutations(
    fn: ast.AST,
) -> Iterator[Tuple[ast.AST, str]]:
    """(node, attr) pairs for every ``self.<attr>`` mutation in ``fn``."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                for leaf in _flatten_targets(target):
                    attr = _self_attr(leaf)
                    if attr is not None:
                        yield node, attr
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    yield node, attr
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
            ):
                attr = _self_attr(func.value)
                if attr is not None:
                    yield node, attr


@register(
    "guarded-by",
    "attributes declared '# guarded-by: <lock>' may only be mutated inside "
    "'with self.<lock>:' (or in methods annotated as running with the lock "
    "held by their caller) — the lock annotation is the concurrency "
    "contract the fleet/batching/monitor state depends on",
)
def check_guarded_by(module: ModuleInfo) -> Iterator[Finding]:
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        end = cls.end_lineno or cls.lineno
        guarded: Dict[str, str] = {}
        caller_held: Dict[str, str] = {}
        declaration_lines: Set[int] = set()
        for lineno in range(cls.lineno, end + 1):
            text = module.line_text(lineno)
            attr_match = _GUARDED_ATTR_RE.search(text)
            if attr_match:
                guarded[attr_match.group(1)] = attr_match.group(2)
                declaration_lines.add(lineno)
            def_match = _GUARDED_DEF_RE.search(text)
            if def_match:
                caller_held[def_match.group(1)] = def_match.group(2)
        if not guarded:
            continue
        for fn in cls.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name in ("__init__", "__new__"):
                continue  # construction precedes sharing
            held_here = caller_held.get(fn.name)
            for node, attr in _guarded_mutations(fn):
                lock = guarded.get(attr)
                if lock is None or lock == held_here:
                    continue
                if getattr(node, "lineno", 0) in declaration_lines:
                    continue  # the annotated declaration site itself
                if _holds_lock(module, node, lock):
                    continue
                yield module.finding(
                    "guarded-by",
                    node,
                    f"self.{attr} is declared '# guarded-by: {lock}' but is "
                    f"mutated in {cls.name}.{fn.name} outside 'with "
                    f"self.{lock}:' (annotate the def with "
                    f"'# guarded-by: {lock}' if the caller holds it)",
                )


# ----------------------------------------------------------------------
# 7. silent-except: no exception vanishes without a trace
# ----------------------------------------------------------------------
@register(
    "silent-except",
    "an except body of bare 'pass' neither re-raises, counts a telemetry "
    "metric, nor logs through the rate-limited sink — failures must stay "
    "observable; use contextlib.suppress for genuinely ignorable cleanup "
    "or waive with the reason the error is safe to drop",
)
def check_silent_except(module: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        meaningful = [
            stmt
            for stmt in node.body
            if not isinstance(stmt, (ast.Pass, ast.Continue))
            and not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
            )
        ]
        if meaningful:
            continue
        if node.type is None:
            caught = "everything"
        else:
            caught = dotted_name(node.type) or ast.unparse(node.type)
        yield module.finding(
            "silent-except",
            node,
            f"except {caught}: pass swallows the failure invisibly — "
            "re-raise, count a telemetry metric, log via the rate-limited "
            "sink, or waive with the reason this error is safe to drop",
        )


# ----------------------------------------------------------------------
# 8. wire-compat: frame/manifest shapes are versioned, by name
# ----------------------------------------------------------------------
_VERSION_KEYS = {
    "version",
    "manifest_version",
    "protocol",
    "protocol_version",
    "format_version",
}


@register(
    "wire-compat",
    "code touching send_frame/recv_frame must reference PROTOCOL_VERSION, "
    "and version fields in manifests must come from named *_VERSION "
    "constants — shape changes then force a visible version decision "
    "instead of silently breaking old peers and stores",
)
def check_wire_compat(module: ModuleInfo) -> Iterator[Finding]:
    references_protocol = any(
        "PROTOCOL_VERSION" in (dotted_name(node) or "")
        for node in ast.walk(module.tree)
        if isinstance(node, (ast.Name, ast.Attribute))
    )
    flagged_frames = False
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and not flagged_frames:
            name = call_name(node) or ""
            if (
                name.split(".")[-1] in ("send_frame", "recv_frame")
                and not references_protocol
            ):
                flagged_frames = True
                yield module.finding(
                    "wire-compat",
                    node,
                    f"{name}() used but PROTOCOL_VERSION is never referenced "
                    "in this module: wire-frame changes must be tied to an "
                    "explicit protocol version check",
                )
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value in _VERSION_KEYS
                    and isinstance(value, ast.Constant)
                ):
                    yield module.finding(
                        "wire-compat",
                        value,
                        f"literal {key.value!r}: {value.value!r} in a "
                        "manifest/frame dict: version fields must reference "
                        "a named *_VERSION constant so readers and writers "
                        "can never drift apart silently",
                    )


# ----------------------------------------------------------------------
# 9. no-print: library code logs through telemetry, not stdout
# ----------------------------------------------------------------------
_PRINT_EXEMPT_FILES = ("cli.py", "__main__.py")


@register(
    "no-print",
    "library modules must log via telemetry.log_line (single-syscall, "
    "quiet-aware, fork-interleaving-safe) — print() from forked workers "
    "tears lines and ignores --quiet; the CLI layer is exempt",
)
def check_no_print(module: ModuleInfo) -> Iterator[Finding]:
    basename = module.path.rsplit("/", 1)[-1]
    if basename in _PRINT_EXEMPT_FILES:
        return
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield module.finding(
                "no-print",
                node,
                "print() in library code: use telemetry.log_line (one "
                "syscall per line, honors --quiet, safe under fork "
                "interleaving) or a RateLimitedLog for error paths",
            )


CHECKER_NAMES: List[str] = [
    "no-pickle",
    "strict-json",
    "fingerprint-determinism",
    "crash-safe-write",
    "fork-safety",
    "guarded-by",
    "silent-except",
    "wire-compat",
    "no-print",
]

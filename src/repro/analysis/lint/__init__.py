"""Project-native static analysis: ``repro lint``.

A zero-dependency, stdlib-``ast`` engine plus the checkers that compile
this repo's own invariants (no-pickle serialization, strict-JSON
serving, crash-safe metadata writes, fork-safe locks, deterministic
fingerprints, declared lock discipline, observable failures, versioned
wire shapes) into a machine-checked pass. See ``INVARIANTS.md`` at the
repository root for the rule catalog and waiver syntax.
"""

from .checkers import CHECKER_NAMES
from .engine import (
    BASELINE_VERSION,
    BaselineResult,
    Checker,
    Finding,
    LintReport,
    ModuleInfo,
    apply_baseline,
    lint_paths,
    load_baseline,
    register,
    registered_checkers,
    write_baseline,
)

__all__ = [
    "BASELINE_VERSION",
    "BaselineResult",
    "CHECKER_NAMES",
    "Checker",
    "Finding",
    "LintReport",
    "ModuleInfo",
    "apply_baseline",
    "lint_paths",
    "load_baseline",
    "register",
    "registered_checkers",
    "write_baseline",
]

"""`repro lint` engine: enforce this codebase's own invariants.

The repo's correctness rests on conventions that no general-purpose
linter knows about — no-pickle serialization, strict-JSON serving
responses, tmp+fsync+rename publication of manifests, fork-re-armed
locks, deterministic fingerprint payloads. This module compiles those
conventions into an executable static-analysis pass so they are
machine-checked on every push instead of reviewer-checked.

Architecture (zero dependencies, stdlib ``ast`` only):

* :class:`ModuleInfo` — one parsed source file plus the derived context
  checkers need (parent links, dotted-name resolution, comment-derived
  annotations).
* checkers — callables registered via :func:`register`; each yields
  :class:`Finding` records for one rule (see ``checkers.py``).
* waivers — ``# lint: allow(<rule>) -- reason`` comments suppress a
  finding on their own line (or, for a standalone comment line, on the
  next line). A waiver **must** carry a reason; a reasonless or unused
  waiver is itself a finding, so the waiver set can only shrink along
  with the findings it explains.
* baseline — a committed JSON file of known findings acts as a ratchet:
  findings absent from the baseline fail the run, and baseline entries
  that no longer fire are reported stale (failing under ``--strict``)
  so the file may only shrink.
"""

from __future__ import annotations

import ast
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

BASELINE_VERSION = 1

#: waiver comments: ``lint: allow(rule-a, rule-b) -- reason`` after a
#: hash mark (the reason is mandatory, but matched optionally so a
#: missing one can be reported as a finding instead of silently ignored)
_WAIVER_RE = re.compile(
    r"#\s*lint:\s*allow\(\s*([a-z0-9_,\s-]+?)\s*\)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    severity: str  # "error" | "warning"
    path: str  # package-relative posix path, e.g. "repro/serve/fleet.py"
    line: int
    col: int
    message: str
    context: str = ""  # stripped source line, the line-number-free identity

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across unrelated line-number drift."""
        return (self.rule, self.path, self.context)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )


@dataclass
class Waiver:
    """One parsed ``# lint: allow(...)`` comment."""

    rules: Tuple[str, ...]
    line: int  # line the waiver suppresses findings on
    comment_line: int  # line the comment physically sits on
    reason: Optional[str]
    used: bool = False


class ModuleInfo:
    """A parsed source file plus the context checkers share."""

    def __init__(self, abs_path: str, rel_path: str, source: str):
        self.abs_path = abs_path
        self.path = rel_path.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=abs_path)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.waivers = _parse_waivers(source)

    # ------------------------------------------------------------------
    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def at_module_level(self, node: ast.AST) -> bool:
        """True if no function/class scope encloses ``node`` (top-level
        ``if``/``try`` blocks still count as module level)."""
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                return False
        return True

    def finding(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        severity: str = "error",
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            severity=severity,
            path=self.path,
            line=line,
            col=col,
            message=message,
            context=self.line_text(line),
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    return dotted_name(call.func)


def keyword_arg(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_constant(node: Optional[ast.AST], value) -> bool:
    return isinstance(node, ast.Constant) and node.value is value


def _parse_waivers(source: str) -> List[Waiver]:
    """Extract waivers via the tokenizer, so strings that merely *look*
    like waiver comments can never suppress a finding."""
    waivers: List[Waiver] = []
    lines = source.splitlines()
    try:
        tokens = list(
            tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        )
    except (tokenize.TokenError, IndentationError):  # torn file: no waivers
        return waivers
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _WAIVER_RE.search(token.string)
        if match is None:
            continue
        comment_line = token.start[0]
        before = lines[comment_line - 1][: token.start[1]].strip()
        if before:
            # a trailing comment waives its own line
            target = comment_line
        else:
            # a comment on its own line waives the next *code* line, so a
            # reason may flow over further comment lines below the waiver
            target = comment_line + 1
            while (
                target <= len(lines) and lines[target - 1].strip().startswith("#")
            ):
                target += 1
        rules = tuple(
            rule.strip() for rule in match.group(1).split(",") if rule.strip()
        )
        waivers.append(
            Waiver(
                rules=rules,
                line=target,
                comment_line=comment_line,
                reason=match.group("reason"),
            )
        )
    return waivers


# ----------------------------------------------------------------------
# checker registry
# ----------------------------------------------------------------------
@dataclass
class Checker:
    name: str
    description: str
    check: Callable[[ModuleInfo], Iterable[Finding]]


_CHECKERS: List[Checker] = []


def register(name: str, description: str):
    """Decorator: add ``fn(module) -> Iterable[Finding]`` to the registry."""

    def wrap(fn: Callable[[ModuleInfo], Iterable[Finding]]) -> Callable:
        if any(checker.name == name for checker in _CHECKERS):
            raise ValueError(f"duplicate checker name {name!r}")
        _CHECKERS.append(Checker(name=name, description=description, check=fn))
        return fn

    return wrap


def registered_checkers() -> List[Checker]:
    _ensure_builtin_checkers()
    return list(_CHECKERS)


def _ensure_builtin_checkers() -> None:
    from . import checkers  # noqa: F401  (import registers them)


# ----------------------------------------------------------------------
# the run
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Everything one lint pass produced, before baseline comparison."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    checkers_run: int = 0

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "checkers_run": self.checkers_run,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def iter_source_files(root: str) -> Iterator[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__" and not d.startswith(".")
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def lint_paths(
    root: str,
    select: Optional[Iterable[str]] = None,
    rel_prefix: Optional[str] = None,
) -> LintReport:
    """Run every (or the selected) checker over ``root``.

    ``root`` is a package directory (typically ``.../src/repro``); paths
    in findings are reported relative to its parent so they read as
    ``repro/serve/fleet.py`` wherever the package is installed.
    ``rel_prefix`` overrides that base name (tests use it to get stable
    fixture paths like ``serve/mod.py``).
    """
    checkers = registered_checkers()
    if select is not None:
        wanted = set(select)
        unknown = wanted - {checker.name for checker in checkers}
        if unknown:
            raise ValueError(f"unknown checker(s): {', '.join(sorted(unknown))}")
        checkers = [c for c in checkers if c.name in wanted]
    report = LintReport(checkers_run=len(checkers))
    root = os.path.abspath(root)
    base = os.path.dirname(root) if rel_prefix is None else root
    for abs_path in iter_source_files(root):
        rel_path = os.path.relpath(abs_path, base)
        if rel_prefix is not None:
            rel_path = os.path.join(rel_prefix, rel_path) if rel_prefix else rel_path
        with open(abs_path, encoding="utf-8") as handle:
            source = handle.read()
        try:
            module = ModuleInfo(abs_path, rel_path, source)
        except SyntaxError as error:
            report.findings.append(
                Finding(
                    rule="parse-error",
                    severity="error",
                    path=rel_path.replace(os.sep, "/"),
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    message=f"file does not parse: {error.msg}",
                )
            )
            report.files_checked += 1
            continue
        report.files_checked += 1
        raw: List[Finding] = []
        for checker in checkers:
            raw.extend(checker.check(module))
        report.findings.extend(_apply_waivers(module, raw))
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def _apply_waivers(module: ModuleInfo, raw: List[Finding]) -> List[Finding]:
    """Suppress waived findings; report bad or unused waivers as findings."""
    kept: List[Finding] = []
    by_line: Dict[int, List[Waiver]] = {}
    for waiver in module.waivers:
        by_line.setdefault(waiver.line, []).append(waiver)
    for finding in raw:
        waived = False
        for waiver in by_line.get(finding.line, []):
            if finding.rule in waiver.rules:
                waiver.used = True
                if waiver.reason:  # reasonless waivers do not suppress
                    waived = True
        if not waived:
            kept.append(finding)
    for waiver in module.waivers:
        rules = ", ".join(waiver.rules)
        if not waiver.reason:
            kept.append(
                Finding(
                    rule="waiver-syntax",
                    severity="error",
                    path=module.path,
                    line=waiver.comment_line,
                    col=0,
                    message=(
                        f"waiver for ({rules}) has no reason; write "
                        f"'# lint: allow({rules}) -- <why this is safe>'"
                    ),
                    context=module.line_text(waiver.comment_line),
                )
            )
        elif not waiver.used:
            kept.append(
                Finding(
                    rule="unused-waiver",
                    severity="error",
                    path=module.path,
                    line=waiver.comment_line,
                    col=0,
                    message=(
                        f"waiver for ({rules}) suppresses nothing on line "
                        f"{waiver.line}; delete it"
                    ),
                    context=module.line_text(waiver.comment_line),
                )
            )
    return kept


# ----------------------------------------------------------------------
# baseline ratchet
# ----------------------------------------------------------------------
@dataclass
class BaselineResult:
    """Findings split against a committed baseline."""

    new: List[Finding] = field(default_factory=list)
    known: List[Finding] = field(default_factory=list)
    stale: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "new": [finding.to_dict() for finding in self.new],
            "known": [finding.to_dict() for finding in self.known],
            "stale": list(self.stale),
        }


def load_baseline(path: str) -> List[dict]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a lint baseline "
            f"(expected {{'version': {BASELINE_VERSION}, ...}})"
        )
    entries = payload.get("findings", [])
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'findings' must be a list")
    return entries


def write_baseline(path: str, findings: List[Finding]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "context": finding.context,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def apply_baseline(
    findings: List[Finding], baseline: List[dict]
) -> BaselineResult:
    """Ratchet: consume baseline slots per finding key; the rest are new.

    Each baseline entry absorbs at most one current finding with the same
    ``(rule, path, context)`` key, so duplicating a known-bad pattern
    still fails. Entries nothing matched are reported stale — the
    baseline may only shrink.
    """
    slots: Dict[Tuple[str, str, str], List[dict]] = {}
    for entry in baseline:
        key = (
            str(entry.get("rule", "")),
            str(entry.get("path", "")),
            str(entry.get("context", "")),
        )
        slots.setdefault(key, []).append(entry)
    result = BaselineResult()
    for finding in findings:
        bucket = slots.get(finding.key())
        if bucket:
            bucket.pop()
            result.known.append(finding)
        else:
            result.new.append(finding)
    for bucket in slots.values():
        result.stale.extend(bucket)
    result.stale.sort(
        key=lambda e: (e.get("path", ""), e.get("rule", ""), e.get("context", ""))
    )
    return result

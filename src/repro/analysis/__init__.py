"""Analysis layer: figure series, statistics and text reports."""

from .figures import (
    ACCURACY,
    FAIRNESS_METRICS,
    figure2_series,
    figure2_shape_checks,
    figure3_series,
    figure3_shape_checks,
    figure4_series,
    figure4_strategy_comparison,
    figure5_series,
)
from .plots import (
    ascii_scatter,
    plot_figure2_panel,
    plot_figure3_panel,
    plot_figure5_panel,
)
from .report import (
    format_table,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
)
from .thresholds import best_threshold, threshold_sweep
from .stats import (
    failure_rate,
    ks_distance,
    no_significant_difference,
    summary,
    variance_ratio,
)

__all__ = [
    "ACCURACY",
    "FAIRNESS_METRICS",
    "ascii_scatter",
    "best_threshold",
    "failure_rate",
    "figure2_series",
    "figure2_shape_checks",
    "figure3_series",
    "figure3_shape_checks",
    "figure4_series",
    "figure4_strategy_comparison",
    "figure5_series",
    "format_table",
    "ks_distance",
    "no_significant_difference",
    "plot_figure2_panel",
    "plot_figure3_panel",
    "plot_figure5_panel",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "summary",
    "threshold_sweep",
    "variance_ratio",
]

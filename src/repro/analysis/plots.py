"""Terminal scatter plots — the paper's §7 visualisation extension.

The original FairPrep points users at jupyter notebooks for exploring the
metric files; with no plotting stack available here, these render the
paper's scatter panels (accuracy vs a fairness measure, two conditions
overlaid) as unicode text, so a study's outcome is inspectable straight
from the terminal or a CI log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

# condition -> glyph, in drawing order (later conditions overwrite earlier)
_GLYPHS = ("o", "x", "+", "*")


def ascii_scatter(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 56,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
    x_range: Optional[Tuple[float, float]] = None,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Render ``{condition: (xs, ys)}`` as a unicode scatter plot.

    Each condition gets its own glyph; a legend and axis ranges are
    appended. NaN points are dropped.
    """
    if not series:
        raise ValueError("nothing to plot")
    if len(series) > len(_GLYPHS):
        raise ValueError(f"at most {len(_GLYPHS)} conditions supported")

    cleaned: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for name, (xs, ys) in series.items():
        xs = np.asarray(list(xs), dtype=np.float64)
        ys = np.asarray(list(ys), dtype=np.float64)
        if xs.shape != ys.shape:
            raise ValueError(f"series {name!r}: x and y lengths differ")
        ok = ~(np.isnan(xs) | np.isnan(ys))
        cleaned[name] = (xs[ok], ys[ok])

    all_x = np.concatenate([xs for xs, _ in cleaned.values()]) if cleaned else np.array([])
    all_y = np.concatenate([ys for _, ys in cleaned.values()])
    if all_x.size == 0:
        raise ValueError("all points are NaN")
    x_lo, x_hi = x_range if x_range else _pad_range(all_x)
    y_lo, y_hi = y_range if y_range else _pad_range(all_y)

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, (xs, ys)) in zip(_GLYPHS, cleaned.items()):
        cols = _to_cells(xs, x_lo, x_hi, width)
        rows = _to_cells(ys, y_lo, y_hi, height)
        for row, col in zip(rows, cols):
            grid[height - 1 - row][col] = glyph

    border = "+" + "-" * width + "+"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(border)
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(border)
    lines.append(
        f"{x_label}: [{x_lo:.3f}, {x_hi:.3f}]   {y_label}: [{y_lo:.3f}, {y_hi:.3f}]"
    )
    legend = "   ".join(
        f"{glyph} = {name}" for glyph, name in zip(_GLYPHS, cleaned.keys())
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def plot_figure2_panel(panels: Dict, learner: str, intervention: str, metric: str) -> str:
    """One Figure 2 panel: tuned vs untuned points, accuracy over fairness."""
    panel = panels[(learner, intervention, metric)]
    return ascii_scatter(
        {
            "no tuning": (panel["untuned"]["fairness"], panel["untuned"]["accuracy"]),
            "tuning": (panel["tuned"]["fairness"], panel["tuned"]["accuracy"]),
        },
        x_label=metric,
        y_label="accuracy",
        title=f"{learner} / {intervention}",
    )


def plot_figure3_panel(panels: Dict, learner: str, intervention: str) -> str:
    """One Figure 3 panel: scaled vs unscaled points, accuracy over DI."""
    panel = panels[(learner, intervention)]
    return ascii_scatter(
        {
            "no scaling": (panel["no scaling"]["DI"], panel["no scaling"]["accuracy"]),
            "scaling": (panel["scaling"]["DI"], panel["scaling"]["accuracy"]),
        },
        x_label="DI",
        y_label="accuracy",
        title=f"{learner} / {intervention}",
    )


def plot_figure5_panel(panels: Dict, learner: str, intervention: str) -> str:
    """One Figure 5 panel: complete-case vs imputed points, accuracy over DI."""
    panel = panels[(learner, intervention)]
    return ascii_scatter(
        {
            "complete case": (
                panel["complete case"]["DI"],
                panel["complete case"]["accuracy"],
            ),
            "imputed": (panel["imputed"]["DI"], panel["imputed"]["accuracy"]),
        },
        x_label="DI",
        y_label="accuracy",
        title=f"{learner} / {intervention}",
    )


def _pad_range(values: np.ndarray, fraction: float = 0.08) -> Tuple[float, float]:
    lo, hi = float(values.min()), float(values.max())
    if lo == hi:
        pad = abs(lo) * fraction + 1e-3
    else:
        pad = (hi - lo) * fraction
    return lo - pad, hi + pad


def _to_cells(values: np.ndarray, lo: float, hi: float, cells: int) -> np.ndarray:
    span = hi - lo
    if span <= 0:
        return np.zeros(len(values), dtype=int)
    scaled = (values - lo) / span * (cells - 1)
    return np.clip(np.round(scaled).astype(int), 0, cells - 1)

"""Per-figure series: regenerate the paper's evaluation panels from runs.

Each ``figureN_series`` function consumes :class:`repro.core.RunResult`
records produced by the corresponding benchmark sweep and returns the data
behind the paper's plot panels, plus the shape-level checks EXPERIMENTS.md
reports (variance reduction, failure rates, significance calls).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import RunResult
from .stats import (
    failure_rate,
    ks_distance,
    no_significant_difference,
    summary,
    variance_ratio,
)

# the three fairness measures Figure 2 plots against accuracy
FAIRNESS_METRICS = {
    "DI": "group__disparate_impact",
    "FNRD": "group__false_negative_rate_difference",
    "FPRD": "group__false_positive_rate_difference",
}

ACCURACY = "overall__accuracy"


def _learner_base(result: RunResult) -> str:
    name = result.best_candidate.learner
    return name.split("(")[0]


def _is_tuned(result: RunResult) -> bool:
    return "(tuned)" in result.best_candidate.learner


def _intervention(result: RunResult) -> str:
    pre = result.components.get("pre_processor", "NoIntervention")
    post = result.components.get("post_processor", "NoIntervention")
    if pre != "NoIntervention":
        return pre
    if post != "NoIntervention":
        return post
    return "no intervention"


def _scaled(result: RunResult) -> bool:
    return result.components.get("scaler") != "NoOpScaler"


def _imputation(result: RunResult) -> str:
    return result.components.get("missing_value_handler", "")


# ---------------------------------------------------------------------------
# Figure 2: impact of hyperparameter tuning (germancredit)
# ---------------------------------------------------------------------------
def figure2_series(results: Sequence[RunResult]) -> Dict:
    """Panels keyed by (learner, intervention, fairness metric).

    Each panel holds the tuned and untuned scatter points
    ``(fairness_value, accuracy)`` and the summary statistics the paper's
    claim rests on: tuned runs shift to higher accuracy and lower variance
    of the fairness outcome.
    """
    panels: Dict = {}
    for metric_label, metric_key in FAIRNESS_METRICS.items():
        for result in results:
            key = (_learner_base(result), _intervention(result), metric_label)
            panel = panels.setdefault(
                key,
                {"tuned": {"fairness": [], "accuracy": []},
                 "untuned": {"fairness": [], "accuracy": []}},
            )
            bucket = panel["tuned" if _is_tuned(result) else "untuned"]
            bucket["fairness"].append(result.test_metrics.get(metric_key, float("nan")))
            bucket["accuracy"].append(result.test_metrics.get(ACCURACY, float("nan")))

    for key, panel in panels.items():
        tuned, untuned = panel["tuned"], panel["untuned"]
        panel["summary"] = {
            "tuned_accuracy": summary(tuned["accuracy"]),
            "untuned_accuracy": summary(untuned["accuracy"]),
            "tuned_fairness": summary(tuned["fairness"]),
            "untuned_fairness": summary(untuned["fairness"]),
            "fairness_variance_ratio": variance_ratio(
                tuned["fairness"], untuned["fairness"]
            ),
            "accuracy_gain": (
                summary(tuned["accuracy"])["mean"]
                - summary(untuned["accuracy"])["mean"]
            ),
        }
    return panels


def figure2_shape_checks(panels: Dict) -> Dict[str, float]:
    """Aggregate shape verdicts: in what fraction of panels does tuning
    (a) not hurt mean accuracy and (b) reduce fairness-outcome variance?"""
    accuracy_wins = []
    variance_wins = []
    for panel in panels.values():
        s = panel["summary"]
        if not np.isnan(s["accuracy_gain"]):
            accuracy_wins.append(s["accuracy_gain"] >= -0.005)
        ratio = s["fairness_variance_ratio"]
        if not np.isnan(ratio):
            variance_wins.append(ratio <= 1.0)
    return {
        "panels": len(panels),
        "accuracy_not_hurt_fraction": float(np.mean(accuracy_wins)) if accuracy_wins else float("nan"),
        "variance_reduced_fraction": float(np.mean(variance_wins)) if variance_wins else float("nan"),
    }


# ---------------------------------------------------------------------------
# Figure 3: impact of feature scaling (ricci)
# ---------------------------------------------------------------------------
def figure3_series(results: Sequence[RunResult]) -> Dict:
    """Panels keyed by (learner, intervention) with scaled/unscaled points."""
    panels: Dict = {}
    for result in results:
        key = (_learner_base(result), _intervention(result))
        panel = panels.setdefault(
            key,
            {"scaling": {"accuracy": [], "DI": []},
             "no scaling": {"accuracy": [], "DI": []}},
        )
        bucket = panel["scaling" if _scaled(result) else "no scaling"]
        bucket["accuracy"].append(result.test_metrics.get(ACCURACY, float("nan")))
        bucket["DI"].append(
            result.test_metrics.get(FAIRNESS_METRICS["DI"], float("nan"))
        )
    for panel in panels.values():
        panel["summary"] = {
            "scaled_accuracy": summary(panel["scaling"]["accuracy"]),
            "unscaled_accuracy": summary(panel["no scaling"]["accuracy"]),
            "unscaled_failure_rate": failure_rate(panel["no scaling"]["accuracy"]),
            "scaled_failure_rate": failure_rate(panel["scaling"]["accuracy"]),
            "accuracy_ks_distance": ks_distance(
                panel["scaling"]["accuracy"], panel["no scaling"]["accuracy"]
            ),
        }
    return panels


def figure3_shape_checks(panels: Dict) -> Dict[str, float]:
    """LR should fail often without scaling; trees should be indifferent."""
    lr_failures, dt_distance = [], []
    for (learner, _), panel in panels.items():
        if learner == "LogisticRegression":
            lr_failures.append(panel["summary"]["unscaled_failure_rate"])
        elif learner == "DecisionTree":
            dt_distance.append(panel["summary"]["accuracy_ks_distance"])
    return {
        "lr_mean_unscaled_failure_rate": float(np.nanmean(lr_failures)) if lr_failures else float("nan"),
        "dt_mean_scaling_ks_distance": float(np.nanmean(dt_distance)) if dt_distance else float("nan"),
    }


# ---------------------------------------------------------------------------
# Figure 4: imputed vs complete record accuracy (adult)
# ---------------------------------------------------------------------------
def figure4_series(results: Sequence[RunResult]) -> Dict:
    """Panels keyed by (learner, intervention, imputation strategy).

    Per run: accuracy on originally-incomplete (imputed) vs complete test
    records — the red and gray dots of Figure 4.
    """
    panels: Dict = {}
    for result in results:
        if not result.test_metrics_incomplete:
            continue
        key = (_learner_base(result), _intervention(result), _imputation(result))
        panel = panels.setdefault(key, {"imputed": [], "complete": []})
        panel["imputed"].append(
            result.test_metrics_incomplete.get(ACCURACY, float("nan"))
        )
        panel["complete"].append(
            result.test_metrics_complete.get(ACCURACY, float("nan"))
        )
    for panel in panels.values():
        panel["summary"] = {
            "imputed_accuracy": summary(panel["imputed"]),
            "complete_accuracy": summary(panel["complete"]),
            "imputed_minus_complete": (
                summary(panel["imputed"])["mean"] - summary(panel["complete"])["mean"]
            ),
        }
    return panels


def figure4_strategy_comparison(
    panels: Dict, strategy_a: str, strategy_b: str
) -> Dict:
    """Mode vs learned imputation: paired accuracy series + significance."""
    a_values, b_values = [], []
    for (learner, intervention, strategy), panel in panels.items():
        if strategy == strategy_a:
            a_values.extend(panel["imputed"])
        elif strategy == strategy_b:
            b_values.extend(panel["imputed"])
    comparable = len(a_values) >= 3 and len(b_values) >= 3
    return {
        strategy_a: summary(a_values),
        strategy_b: summary(b_values),
        "no_significant_difference": (
            no_significant_difference(a_values, b_values) if comparable else None
        ),
    }


# ---------------------------------------------------------------------------
# Figure 5: complete-case analysis vs inclusion of imputed records (adult)
# ---------------------------------------------------------------------------
def figure5_series(results: Sequence[RunResult]) -> Dict:
    """Panels keyed by (learner, intervention) with complete-case vs imputed
    accuracy/DI point clouds."""
    panels: Dict = {}
    for result in results:
        handler = _imputation(result)
        condition = (
            "complete case" if handler.startswith("CompleteCase") else "imputed"
        )
        key = (_learner_base(result), _intervention(result))
        panel = panels.setdefault(
            key,
            {"complete case": {"accuracy": [], "DI": []},
             "imputed": {"accuracy": [], "DI": []}},
        )
        panel[condition]["accuracy"].append(
            result.test_metrics.get(ACCURACY, float("nan"))
        )
        panel[condition]["DI"].append(
            result.test_metrics.get(FAIRNESS_METRICS["DI"], float("nan"))
        )
    for panel in panels.values():
        cc, imp = panel["complete case"], panel["imputed"]
        comparable = len(cc["DI"]) >= 3 and len(imp["DI"]) >= 3
        panel["summary"] = {
            "complete_case_accuracy": summary(cc["accuracy"]),
            "imputed_accuracy": summary(imp["accuracy"]),
            "complete_case_DI": summary(cc["DI"]),
            "imputed_DI": summary(imp["DI"]),
            "di_no_significant_difference": (
                no_significant_difference(cc["DI"], imp["DI"]) if comparable else None
            ),
        }
    return panels

"""Decision-threshold sweeps over prediction scores.

Post-processing interventions (reject option, calibrated equalized odds)
act on scores; this module exposes the underlying accuracy/fairness-vs-
threshold curves so users can see *why* an intervention picked its
operating point — part of the paper's human-in-the-loop direction.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..fairness import BinaryLabelDataset, ClassificationMetric


def threshold_sweep(
    dataset_true: BinaryLabelDataset,
    scores: np.ndarray,
    unprivileged_groups,
    privileged_groups,
    num_thresholds: int = 21,
) -> List[Dict[str, float]]:
    """Metrics at evenly spaced decision thresholds over the scores.

    Returns one row per threshold with accuracy, balanced accuracy,
    selection rate, statistical parity difference and disparate impact.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if len(scores) != dataset_true.num_instances:
        raise ValueError("scores length does not match the dataset")
    if num_thresholds < 2:
        raise ValueError("need at least 2 thresholds")
    rows = []
    for threshold in np.linspace(0.0, 1.0, num_thresholds):
        labels = np.where(
            scores >= threshold,
            dataset_true.favorable_label,
            dataset_true.unfavorable_label,
        )
        pred = dataset_true.with_predictions(labels=labels, scores=scores)
        metric = ClassificationMetric(
            dataset_true, pred, unprivileged_groups, privileged_groups
        )
        measures = metric.performance_measures()
        rows.append(
            {
                "threshold": float(threshold),
                "accuracy": measures["accuracy"],
                "balanced_accuracy": measures["balanced_accuracy"],
                "selection_rate": measures["selection_rate"],
                "statistical_parity_difference": metric.statistical_parity_difference(),
                "disparate_impact": metric.disparate_impact(),
            }
        )
    return rows


def best_threshold(
    sweep: List[Dict[str, float]],
    objective: str = "balanced_accuracy",
    fairness_metric: str = "statistical_parity_difference",
    fairness_bound: float = None,
) -> Dict[str, float]:
    """Pick the sweep row maximizing the objective, optionally subject to
    ``|fairness_metric| <= fairness_bound``; falls back to the least-
    violating row when the bound is infeasible."""
    if not sweep:
        raise ValueError("empty sweep")
    candidates = sweep
    if fairness_bound is not None:
        feasible = [
            row
            for row in sweep
            if not np.isnan(row[fairness_metric])
            and abs(row[fairness_metric]) <= fairness_bound
        ]
        if feasible:
            candidates = feasible
        else:
            return min(
                sweep,
                key=lambda row: (
                    np.inf
                    if np.isnan(row[fairness_metric])
                    else abs(row[fairness_metric])
                ),
            )
    return max(
        candidates,
        key=lambda row: (
            -np.inf if np.isnan(row[objective]) else row[objective]
        ),
    )

"""Text rendering of figure panels (the benches print these tables)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Aligned monospace table."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[j])), *(len(row[j]) for row in rendered)) if rendered else len(str(headers[j]))
        for j in range(len(headers))
    ]
    def line(parts):
        return "  ".join(str(part).ljust(width) for part, width in zip(parts, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def _cell(value) -> str:
    if isinstance(value, float):
        if np.isnan(value):
            return "nan"
        return f"{value:.3f}"
    return str(value)


def render_figure2(panels: Dict) -> str:
    """One row per (learner, intervention, metric): the tuned-vs-untuned story."""
    headers = [
        "learner", "intervention", "metric",
        "acc(untuned)", "acc(tuned)",
        "std_fair(untuned)", "std_fair(tuned)", "var_ratio",
    ]
    rows: List[List] = []
    for (learner, intervention, metric), panel in sorted(panels.items()):
        s = panel["summary"]
        rows.append([
            learner, intervention, metric,
            s["untuned_accuracy"]["mean"], s["tuned_accuracy"]["mean"],
            s["untuned_fairness"]["std"], s["tuned_fairness"]["std"],
            s["fairness_variance_ratio"],
        ])
    return format_table(headers, rows)


def render_figure3(panels: Dict) -> str:
    headers = [
        "learner", "intervention",
        "acc(scaled)", "acc(unscaled)",
        "fail_rate(scaled)", "fail_rate(unscaled)", "ks",
    ]
    rows: List[List] = []
    for (learner, intervention), panel in sorted(panels.items()):
        s = panel["summary"]
        rows.append([
            learner, intervention,
            s["scaled_accuracy"]["mean"], s["unscaled_accuracy"]["mean"],
            s["scaled_failure_rate"], s["unscaled_failure_rate"],
            s["accuracy_ks_distance"],
        ])
    return format_table(headers, rows)


def render_figure4(panels: Dict) -> str:
    headers = [
        "learner", "intervention", "imputation",
        "acc(imputed)", "acc(complete)", "delta",
    ]
    rows: List[List] = []
    for (learner, intervention, imputation), panel in sorted(panels.items()):
        s = panel["summary"]
        rows.append([
            learner, intervention, imputation,
            s["imputed_accuracy"]["mean"], s["complete_accuracy"]["mean"],
            s["imputed_minus_complete"],
        ])
    return format_table(headers, rows)


def render_figure5(panels: Dict) -> str:
    headers = [
        "learner", "intervention",
        "acc(cc)", "acc(imputed)", "DI(cc)", "DI(imputed)", "DI_same?",
    ]
    rows: List[List] = []
    for (learner, intervention), panel in sorted(panels.items()):
        s = panel["summary"]
        rows.append([
            learner, intervention,
            s["complete_case_accuracy"]["mean"], s["imputed_accuracy"]["mean"],
            s["complete_case_DI"]["mean"], s["imputed_DI"]["mean"],
            str(s["di_no_significant_difference"]),
        ])
    return format_table(headers, rows)

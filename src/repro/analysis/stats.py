"""Statistical helpers for comparing experiment outcome distributions."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np
from scipy import stats as scipy_stats


def summary(values: Sequence[float]) -> Dict[str, float]:
    """Mean/std/min/max/count over a series, NaN-tolerant."""
    arr = np.asarray(list(values), dtype=np.float64)
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        return {"count": 0, "mean": float("nan"), "std": float("nan"),
                "min": float("nan"), "max": float("nan")}
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=0)),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }


def variance_ratio(treated: Sequence[float], control: Sequence[float]) -> float:
    """Var(treated) / Var(control); < 1 means the treatment reduced variance.

    This is the Figure 2 headline: tuned-model outcome variance divided by
    untuned-model outcome variance.
    """
    treated = _clean(treated)
    control = _clean(control)
    if treated.size < 2 or control.size < 2:
        return float("nan")
    control_var = control.var(ddof=0)
    if control_var == 0:
        return float("nan")
    return float(treated.var(ddof=0) / control_var)


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (0 = identical distributions)."""
    a, b = _clean(a), _clean(b)
    if a.size == 0 or b.size == 0:
        return float("nan")
    return float(scipy_stats.ks_2samp(a, b).statistic)


def no_significant_difference(
    a: Sequence[float], b: Sequence[float], alpha: float = 0.05
) -> bool:
    """True when a two-sided Mann-Whitney U test fails to reject equality.

    Used for the paper's "no significant difference between mode and datawig
    imputation" and "no significant impact on disparate impact" claims.
    """
    a, b = _clean(a), _clean(b)
    if a.size < 3 or b.size < 3:
        raise ValueError("need at least 3 observations per sample")
    if np.array_equal(a, b):
        return True
    result = scipy_stats.mannwhitneyu(a, b, alternative="two-sided")
    return bool(result.pvalue > alpha)


def failure_rate(values: Sequence[float], threshold: float = 0.5) -> float:
    """Fraction of runs below an accuracy threshold (Figure 3's failed fits)."""
    arr = _clean(values)
    if arr.size == 0:
        return float("nan")
    return float((arr < threshold).mean())


def _clean(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(list(values), dtype=np.float64)
    return arr[~np.isnan(arr)]

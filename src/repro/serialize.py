"""Dependency-free component state protocol (the no-pickle contract).

Every fitted component that can leave the experiment process — scalers,
encoders, learners, missing-value handlers, fairness pre/post-processors —
implements a ``to_state()`` / ``from_state()`` round-trip:

* ``to_state()`` returns a tree of JSON scalars, lists, string-keyed dicts
  and **numeric** numpy arrays. Strings and category tables travel as JSON
  lists (never as object arrays, which numpy can only persist via pickle);
  numeric arrays are left as arrays so the artifact layer
  (:mod:`repro.serve.artifacts`) can hoist them losslessly into an ``.npz``
  member.
* ``from_state(state)`` is a classmethod rebuilding a fitted instance whose
  predictions/transforms are byte-identical to the original.

Classes opt in with the :func:`serializable` decorator, which records them
in a registry keyed by class name. Deserialization only ever instantiates
registered classes — a manifest can never name an arbitrary import path,
which is the security rationale for refusing pickle.
"""

from __future__ import annotations

from typing import Any, Dict, Type

import numpy as np

# class-name -> class, for every component that may appear in an artifact
SERIALIZABLE: Dict[str, Type] = {}


def serializable(cls):
    """Class decorator: register a component for state round-trips."""
    if not (hasattr(cls, "to_state") and hasattr(cls, "from_state")):
        raise TypeError(
            f"{cls.__name__} must define to_state()/from_state() to be serializable"
        )
    SERIALIZABLE[cls.__name__] = cls
    return cls


def state_of(component) -> Dict[str, Any]:
    """Tagged state payload: ``{"type": class name, "state": ...}``."""
    name = type(component).__name__
    if name not in SERIALIZABLE:
        raise TypeError(
            f"{name} is not registered for serialization; decorate it with "
            "@serializable and implement to_state()/from_state()"
        )
    return {"type": name, "state": component.to_state()}


def restore(payload: Dict[str, Any]):
    """Rebuild a component from a tagged state payload."""
    name = payload["type"]
    cls = SERIALIZABLE.get(name)
    if cls is None:
        raise ValueError(
            f"unknown component type {name!r} in artifact; known types: "
            f"{sorted(SERIALIZABLE)}"
        )
    return cls.from_state(payload["state"])


# ----------------------------------------------------------------------
# label arrays: class labels may be numeric (favorable/unfavorable floats)
# or strings (e.g. imputer targets); numeric values stay as arrays for the
# lossless npz path, strings become JSON lists
# ----------------------------------------------------------------------
def labels_to_state(labels: np.ndarray) -> Dict[str, Any]:
    labels = np.asarray(labels)
    if labels.dtype.kind in "OUS":
        return {"kind": "str", "values": [str(v) for v in labels.tolist()]}
    return {"kind": "numeric", "values": labels}


def labels_from_state(state: Dict[str, Any]) -> np.ndarray:
    if state["kind"] == "str":
        return np.asarray(state["values"], dtype=object)
    return np.asarray(state["values"])


def optional_array(value):
    """None-tolerant array passthrough for optional fitted attributes."""
    return None if value is None else np.asarray(value)

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the integrated datasets with sizes and protected attributes.
``describe --dataset NAME``
    Print a per-column audit of a generated dataset (counts, missing,
    distributions) — the §2.4-style inspection.
``run --dataset NAME [options]``
    Execute a single lifecycle run and print the key test metrics.
``grid --dataset NAME --seeds N [options]``
    Execute a seed × intervention sweep and print the aggregate table
    (``--export`` publishes the best run's pipeline into a registry;
    ``--distributed`` runs it as a fault-tolerant work-queue coordinator
    leasing preparation groups to ``--jobs`` forked localhost workers
    and/or external ``grid-worker`` processes; ``--frame-store DIR``
    reads the dataset from a memory-mapped frame store).
``grid-worker --connect HOST:PORT [--worker-id ID --frame-store DIR]``
    Join a ``grid --distributed`` coordinator as a worker: rebuild the
    grid from the coordinator's manifest, lease preparation groups,
    stream results back, exit when the grid is done.
``export --dataset NAME --registry PATH [options]``
    Run one lifecycle and publish the fitted pipeline into a registry.
``score --registry PATH --model REF --dataset NAME [options]``
    Reload a pipeline in this (fresh) process and score a batch;
    ``--verify`` byte-compares against the exported run's predictions.
``serve --registry PATH --model REF [--host --port --workers N --max-batch --max-wait-ms]``
    Start the stdlib HTTP scoring endpoint with runtime monitoring and
    micro-batched single-record scoring; ``--workers N`` pre-forks a
    supervised multi-core fleet sharing one port with fleet-aggregated
    ``/metrics`` and ``/healthz``.
``registry --registry PATH [--list | --promote ID | --rollback]``
    Inspect and manage tags in a model registry.
``trace --dir DIR [--strict --json]``
    Summarize a telemetry trace directory (written by ``grid
    --trace-dir`` or ``REPRO_TRACE_DIR``): per-stage time totals across
    every process and the run's critical path; ``--strict`` verifies the
    spans stitch into exactly one tree.
``lint [--strict --json --baseline FILE --write-baseline --select RULES]``
    Run the project-native static-analysis pass (see ``INVARIANTS.md``)
    over the installed ``repro`` package: no-pickle serialization,
    strict-JSON serving, crash-safe writes, fork-safe locks,
    deterministic fingerprints, lock discipline, observable failures,
    versioned wire shapes. ``--baseline`` ratchets against a committed
    findings file; ``--strict`` also fails on stale baseline entries.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import telemetry
from .analysis import format_table, summary
from .core import (
    CalibratedEqOddsPostProcessor,
    CompleteCaseAnalysis,
    DIRemover,
    DatawigImputer,
    DecisionTree,
    Experiment,
    GridSpec,
    LogisticRegression,
    ModeImputer,
    NaiveBayes,
    NoIntervention,
    RejectOptionPostProcessor,
    ResultsStore,
    ReweighingPreProcessor,
    run_grid,
)
from .datasets import dataset_names, load_dataset
from .frame import describe
from .learn import MinMaxScaler, NoOpScaler, StandardScaler

#: bumped when the grid-manifest layout changes; a worker refuses to
#: rebuild a plan from a manifest version it does not understand
MANIFEST_VERSION = 1

_LEARNERS = {
    "lr": lambda tuned: LogisticRegression(tuned=tuned),
    "dt": lambda tuned: DecisionTree(tuned=tuned),
    "nb": lambda tuned: NaiveBayes(),
}

_INTERVENTIONS = {
    "none": NoIntervention,
    "reweighing": ReweighingPreProcessor,
    "di-remover-0.5": lambda: DIRemover(0.5),
    "di-remover-1.0": lambda: DIRemover(1.0),
    "reject-option": lambda: RejectOptionPostProcessor(
        num_class_thresh=20, num_ROC_margin=15
    ),
    "cal-eq-odds": lambda: CalibratedEqOddsPostProcessor(),
}

_SCALERS = {
    "standard": StandardScaler,
    "minmax": MinMaxScaler,
    "none": NoOpScaler,
}

_HANDLERS = {
    "auto": None,  # pick based on the dataset's missingness
    "complete-case": CompleteCaseAnalysis,
    "mode": ModeImputer,
    "learned": DatawigImputer,
}

_KEY_METRICS = [
    "overall__accuracy",
    "privileged__accuracy",
    "unprivileged__accuracy",
    "group__disparate_impact",
    "group__statistical_parity_difference",
    "group__false_negative_rate_difference",
    "group__false_positive_rate_difference",
    "group__theil_index",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FairPrep reproduction: run fairness-intervention studies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_datasets = sub.add_parser(
        "datasets", help="list integrated datasets / synthesize scaled copies"
    )
    dsub = p_datasets.add_subparsers(dest="datasets_command")
    dsub.add_parser("list", help="list integrated datasets (the default)")
    p_synth = dsub.add_parser(
        "synth", help="inflate a dataset to production scale (stratified bootstrap)"
    )
    p_synth.add_argument(
        "--dataset", default="adult", help="source dataset to inflate"
    )
    p_synth.add_argument(
        "--rows", type=int, required=True, help="target row count (e.g. 1000000)"
    )
    p_synth.add_argument("--seed", type=int, default=0, help="resampling seed")
    p_synth.add_argument("--out", default=None, help="write the frame as CSV here")
    p_synth.add_argument(
        "--store",
        default=None,
        help="spill the frame into a memory-mappable store directory",
    )

    p_describe = sub.add_parser("describe", help="audit a generated dataset")
    _dataset_args(p_describe)

    p_run = sub.add_parser("run", help="execute a single lifecycle run")
    _dataset_args(p_run)
    _component_args(p_run)
    p_run.add_argument("--seed", type=int, default=0, help="run seed")

    p_grid = sub.add_parser("grid", help="execute a seed x intervention sweep")
    _dataset_args(p_grid)
    _component_args(p_grid)
    p_grid.add_argument("--seeds", type=int, default=3, help="number of seeds")
    p_grid.add_argument(
        "--interventions",
        nargs="+",
        default=["none", "reweighing", "di-remover-0.5"],
        choices=sorted(_INTERVENTIONS),
    )
    p_grid.add_argument("--output", default=None, help="JSONL results file")
    p_grid.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the grid (1 = serial; >1 uses the "
        "process-pool backend with shared-preparation caching; with "
        "--distributed this is the forked localhost worker count and "
        "0 means serve external grid-worker processes only)",
    )
    p_grid.add_argument(
        "--distributed",
        action="store_true",
        help="run as a work-queue coordinator: lease preparation groups "
        "to --jobs forked localhost workers and any grid-worker process "
        "that connects to --bind; results are identical to serial",
    )
    p_grid.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="coordinator listen address for --distributed "
        "(port 0 picks a free port; printed on startup)",
    )
    p_grid.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        help="distributed lease deadline: a worker silent this long has "
        "its unfinished keys re-queued for another worker",
    )
    p_grid.add_argument(
        "--frame-store",
        default=None,
        metavar="DIR",
        help="read the dataset from this memory-mapped frame store "
        "(written by `datasets synth --store`) instead of generating it; "
        "run fingerprints then derive from the store manifest",
    )
    p_grid.add_argument(
        "--resume",
        action="store_true",
        help="skip combinations already present in --output (matched by "
        "run fingerprint) instead of recomputing them",
    )
    p_grid.add_argument(
        "--export",
        default=None,
        metavar="REGISTRY",
        help="publish the best run's fitted pipeline into this registry",
    )
    p_grid.add_argument(
        "--export-tag",
        action="append",
        default=None,
        help="tag to promote the exported model to (repeatable)",
    )
    p_grid.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress and coordinator event lines on stderr "
        "(the result table still prints)",
    )
    p_grid.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="enable span tracing: every process (coordinator and "
        "workers) appends spans to its own JSONL file in DIR; inspect "
        "with `repro trace --dir DIR`",
    )

    p_worker = sub.add_parser(
        "grid-worker", help="join a distributed grid run as a worker"
    )
    p_worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of a `grid --distributed` coordinator",
    )
    p_worker.add_argument(
        "--worker-id",
        default=None,
        help="stable worker name for coordinator-side stats "
        "(default: hostname-pid)",
    )
    p_worker.add_argument(
        "--frame-store",
        default=None,
        metavar="DIR",
        help="local frame store directory holding the coordinator's "
        "dataset (required when the coordinator grid runs on a store; "
        "fingerprints must match)",
    )
    p_worker.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-lease event lines on stderr",
    )
    p_worker.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="append this worker's spans to its own JSONL file in DIR "
        "(adopts the coordinator's trace id, so a shared DIR stitches "
        "into one tree)",
    )

    p_trace = sub.add_parser(
        "trace", help="summarize a telemetry trace directory"
    )
    p_trace.add_argument(
        "--dir",
        required=True,
        metavar="DIR",
        dest="trace_dir",
        help="trace directory written via --trace-dir / REPRO_TRACE_DIR",
    )
    p_trace.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero unless the trace stitches into exactly one "
        "span tree with no torn lines",
    )
    p_trace.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable summary instead of the report",
    )

    p_export = sub.add_parser(
        "export", help="run one lifecycle and publish the fitted pipeline"
    )
    _dataset_args(p_export)
    _component_args(p_export)
    p_export.add_argument("--seed", type=int, default=0, help="run seed")
    p_export.add_argument("--registry", required=True, help="registry directory")
    p_export.add_argument(
        "--tag", action="append", default=None, help="tag for the model (repeatable)"
    )

    p_score = sub.add_parser(
        "score", help="reload an exported pipeline and score a batch"
    )
    p_score.add_argument("--registry", required=True, help="registry directory")
    p_score.add_argument(
        "--model", default="production", help="model id or tag (default: production)"
    )
    _dataset_args(p_score)
    p_score.add_argument(
        "--verify",
        action="store_true",
        help="score the exported run's own test split and assert byte-for-byte "
        "agreement with the in-process predictions stored in the artifact",
    )

    p_serve = sub.add_parser("serve", help="start the HTTP scoring endpoint")
    p_serve.add_argument("--registry", required=True, help="registry directory")
    p_serve.add_argument(
        "--model", default="production", help="model id or tag (default: production)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="number of scoring worker processes sharing the port "
        "(1 = single-process serving, the default; N > 1 pre-forks a "
        "supervised fleet via SO_REUSEPORT or inherited-socket accept)",
    )
    p_serve.add_argument(
        "--window", type=int, default=1000, help="monitoring window size"
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="coalesce up to this many concurrent single-record requests "
        "into one vectorized scoring pass (1 = score inline, no batching)",
    )
    p_serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="how long a queued request waits for batch-mates before "
        "dispatching a partial batch",
    )

    p_lint = sub.add_parser(
        "lint", help="statically check the codebase's own invariants"
    )
    p_lint.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="package directory to lint (default: the installed repro package)",
    )
    p_lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="committed baseline of known findings; new findings fail, "
        "baseline entries may only shrink",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    p_lint.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (findings that no longer "
        "fire must be removed from the baseline)",
    )
    p_lint.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report instead of text",
    )
    p_lint.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated checker names to run (default: all)",
    )

    p_registry = sub.add_parser("registry", help="inspect/manage a model registry")
    p_registry.add_argument("--registry", required=True, help="registry directory")
    p_registry.add_argument(
        "--list", action="store_true", help="list models and tags (the default)"
    )
    p_registry.add_argument("--promote", default=None, metavar="MODEL_ID")
    p_registry.add_argument("--rollback", action="store_true")
    p_registry.add_argument("--tag", default="production")
    return parser


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", required=True, choices=dataset_names())
    parser.add_argument("--size", type=int, default=None, help="row-count override")


def _component_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--learner", default="lr", choices=sorted(_LEARNERS))
    parser.add_argument("--no-tuning", action="store_true", help="skip grid search")
    parser.add_argument("--scaler", default="standard", choices=sorted(_SCALERS))
    parser.add_argument(
        "--missing", default="auto", choices=sorted(_HANDLERS), dest="missing"
    )
    parser.add_argument(
        "--intervention", default="none", choices=sorted(_INTERVENTIONS)
    )
    parser.add_argument(
        "--protected", default=None, help="protected attribute override"
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        if getattr(args, "datasets_command", None) == "synth":
            return _cmd_synth(args)
        return _cmd_datasets()
    if args.command == "describe":
        return _cmd_describe(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "score":
        return _cmd_score(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "registry":
        return _cmd_registry(args)
    if args.command == "grid-worker":
        return _cmd_grid_worker(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return _cmd_grid(args)


def _cmd_datasets() -> int:
    rows = []
    for name in dataset_names():
        frame, spec = load_dataset(name, n=500 if name == "adult" else None)
        full_rows = {"adult": 32561}.get(name, frame.num_rows)
        rows.append([
            name,
            full_rows,
            spec.label_column,
            spec.favorable_value,
            ",".join(p.column for p in spec.protected_attributes),
        ])
    print(format_table(["dataset", "rows", "label", "favorable", "protected"], rows))
    return 0


def _cmd_synth(args) -> int:
    from .datasets import group_label_marginals, synthesize
    from .frame import FrameStoreWriter, write_csv

    source_frame, spec = load_dataset(args.dataset)
    synthetic, _ = synthesize(args.dataset, args.rows, seed=args.seed)
    source = group_label_marginals(source_frame, spec)
    scaled = group_label_marginals(synthetic, spec)
    rows = []
    for attribute in spec.protected_attributes:
        a, b = source[attribute.column], scaled[attribute.column]
        rows.append([
            attribute.column,
            f"{a['privileged_fraction']:.4f} -> {b['privileged_fraction']:.4f}",
            f"{a['privileged_base_rate']:.4f} -> {b['privileged_base_rate']:.4f}",
            f"{a['unprivileged_base_rate']:.4f} -> {b['unprivileged_base_rate']:.4f}",
        ])
    rows.append([
        "(label)",
        "",
        f"{source['__label__']['favorable_rate']:.4f} -> "
        f"{scaled['__label__']['favorable_rate']:.4f}",
        "",
    ])
    print(
        f"{args.dataset}: {source_frame.num_rows} -> {synthetic.num_rows} rows "
        f"(seed {args.seed})"
    )
    print(
        format_table(
            ["protected", "priv fraction", "priv base rate", "unpriv base rate"],
            rows,
        )
    )
    if args.out:
        write_csv(synthetic, args.out)
        print(f"wrote {args.out}")
    if args.store:
        with FrameStoreWriter(args.store, overwrite=True) as writer:
            writer.append(synthetic)
        print(f"spilled to {args.store}")
    return 0


def _cmd_describe(args) -> int:
    frame, spec = load_dataset(args.dataset, n=args.size)
    info = describe(frame)
    rows = []
    for column, stats in info.items():
        detail = (
            f"mean={stats['mean']:.2f} std={stats['std']:.2f}"
            if stats["kind"] == "numeric"
            else f"distinct={stats['distinct']} mode={stats['mode']}"
        )
        rows.append([column, stats["kind"], stats["count"], stats["missing"], detail])
    print(format_table(["column", "kind", "count", "missing", "detail"], rows))
    print(f"\nincomplete rows: {frame.num_incomplete_rows()} / {frame.num_rows}")
    return 0


def _pick_handler(args, frame, spec):
    if args.missing != "auto":
        return _HANDLERS[args.missing]()
    if frame.missing_mask(spec.feature_columns).any():
        return ModeImputer()
    return None


def _build_experiment(args) -> Experiment:
    frame, spec = load_dataset(args.dataset, n=args.size)
    intervention = _INTERVENTIONS[args.intervention]()
    from .core.runner import _route_intervention

    pre, post = _route_intervention(intervention)
    return Experiment(
        frame=frame,
        spec=spec,
        random_seed=args.seed,
        learner=_LEARNERS[args.learner](not args.no_tuning),
        numeric_attribute_scaler=_SCALERS[args.scaler](),
        missing_value_handler=_pick_handler(args, frame, spec),
        pre_processor=pre,
        post_processor=post,
        protected_attribute=args.protected,
    )


def _cmd_run(args) -> int:
    result = _build_experiment(args).run()
    print(f"dataset={result.dataset} seed={result.random_seed} "
          f"learner={result.best_candidate.learner}")
    print(f"splits: {result.sizes}\n")
    rows = [[name, result.test_metrics.get(name, float("nan"))] for name in _KEY_METRICS]
    print(format_table(["test metric", "value"], rows))
    if result.test_metrics_incomplete:
        print(
            f"\naccuracy on imputed records:  "
            f"{result.test_metrics_incomplete['overall__accuracy']:.3f}"
        )
        print(
            f"accuracy on complete records: "
            f"{result.test_metrics_complete['overall__accuracy']:.3f}"
        )
    return 0


def _named_grid(
    seeds: int,
    learner: str,
    tuned: bool,
    interventions: List[str],
    scaler: str,
    missing: Optional[str],
) -> GridSpec:
    """Build a :class:`GridSpec` purely from registry names.

    Shared by ``grid`` and ``grid-worker`` so a manifest round-trip over
    the wire reproduces the coordinator's run fingerprints exactly.
    ``missing`` must already be resolved (no ``"auto"``): ``None`` means
    no handler.
    """
    handler = (lambda: _HANDLERS[missing]()) if missing else (lambda: None)
    return GridSpec(
        seeds=list(range(seeds)),
        learners=[lambda: _LEARNERS[learner](tuned)],
        interventions=[_INTERVENTIONS[name] for name in interventions],
        scalers=[_SCALERS[scaler]],
        missing_value_handlers=[handler],
    )


def _resolve_missing(name: str, frame, spec) -> Optional[str]:
    """Collapse ``auto`` to a concrete handler name for this frame."""
    if name != "auto":
        return name
    if frame.missing_mask(spec.feature_columns).any():
        return "mode"
    return None


def _cmd_grid(args) -> int:
    if args.resume and not args.output:
        print("--resume requires --output (the store to resume from)", file=sys.stderr)
        return 2
    if args.trace_dir:
        telemetry.configure(trace_dir=args.trace_dir)
    if args.quiet:
        telemetry.set_quiet(True)
    store = ResultsStore(args.output) if args.output else None
    if args.frame_store:
        from .core import open_store_dataset

        frame, spec, dataset_fingerprint = open_store_dataset(
            args.dataset, args.frame_store
        )
    else:
        frame, spec = load_dataset(args.dataset, n=args.size)
        dataset_fingerprint = None
    missing = _resolve_missing(args.missing, frame, spec)
    grid = _named_grid(
        args.seeds,
        args.learner,
        not args.no_tuning,
        list(args.interventions),
        args.scaler,
        missing,
    )
    executor = None
    if args.distributed:
        executor = _make_coordinator(args, missing, dataset_fingerprint)
    telemetry.log_line(f"executing {grid.size()} runs on {args.dataset} ...")
    progress = None
    if not args.quiet:
        progress = lambda done, total, _: print(  # noqa: E731
            f"  {done}/{total}", end="\r", file=sys.stderr
        )
    results = run_grid(
        (frame, spec),
        grid,
        protected_attribute=args.protected,
        results_store=store,
        progress=progress,
        jobs=args.jobs,
        resume=args.resume,
        executor=executor,
        dataset_fingerprint=dataset_fingerprint,
        export=args.export,
        export_tags=args.export_tag,
    )
    if not args.quiet:
        print(file=sys.stderr)
    if executor is not None and executor.stats is not None:
        _print_distributed_summary(executor.stats)
    rows = []
    by_intervention: dict = {}
    for result in results:
        label = result.components["pre_processor"]
        if label == "NoIntervention":
            label = result.components["post_processor"]
        by_intervention.setdefault(label, {"accuracy": [], "di": []})
        by_intervention[label]["accuracy"].append(
            result.test_metrics["overall__accuracy"]
        )
        by_intervention[label]["di"].append(
            result.test_metrics["group__disparate_impact"]
        )
    for label, series in by_intervention.items():
        acc = summary(series["accuracy"])
        di = summary(series["di"])
        rows.append([label, acc["mean"], acc["std"], di["mean"], di["std"]])
    print(format_table(
        ["intervention", "accuracy", "acc_std", "DI", "DI_std"], rows
    ))
    if store:
        print(f"\nper-run records written to {args.output}")
        print(f"run manifest: {args.output}.manifest.json")
    if args.export:
        print(f"best pipeline exported to registry {args.export}")
    return 0


# ----------------------------------------------------------------------
# distributed grid commands
# ----------------------------------------------------------------------
def _make_coordinator(args, missing: Optional[str], store_fingerprint):
    """Build the work-queue executor + manifest for ``grid --distributed``."""
    from .core import DistributedExecutor
    from .core.distributed import parse_address

    host, port = parse_address(args.bind)
    manifest = {
        "version": MANIFEST_VERSION,
        "dataset": args.dataset,
        "size": args.size,
        "protected": args.protected,
        "grid": {
            "seeds": args.seeds,
            "learner": args.learner,
            "tuned": not args.no_tuning,
            "interventions": list(args.interventions),
            "scaler": args.scaler,
            "missing": missing,
        },
        "store_fingerprint": store_fingerprint,
    }
    executor = DistributedExecutor(
        host=host,
        port=port,
        workers=max(0, args.jobs),
        lease_seconds=args.lease_seconds,
        manifest=manifest,
        on_event=_distributed_event,
    )
    host, port = executor.address
    telemetry.log_line(f"coordinator listening on {host}:{port}")
    telemetry.log_line(f"join with: repro grid-worker --connect {host}:{port}")
    return executor


def _distributed_event(payload: dict) -> None:
    """Coordinator observability: one stderr line per lease-queue event.

    Lines go through :func:`telemetry.log_line` — one syscall per whole
    line, so forked workers and coordinator threads sharing the tty can
    never interleave mid-line, and ``--quiet`` silences them together.
    """
    event = payload.get("event")
    if event == "worker-registered":
        line = f"worker {payload['worker']} registered"
    elif event == "lease":
        line = (
            f"lease {payload['lease']} -> {payload['worker']} "
            f"({payload['keys']} keys)"
        )
    elif event == "requeue":
        line = (
            f"requeued {payload['keys']} keys from lease {payload['lease']} "
            f"({payload['reason']})"
        )
    elif event == "complete":
        line = (
            f"lease {payload['lease']} complete: {payload['worker']} "
            f"delivered {payload['keys']} keys"
        )
    elif event == "worker-error":
        line = f"worker {payload['worker']} error: {payload['message']}"
    else:
        return
    telemetry.log_line(f"[coordinator] {line}")


def _print_distributed_summary(stats: dict) -> None:
    workers = stats.get("workers", {})
    telemetry.log_line(
        f"distributed summary: {len(workers)} worker(s) seen, "
        f"{stats['completed']}/{stats['total']} runs merged, "
        f"{stats['requeued']} keys re-queued, "
        f"{stats['duplicates']} duplicates dropped, "
        f"{stats['stale_results']} stale results recovered"
    )
    for name in sorted(workers):
        record = workers[name]
        hits = max(record["runs"] - record["prep_builds"], 0)
        telemetry.log_line(
            f"  {name}: {record['runs']} runs in {record['groups']} "
            f"group(s), prep-cache hits {hits}, "
            f"{record['seconds']:.2f}s busy"
        )


def _cmd_grid_worker(args) -> int:
    from .core import ExecutionPlan, open_store_dataset
    from .core.distributed import (
        PlanMismatchError,
        ProtocolError,
        parse_address,
        worker_loop,
    )

    if args.trace_dir:
        telemetry.configure(trace_dir=args.trace_dir)
    if args.quiet:
        telemetry.set_quiet(True)
    try:
        address = parse_address(args.connect)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    def plan_factory(manifest):
        if not isinstance(manifest, dict):
            raise ProtocolError("coordinator sent no usable grid manifest")
        version = manifest.get("version")
        if version != MANIFEST_VERSION:
            raise ProtocolError(
                f"unsupported manifest version {version!r} (this worker "
                f"speaks {MANIFEST_VERSION}); upgrade the older side"
            )
        fingerprint = None
        store_fingerprint = manifest.get("store_fingerprint")
        if store_fingerprint:
            if not args.frame_store:
                raise ProtocolError(
                    "coordinator grid reads from a frame store; pass "
                    "--frame-store DIR pointing at an identical local copy"
                )
            frame, spec, fingerprint = open_store_dataset(
                manifest["dataset"], args.frame_store
            )
            if fingerprint != store_fingerprint:
                raise PlanMismatchError(
                    f"local store fingerprint {fingerprint} does not match "
                    f"the coordinator's {store_fingerprint}; the stores "
                    "hold different data"
                )
        else:
            frame, spec = load_dataset(
                manifest["dataset"], n=manifest.get("size")
            )
        g = manifest["grid"]
        grid = _named_grid(
            g["seeds"],
            g["learner"],
            g["tuned"],
            list(g["interventions"]),
            g["scaler"],
            g["missing"],
        )
        return ExecutionPlan.for_grid(
            frame,
            spec,
            grid,
            protected_attribute=manifest.get("protected"),
            dataset_fingerprint=fingerprint,
        )

    def event(payload: dict) -> None:
        name = payload.pop("worker", "worker")
        kind = payload.pop("event", "?")
        detail = " ".join(f"{k}={v}" for k, v in payload.items())
        telemetry.log_line(f"[{name}] {kind} {detail}".rstrip())

    try:
        stats = worker_loop(
            address,
            plan_factory=plan_factory,
            worker_id=args.worker_id,
            on_event=event,
        )
    except ConnectionRefusedError:
        print(f"no coordinator listening on {args.connect}", file=sys.stderr)
        return 2
    except (PlanMismatchError, ProtocolError, KeyError) as error:
        print(f"grid-worker failed: {error}", file=sys.stderr)
        return 2
    hits = max(stats["runs"] - stats["prep_builds"], 0)
    print(
        f"worker {stats['worker']}: {stats['runs']} runs in "
        f"{stats['groups']} group(s), prep-cache hits {hits}, "
        f"{stats['seconds']:.2f}s busy"
    )
    return 0


def _cmd_trace(args) -> int:
    import json
    import os

    from .telemetry import trace as trace_tools

    if not os.path.isdir(args.trace_dir):
        print(f"no trace directory at {args.trace_dir}", file=sys.stderr)
        return 2
    summary_dict = trace_tools.summarize(args.trace_dir)
    if args.json:
        print(json.dumps(summary_dict, indent=1, sort_keys=True))
    else:
        print(trace_tools.render_report(summary_dict))
    if args.strict:
        problem = trace_tools.check_single_tree(summary_dict)
        if problem is not None:
            print(f"strict check failed: {problem}", file=sys.stderr)
            return 1
    return 0


def _cmd_lint(args) -> int:
    import json
    import os

    from .analysis import lint as lint_tools

    root = args.root
    if root is None:
        import repro

        # repro is a namespace package (no __init__.py), so __file__ is
        # None; __path__ holds the single source directory
        root = os.path.abspath(list(repro.__path__)[0])
    if not os.path.isdir(root):
        print(f"no package directory at {root}", file=sys.stderr)
        return 2
    select = None
    if args.select:
        select = [name.strip() for name in args.select.split(",") if name.strip()]
    try:
        report = lint_tools.lint_paths(root, select=select)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    if args.write_baseline:
        if not args.baseline:
            print("--write-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        lint_tools.write_baseline(args.baseline, report.findings)
        print(
            f"wrote {len(report.findings)} finding(s) to {args.baseline}"
        )
        return 0

    baseline_entries = []
    if args.baseline:
        try:
            baseline_entries = lint_tools.load_baseline(args.baseline)
        except FileNotFoundError:
            print(f"no baseline file at {args.baseline}", file=sys.stderr)
            return 2
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
    split = lint_tools.apply_baseline(report.findings, baseline_entries)
    failed = bool(split.new) or (args.strict and bool(split.stale))

    if args.json:
        payload = {
            "files_checked": report.files_checked,
            "checkers_run": report.checkers_run,
            "new": [finding.to_dict() for finding in split.new],
            "baselined": [finding.to_dict() for finding in split.known],
            "stale_baseline": split.stale,
            "ok": not failed,
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 1 if failed else 0

    for finding in split.new:
        print(finding.render())
    for entry in split.stale:
        print(
            f"stale baseline entry: {entry.get('path')} "
            f"[{entry.get('rule')}] {entry.get('context', '')!r} no longer "
            "fires; shrink the baseline (repro lint --write-baseline)"
        )
    summary_bits = [
        f"{report.files_checked} files",
        f"{report.checkers_run} checkers",
        f"{len(split.new)} new finding(s)",
    ]
    if baseline_entries or split.stale:
        summary_bits.append(f"{len(split.known)} baselined")
        summary_bits.append(f"{len(split.stale)} stale")
    print(("FAIL: " if failed else "ok: ") + ", ".join(summary_bits))
    return 1 if failed else 0


# ----------------------------------------------------------------------
# serving commands
# ----------------------------------------------------------------------
def _open_registry(path: str):
    """Open an existing registry or exit with a clean error."""
    from .serve import ModelRegistry

    try:
        return ModelRegistry(path, create=False)
    except FileNotFoundError as error:
        print(error, file=sys.stderr)
        raise SystemExit(2) from None


def _registry_op(operation, *args, **kwargs):
    """Run a registry lookup/tag operation; unknown refs exit cleanly."""
    try:
        return operation(*args, **kwargs)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(message, file=sys.stderr)
        raise SystemExit(2) from None


def _cmd_export(args) -> int:
    from .serve import ModelRegistry

    registry = ModelRegistry(args.registry)
    experiment = _build_experiment(args)
    prepared = experiment.prepare()
    trained = experiment.train_candidates(prepared)
    result = experiment.evaluate(prepared, trained)
    record = experiment.export_pipeline(
        prepared, trained, result, registry=registry, tags=args.tag
    )
    print(f"published model {record['model_id']} to {args.registry}")
    if args.tag:
        print(f"tags: {', '.join(args.tag)}")
    print(
        f"test accuracy {result.test_metrics['overall__accuracy']:.4f}  "
        f"disparate impact {result.test_metrics['group__disparate_impact']:.4f}"
    )
    return 0


def _cmd_score(args) -> int:
    import numpy as np

    from .frame import train_validation_test_masks
    from .serve import ScoringEngine

    registry = _open_registry(args.registry)
    pipeline = _registry_op(registry.load_pipeline, args.model)
    engine = ScoringEngine(pipeline)
    meta = pipeline.metadata

    if args.verify:
        if meta.get("dataset") != args.dataset:
            print(
                f"model was trained on {meta.get('dataset')!r}, not "
                f"{args.dataset!r}",
                file=sys.stderr,
            )
            return 2
        frame, _ = load_dataset(args.dataset, n=meta.get("num_rows"))
        _, _, test_mask = train_validation_test_masks(
            frame.num_rows,
            meta.get("train_fraction", 0.7),
            meta.get("validation_fraction", 0.1),
            int(meta["random_seed"]),
        )
        raw_test = frame.mask(test_mask)
        batch = engine.score_frame(raw_test)
        expected = meta.get("verification", {})
        expected_labels = np.asarray(expected.get("test_labels"))
        if not np.array_equal(batch.labels, expected_labels):
            print("FAIL: reloaded predictions differ from the exported run")
            return 1
        expected_scores = expected.get("test_scores")
        if expected_scores is not None and not np.array_equal(
            batch.scores, np.asarray(expected_scores)
        ):
            print("FAIL: reloaded scores differ from the exported run")
            return 1
        print(
            f"OK: {batch.num_scored} test rows scored byte-identically to "
            "the in-process run"
        )
        return 0

    frame, _ = load_dataset(args.dataset, n=args.size)
    batch = engine.score_frame(frame)
    favorable = float((batch.labels == 1.0).mean())
    print(
        f"scored {batch.num_scored}/{frame.num_rows} rows; "
        f"favorable rate {favorable:.4f}"
    )
    if batch.truth is not None:
        metrics = engine.evaluate_batch(batch)
        rows = [[name, metrics.get(name, float("nan"))] for name in _KEY_METRICS]
        print(format_table(["metric", "value"], rows))
    return 0


def _cmd_serve(args) -> int:
    import os

    from .serve import (
        FairnessMonitor,
        ScoringEngine,
        ScoringService,
        make_server,
    )

    registry = _open_registry(args.registry)
    model_id = _registry_op(registry.resolve, args.model)
    # loaded once, pre-fork: in fleet mode every worker shares this
    # artifact copy-on-write instead of re-reading it N times
    pipeline = registry.load_pipeline(model_id)

    cores = os.cpu_count() or 1
    if args.workers > cores:
        print(
            f"warning: --workers {args.workers} exceeds the machine's "
            f"{cores} CPU core(s); extra workers only add memory and "
            "context-switch overhead",
            file=sys.stderr,
        )

    def build_service() -> ScoringService:
        monitor = FairnessMonitor(
            pipeline.protected_attribute, window_size=args.window
        )
        return ScoringService(
            ScoringEngine(pipeline, monitor=monitor),
            model_id=model_id,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
        )

    if args.workers > 1:
        return _serve_fleet(args, build_service, model_id)

    service = build_service()
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"serving model {model_id} on http://{host}:{port}", file=sys.stderr)
    print("routes: GET /healthz  GET /metrics  POST /score", file=sys.stderr)
    if args.max_batch > 1:
        print(
            f"micro-batching: max_batch={args.max_batch} "
            f"max_wait_ms={args.max_wait_ms}",
            file=sys.stderr,
        )
    try:
        server.serve_forever()
    # lint: allow(silent-except) -- Ctrl-C is the documented way to stop
    # `repro serve`; the finally-block runs the orderly shutdown
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
        service.close()
    return 0


def _serve_fleet(args, build_service, model_id: str) -> int:
    import signal

    from .serve import ServingFleet

    def log(message: str) -> None:
        print(message, file=sys.stderr, flush=True)

    fleet = ServingFleet(
        build_service,
        host=args.host,
        port=args.port,
        workers=args.workers,
        log=log,
    )
    fleet.start()
    print(
        f"serving model {model_id} on http://{fleet.host}:{fleet.port} "
        f"with {args.workers} workers ({fleet.mode})",
        file=sys.stderr,
    )
    print(
        "routes: GET /healthz  GET /metrics  POST /score "
        "(fleet-aggregated on any worker)",
        file=sys.stderr,
    )
    print(
        f"per-worker micro-batching: max_batch={args.max_batch} "
        f"max_wait_ms={args.max_wait_ms}",
        file=sys.stderr,
    )
    signal.signal(signal.SIGTERM, lambda *_: fleet.request_stop())
    signal.signal(signal.SIGINT, lambda *_: fleet.request_stop())
    try:
        fleet.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        fleet.stop()
    return 0


def _cmd_registry(args) -> int:
    registry = _open_registry(args.registry)
    if args.promote:
        _registry_op(registry.promote, args.promote, tag=args.tag)
        print(f"{args.tag} -> {args.promote}")
        return 0
    if args.rollback:
        restored = _registry_op(registry.rollback, tag=args.tag)
        print(f"{args.tag} rolled back to {restored}")
        return 0
    tags = registry.tags()
    reverse: dict = {}
    for tag, model_id in tags.items():
        reverse.setdefault(model_id, []).append(tag)
    rows = []
    for record in registry.list_models():
        model_id = record["model_id"]
        accuracy = record.get("metrics", {}).get("test", {}).get("overall__accuracy")
        rows.append([
            model_id,
            record.get("dataset", "?"),
            "?" if accuracy is None else f"{accuracy:.4f}",
            ",".join(sorted(reverse.get(model_id, []))) or "-",
        ])
    print(format_table(["model", "dataset", "test_acc", "tags"], rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""A small columnar DataFrame, sufficient for the FairPrep lifecycle.

The original FairPrep manipulates pandas dataframes for a handful of
operations: column selection, boolean masking, row slicing, missing-value
introspection, adding/replacing columns, and conversion to numpy matrices.
:class:`DataFrame` implements exactly that surface on top of
:class:`repro.frame.column.Column`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from .column import CATEGORICAL, NUMERIC, Column, concat_columns


class DataFrame:
    """An immutable-by-convention, ordered collection of typed columns."""

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise ValueError("a DataFrame needs at least one column")
        lengths = {len(c) for c in columns}
        if len(lengths) != 1:
            raise ValueError(f"columns have differing lengths: {sorted(lengths)}")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate column names: {dupes}")
        self._columns: Dict[str, Column] = {c.name: c for c in columns}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_dict(
        data: Dict[str, Iterable],
        kinds: Optional[Dict[str, str]] = None,
    ) -> "DataFrame":
        """Build from ``{name: values}``; ``kinds`` may pin column kinds."""
        kinds = kinds or {}
        columns = [
            Column.from_values(name, values, kinds.get(name))
            for name, values in data.items()
        ]
        return DataFrame(columns)

    @staticmethod
    def from_rows(
        rows: Sequence[dict],
        column_order: Optional[Sequence[str]] = None,
        kinds: Optional[Dict[str, str]] = None,
    ) -> "DataFrame":
        """Build from a list of dict-rows (all rows must share keys)."""
        if not rows:
            raise ValueError("need at least one row")
        names = list(column_order) if column_order else list(rows[0].keys())
        data = {name: [row.get(name) for row in rows] for name in names}
        return DataFrame.from_dict(data, kinds=kinds)

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    @property
    def columns(self) -> List[str]:
        return list(self._columns.keys())

    @property
    def num_rows(self) -> int:
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def shape(self) -> tuple:
        return (self.num_rows, self.num_columns)

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        """Raw value array of a column (shared, do not mutate)."""
        return self.col(name).values

    def col(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {self.columns}"
            ) from None

    def kinds(self) -> Dict[str, str]:
        return {name: col.kind for name, col in self._columns.items()}

    def numeric_columns(self) -> List[str]:
        return [n for n, c in self._columns.items() if c.is_numeric]

    def categorical_columns(self) -> List[str]:
        return [n for n, c in self._columns.items() if c.is_categorical]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataFrame(rows={self.num_rows}, columns={self.columns})"

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "DataFrame":
        """Project onto a subset of columns, in the given order."""
        return DataFrame([self.col(n) for n in names])

    def drop(self, names: Sequence[str]) -> "DataFrame":
        if isinstance(names, str):
            names = [names]
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise KeyError(f"cannot drop absent columns {missing}")
        keep = [n for n in self.columns if n not in set(names)]
        return self.select(keep)

    def take(self, indices) -> "DataFrame":
        """Row subset / reorder by integer indices."""
        indices = np.asarray(indices)
        return DataFrame([c.take(indices) for c in self._columns.values()])

    def mask(self, boolean_mask) -> "DataFrame":
        """Row subset by boolean mask."""
        boolean_mask = np.asarray(boolean_mask, dtype=bool)
        return DataFrame([c.mask(boolean_mask) for c in self._columns.values()])

    def head(self, n: int = 5) -> "DataFrame":
        return self.take(np.arange(min(n, self.num_rows)))

    # ------------------------------------------------------------------
    # mutation-by-copy
    # ------------------------------------------------------------------
    def with_column(self, column: Column) -> "DataFrame":
        """Add or replace a column, returning a new frame."""
        if len(column) != self.num_rows:
            raise ValueError(
                f"column length {len(column)} != frame rows {self.num_rows}"
            )
        cols = []
        replaced = False
        for existing in self._columns.values():
            if existing.name == column.name:
                cols.append(column)
                replaced = True
            else:
                cols.append(existing)
        if not replaced:
            cols.append(column)
        return DataFrame(cols)

    def with_values(self, name: str, values, kind: Optional[str] = None) -> "DataFrame":
        """Add or replace a column from raw values."""
        if kind is None and name in self._columns:
            kind = self._columns[name].kind
        return self.with_column(Column.from_values(name, values, kind))

    def rename(self, mapping: Dict[str, str]) -> "DataFrame":
        cols = [
            c.rename(mapping.get(c.name, c.name)) for c in self._columns.values()
        ]
        return DataFrame(cols)

    def copy(self) -> "DataFrame":
        return DataFrame([c.copy() for c in self._columns.values()])

    # ------------------------------------------------------------------
    # missing values
    # ------------------------------------------------------------------
    def missing_mask(self, columns: Optional[Sequence[str]] = None) -> np.ndarray:
        """Row mask that is True where *any* of the columns is missing."""
        names = list(columns) if columns is not None else self.columns
        mask = np.zeros(self.num_rows, dtype=bool)
        for name in names:
            mask |= self.col(name).missing_mask()
        return mask

    def complete_mask(self, columns: Optional[Sequence[str]] = None) -> np.ndarray:
        return ~self.missing_mask(columns)

    def dropna(self, columns: Optional[Sequence[str]] = None) -> "DataFrame":
        """Complete-case analysis: keep only rows without missing values."""
        return self.mask(self.complete_mask(columns))

    def num_incomplete_rows(self) -> int:
        return int(self.missing_mask().sum())

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_rows(self) -> List[dict]:
        names = self.columns
        arrays = [self._columns[n].values for n in names]
        return [
            {name: arr[i] for name, arr in zip(names, arrays)}
            for i in range(self.num_rows)
        ]

    def to_matrix(self, columns: Optional[Sequence[str]] = None) -> np.ndarray:
        """Numeric matrix of the given (numeric) columns."""
        names = list(columns) if columns is not None else self.numeric_columns()
        bad = [n for n in names if not self.col(n).is_numeric]
        if bad:
            raise TypeError(f"to_matrix() on categorical columns {bad}")
        if not names:
            return np.empty((self.num_rows, 0), dtype=np.float64)
        return np.column_stack([self.col(n).values for n in names])

    def equals(self, other: "DataFrame") -> bool:
        if not isinstance(other, DataFrame):
            return False
        if self.columns != other.columns:
            return False
        return all(
            self.col(n).equals(other.col(n)) for n in self.columns
        )


def concat_rows(frames: Sequence[DataFrame]) -> DataFrame:
    """Stack frames vertically; all must share the same column schema."""
    if not frames:
        raise ValueError("need at least one frame")
    first = frames[0]
    for f in frames[1:]:
        if f.columns != first.columns:
            raise ValueError(
                f"schema mismatch: {first.columns} vs {f.columns}"
            )
        if f.kinds() != first.kinds():
            raise ValueError("column kind mismatch between frames")
    columns = [
        concat_columns([f.col(name) for f in frames]) for name in first.columns
    ]
    return DataFrame(columns)


def train_validation_test_masks(
    num_rows: int,
    train_fraction: float,
    validation_fraction: float,
    seed: int,
) -> tuple:
    """Random, seeded, disjoint row masks for a 3-way split.

    This is the paper's 70/10/20 split primitive: reproducible via the seed,
    and exhaustive (every row lands in exactly one split).
    """
    if not 0 < train_fraction < 1 or not 0 < validation_fraction < 1:
        raise ValueError("fractions must lie in (0, 1)")
    if train_fraction + validation_fraction >= 1:
        raise ValueError("train + validation fractions must leave room for test")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_rows)
    n_train = int(round(train_fraction * num_rows))
    n_val = int(round(validation_fraction * num_rows))
    train_idx = order[:n_train]
    val_idx = order[n_train : n_train + n_val]
    test_idx = order[n_train + n_val :]
    masks = []
    for idx in (train_idx, val_idx, test_idx):
        m = np.zeros(num_rows, dtype=bool)
        m[idx] = True
        masks.append(m)
    return tuple(masks)

"""Aggregation helpers over :class:`repro.frame.DataFrame`.

These cover the exploratory operations the FairPrep paper performs when
auditing datasets (Section 5.3): value distributions, cross tabulations,
group-conditional statistics, and column summaries.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .column import _is_missing_scalar
from .dataframe import DataFrame

MISSING_LABEL = "<missing>"


def value_counts(
    frame: DataFrame, column: str, normalize: bool = False, include_missing: bool = False
) -> Dict:
    """Value distribution of a column, optionally normalized to fractions."""
    col = frame.col(column)
    counts = dict(col.value_counts())
    if include_missing:
        n_missing = col.num_missing()
        if n_missing:
            counts[MISSING_LABEL] = n_missing
    if normalize:
        total = sum(counts.values())
        if total:
            counts = {k: v / total for k, v in counts.items()}
    return counts


def crosstab(frame: DataFrame, rows: str, cols: str) -> Dict:
    """Nested dict ``{row_value: {col_value: count}}`` over two columns.

    Missing values are bucketed under :data:`MISSING_LABEL` so that
    missingness structure (e.g. native-country by race in adult) is visible.
    """
    row_col = frame.col(rows)
    col_col = frame.col(cols)
    if row_col.is_categorical and col_col.is_categorical:
        # shift codes so missing (-1) lands in bucket 0, then count the
        # observed (row, col) pairs sparsely — memory stays O(distinct
        # pairs) even for ID-like high-cardinality columns
        n_c = len(col_col.categories) + 1
        combined = (row_col.codes + 1).astype(np.int64) * n_c + (col_col.codes + 1)
        pairs, counts = np.unique(combined, return_counts=True)
        row_labels = [MISSING_LABEL] + list(row_col.categories)
        col_labels = [MISSING_LABEL] + list(col_col.categories)
        table: Dict = {}
        for pair, count in zip(pairs, counts):
            ri, ci = divmod(int(pair), n_c)
            table.setdefault(row_labels[ri], {})[col_labels[ci]] = int(count)
        return table
    table = {}
    for rv, cv in zip(row_col.values, col_col.values):
        rv = MISSING_LABEL if _is_missing_scalar(rv) else rv
        cv = MISSING_LABEL if _is_missing_scalar(cv) else cv
        table.setdefault(rv, {})
        table[rv][cv] = table[rv].get(cv, 0) + 1
    return table


def _group_masks(column) -> List:
    """``(value, boolean_mask)`` per non-missing group value, sorted by str.

    For dictionary-encoded columns each mask is a single ``codes == k``
    comparison; the sorted category table already provides the ordering.
    """
    if column.is_categorical:
        codes = column.codes
        present = np.unique(codes[codes >= 0])
        return [(column.categories[k], codes == k) for k in present]
    values = column.values
    return [
        (value, np.asarray([v == value for v in values], dtype=bool))
        for value in sorted(
            {v for v in values if not _is_missing_scalar(v)}, key=str
        )
    ]


def groupby_aggregate(
    frame: DataFrame,
    by: str,
    column: str,
    aggregate: Callable[[np.ndarray], float],
) -> Dict:
    """Apply ``aggregate`` to ``column`` within each group of ``by``."""
    groups: Dict = {}
    target = frame.col(column)
    for value, mask in _group_masks(frame.col(by)):
        sub = target.mask(mask)
        if sub.is_numeric:
            data = sub.values[~np.isnan(sub.values)]
        else:
            data = sub.values[sub.codes >= 0]
        groups[value] = aggregate(data)
    return groups


def group_missing_rates(frame: DataFrame, by: str, column: str) -> Dict:
    """Fraction of missing values of ``column`` within each ``by`` group.

    This is the §2.4 audit: the adult ``native-country`` attribute is missing
    roughly four times more often for non-white than for white persons.
    """
    rates: Dict = {}
    missing = frame.col(column).missing_mask()
    for value, mask in _group_masks(frame.col(by)):
        total = int(mask.sum())
        rates[value] = float(missing[mask].sum()) / total if total else float("nan")
    return rates


def describe(frame: DataFrame, columns: Optional[Sequence[str]] = None) -> Dict:
    """Per-column summary: count/missing plus kind-appropriate statistics."""
    names = list(columns) if columns is not None else frame.columns
    summary: Dict = {}
    for name in names:
        col = frame.col(name)
        info = {
            "kind": col.kind,
            "count": len(col) - col.num_missing(),
            "missing": col.num_missing(),
        }
        if col.is_numeric:
            info.update(
                mean=col.mean(), std=col.std(), min=col.min(), max=col.max()
            )
        else:
            counts = col.value_counts()
            info.update(
                distinct=len(counts),
                mode=col.mode(),
                mode_count=next(iter(counts.values())) if counts else 0,
            )
        summary[name] = info
    return summary


def correlation_matrix(frame: DataFrame, columns: Optional[Sequence[str]] = None) -> tuple:
    """Pearson correlations between numeric columns (pairwise complete).

    Returns ``(names, matrix)``.
    """
    names = list(columns) if columns is not None else frame.numeric_columns()
    k = len(names)
    matrix = np.eye(k)
    arrays = [frame[n] for n in names]
    for i in range(k):
        for j in range(i + 1, k):
            a, b = arrays[i], arrays[j]
            ok = ~(np.isnan(a) | np.isnan(b))
            if ok.sum() < 2:
                corr = float("nan")
            else:
                x, y = a[ok], b[ok]
                sx, sy = x.std(), y.std()
                if sx == 0 or sy == 0:
                    corr = float("nan")
                else:
                    corr = float(np.corrcoef(x, y)[0, 1])
            matrix[i, j] = matrix[j, i] = corr
    return names, matrix

"""Typed columns for the :mod:`repro.frame` DataFrame substrate.

FairPrep's lifecycle needs only two column kinds:

* ``numeric`` -- stored as ``float64``, with ``NaN`` marking missing values.
* ``categorical`` -- stored as ``object`` (Python strings), with ``None``
  marking missing values.

This mirrors the pandas semantics the original FairPrep relied on, without
pulling in pandas itself.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

NUMERIC = "numeric"
CATEGORICAL = "categorical"

_KINDS = (NUMERIC, CATEGORICAL)


class Column:
    """A single named, typed column of values with missing-value support."""

    __slots__ = ("name", "kind", "values")

    def __init__(self, name: str, values: np.ndarray, kind: str):
        if kind not in _KINDS:
            raise ValueError(f"unknown column kind {kind!r}; expected one of {_KINDS}")
        if not isinstance(name, str) or not name:
            raise ValueError("column name must be a non-empty string")
        self.name = name
        self.kind = kind
        self.values = values

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def numeric(name: str, values: Iterable) -> "Column":
        """Build a numeric column; ``None`` entries become ``NaN``."""
        arr = np.asarray(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
        return Column(name, arr, NUMERIC)

    @staticmethod
    def categorical(name: str, values: Iterable) -> "Column":
        """Build a categorical column; missing entries stay ``None``."""
        cleaned = []
        for v in values:
            if v is None:
                cleaned.append(None)
            elif isinstance(v, float) and np.isnan(v):
                cleaned.append(None)
            else:
                cleaned.append(str(v))
        arr = np.empty(len(cleaned), dtype=object)
        arr[:] = cleaned
        return Column(name, arr, CATEGORICAL)

    @staticmethod
    def from_values(name: str, values, kind: Optional[str] = None) -> "Column":
        """Build a column, inferring the kind when not given.

        Inference: if every non-missing value is a number (or numeric string
        is *not* considered numeric -- strings stay categorical), the column
        is numeric; otherwise categorical.
        """
        if isinstance(values, Column):
            return Column(name, values.values.copy(), values.kind)
        if kind is not None:
            if kind == NUMERIC:
                return Column.numeric(name, values)
            return Column.categorical(name, values)
        values = list(values) if not isinstance(values, np.ndarray) else values
        if isinstance(values, np.ndarray) and values.dtype.kind in "fiub":
            return Column.numeric(name, values.astype(np.float64))
        inferred_numeric = True
        for v in values:
            if v is None:
                continue
            if isinstance(v, bool):
                continue
            if isinstance(v, (int, float, np.integer, np.floating)):
                if isinstance(v, float) and np.isnan(v):
                    continue
                continue
            inferred_numeric = False
            break
        if inferred_numeric:
            return Column.numeric(name, [None if _is_missing_scalar(v) else v for v in values])
        return Column.categorical(name, values)

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column({self.name!r}, kind={self.kind}, n={len(self)})"

    def copy(self) -> "Column":
        return Column(self.name, self.values.copy(), self.kind)

    def rename(self, name: str) -> "Column":
        return Column(name, self.values, self.kind)

    @property
    def is_numeric(self) -> bool:
        return self.kind == NUMERIC

    @property
    def is_categorical(self) -> bool:
        return self.kind == CATEGORICAL

    # ------------------------------------------------------------------
    # missing values
    # ------------------------------------------------------------------
    def missing_mask(self) -> np.ndarray:
        """Boolean array that is True where the value is missing."""
        if self.is_numeric:
            return np.isnan(self.values)
        return np.asarray([v is None for v in self.values], dtype=bool)

    def num_missing(self) -> int:
        return int(self.missing_mask().sum())

    def has_missing(self) -> bool:
        return bool(self.missing_mask().any())

    def fill_missing(self, fill_value) -> "Column":
        """Return a copy with missing entries replaced by ``fill_value``."""
        mask = self.missing_mask()
        out = self.values.copy()
        if self.is_numeric:
            out[mask] = float(fill_value)
        else:
            out[mask] = str(fill_value)
        return Column(self.name, out, self.kind)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Column":
        return Column(self.name, self.values[np.asarray(indices)], self.kind)

    def mask(self, boolean_mask: np.ndarray) -> "Column":
        boolean_mask = np.asarray(boolean_mask, dtype=bool)
        if len(boolean_mask) != len(self):
            raise ValueError(
                f"mask length {len(boolean_mask)} != column length {len(self)}"
            )
        return Column(self.name, self.values[boolean_mask], self.kind)

    def set_where(self, boolean_mask: np.ndarray, new_values) -> "Column":
        """Return a copy where positions selected by the mask are replaced."""
        boolean_mask = np.asarray(boolean_mask, dtype=bool)
        out = self.values.copy()
        if self.is_numeric:
            out[boolean_mask] = np.asarray(new_values, dtype=np.float64)
        else:
            replacements = new_values
            if np.isscalar(replacements) or isinstance(replacements, str):
                out[boolean_mask] = replacements
            else:
                replacements = list(replacements)
                out[boolean_mask] = np.asarray(
                    [None if _is_missing_scalar(v) else str(v) for v in replacements],
                    dtype=object,
                )
        return Column(self.name, out, self.kind)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def unique(self) -> List:
        """Distinct non-missing values, in first-seen order."""
        seen = {}
        for v in self.values:
            if _is_missing_scalar(v):
                continue
            if v not in seen:
                seen[v] = None
        return list(seen.keys())

    def value_counts(self) -> dict:
        """Counts of non-missing values, ordered by decreasing count."""
        counts: dict = {}
        for v in self.values:
            if _is_missing_scalar(v):
                continue
            counts[v] = counts.get(v, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0]))))

    def mode(self):
        """Most frequent non-missing value; None if the column is all-missing."""
        counts = self.value_counts()
        if not counts:
            return None
        return next(iter(counts))

    def mean(self) -> float:
        if not self.is_numeric:
            raise TypeError(f"mean() on categorical column {self.name!r}")
        present = self.values[~np.isnan(self.values)]
        if present.size == 0:
            return float("nan")
        return float(present.mean())

    def std(self) -> float:
        if not self.is_numeric:
            raise TypeError(f"std() on categorical column {self.name!r}")
        present = self.values[~np.isnan(self.values)]
        if present.size == 0:
            return float("nan")
        return float(present.std())

    def min(self) -> float:
        if not self.is_numeric:
            raise TypeError(f"min() on categorical column {self.name!r}")
        present = self.values[~np.isnan(self.values)]
        if present.size == 0:
            return float("nan")
        return float(present.min())

    def max(self) -> float:
        if not self.is_numeric:
            raise TypeError(f"max() on categorical column {self.name!r}")
        present = self.values[~np.isnan(self.values)]
        if present.size == 0:
            return float("nan")
        return float(present.max())

    def equals(self, other: "Column") -> bool:
        if not isinstance(other, Column):
            return False
        if self.kind != other.kind or len(self) != len(other):
            return False
        if self.is_numeric:
            a, b = self.values, other.values
            both_nan = np.isnan(a) & np.isnan(b)
            return bool(np.all(both_nan | (a == b)))
        return all(x == y for x, y in zip(self.values, other.values))


def _is_missing_scalar(v) -> bool:
    """True for the two missing sentinels: None and float NaN."""
    if v is None:
        return True
    if isinstance(v, (float, np.floating)) and np.isnan(v):
        return True
    return False


def concat_columns(columns: Sequence[Column]) -> Column:
    """Stack several same-kind, same-name columns vertically."""
    if not columns:
        raise ValueError("need at least one column to concatenate")
    first = columns[0]
    for col in columns[1:]:
        if col.kind != first.kind:
            raise ValueError(
                f"cannot concat kinds {first.kind!r} and {col.kind!r} "
                f"for column {first.name!r}"
            )
    values = np.concatenate([c.values for c in columns])
    if first.is_categorical:
        out = np.empty(len(values), dtype=object)
        out[:] = values
        values = out
    return Column(first.name, values, first.kind)

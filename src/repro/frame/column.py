"""Typed columns for the :mod:`repro.frame` DataFrame substrate.

FairPrep's lifecycle needs only two column kinds:

* ``numeric`` -- stored as ``float64``, with ``NaN`` marking missing values.
* ``categorical`` -- dictionary-encoded: stored as ``int32`` *codes* into a
  sorted *category table* of strings, with code ``-1`` marking missing
  values. The familiar ``object``-array view (strings with ``None`` for
  missing) is materialized lazily via :attr:`Column.values` /
  :meth:`Column.decoded`, so callers that predate the columnar storage keep
  working unchanged.

The coded representation is what makes the featurization hot paths
vectorizable: one-hot encoding becomes a code remap plus a fancy-index
scatter, frequency/target encoding become ``bincount`` table lookups, and
group-by masks become ``codes == k`` comparisons — no per-value Python
loops anywhere on the hot path.

Invariants of the categorical storage:

* the category table is a unique, ascending-sorted (by ``str`` ordering)
  ``object`` array of strings — sortedness is what lets every lookup use
  ``np.searchsorted``;
* codes lie in ``[-1, len(categories) - 1]``; ``-1`` means missing;
* the table may contain categories that no code currently references
  (e.g. after :meth:`mask`); semantics are defined by the decoded values.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

NUMERIC = "numeric"
CATEGORICAL = "categorical"

_KINDS = (NUMERIC, CATEGORICAL)


def _is_missing_scalar(v) -> bool:
    """True for the two missing sentinels: None and float NaN."""
    if v is None:
        return True
    if isinstance(v, (float, np.floating)) and np.isnan(v):
        return True
    return False


def _encode_values(values) -> Tuple[np.ndarray, np.ndarray]:
    """Dictionary-encode arbitrary values into ``(codes, categories)``.

    ``categories`` comes out unique and ascending-sorted; missing entries
    (None / NaN) become code ``-1``.
    """
    if isinstance(values, np.ndarray) and values.dtype.kind in "US":
        # fast path: string arrays (e.g. rng.choice output) have no missing
        categories, inverse = np.unique(values, return_inverse=True)
        return inverse.astype(np.int32, copy=False), categories.astype(object)
    if isinstance(values, np.ndarray):
        values = values.tolist()
    elif not isinstance(values, list):
        values = list(values)
    # single-pass dictionary build: one dict lookup per value, deferring
    # stringification and sorting to the (small) set of distinct raw keys
    index: dict = {}
    try:
        provisional = np.asarray(
            [
                -1 if (v is None or v != v) else index.setdefault(v, len(index))
                for v in values
            ],
            dtype=np.int32,
        )
    except (TypeError, ValueError):
        index = None  # unhashable values or exotic __ne__
    if index is not None and any(type(k) is not str for k in index):
        # numeric equality merges str-distinct keys (True == 1, 1 == 1.0),
        # which would lose categories; only string keys are collision-free
        index = None
    if index is None:
        index = {}
        provisional = np.asarray(
            [
                -1
                if _is_missing_scalar(v)
                else index.setdefault(str(v), len(index))
                for v in values
            ],
            dtype=np.int32,
        )
    if not index:
        return provisional, np.empty(0, dtype=object)
    strings = [str(k) for k in index]
    categories = np.unique(np.asarray(strings, dtype=str)).astype(object)
    positions = np.searchsorted(categories, strings).astype(np.int32)
    lut = np.append(positions, np.int32(-1))
    return lut[provisional], categories


def sorted_position(table: np.ndarray, value: str) -> int:
    """Position of ``value`` in a sorted category table, or ``-1`` if absent."""
    k = len(table)
    if k == 0:
        return -1
    pos = int(np.searchsorted(table, value))
    return pos if pos < k and table[pos] == value else -1


def _union_categories(pools) -> np.ndarray:
    """Canonical (sorted, unique) category table covering every pool."""
    merged = [category for pool in pools for category in pool]
    if not merged:
        return np.empty(0, dtype=object)
    return np.unique(np.asarray(merged, dtype=str)).astype(object)


def remap_table(
    categories: np.ndarray, target: np.ndarray, default: int
) -> np.ndarray:
    """Positions of ``categories`` inside sorted ``target`` (``default`` if absent).

    Returns a lookup table of length ``len(categories) + 1`` whose final
    entry is ``-1``, so that indexing it with codes maps missing (``-1``)
    to missing.
    """
    k = len(categories)
    m = len(target)
    lut = np.empty(k + 1, dtype=np.int32)
    if m == 0:
        lut[:k] = default
    elif k:
        pos = np.searchsorted(target, categories)
        clipped = np.minimum(pos, m - 1)
        found = target[clipped] == categories
        lut[:k] = np.where(found, clipped, default)
    lut[k] = -1
    return lut


class Column:
    """A single named, typed column of values with missing-value support."""

    __slots__ = ("name", "kind", "_data", "_codes", "_categories", "_decoded")

    def __init__(self, name: str, values: np.ndarray, kind: str):
        if kind not in _KINDS:
            raise ValueError(f"unknown column kind {kind!r}; expected one of {_KINDS}")
        if not isinstance(name, str) or not name:
            raise ValueError("column name must be a non-empty string")
        self.name = name
        self.kind = kind
        self._decoded = None
        if kind == NUMERIC:
            self._data = np.asarray(values, dtype=np.float64)
            self._codes = None
            self._categories = None
        else:
            self._data = None
            self._codes, self._categories = _encode_values(values)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def numeric(name: str, values: Iterable) -> "Column":
        """Build a numeric column; ``None`` entries become ``NaN``."""
        if isinstance(values, np.ndarray) and values.dtype.kind in "fiub":
            return Column(name, values.astype(np.float64), NUMERIC)
        arr = np.asarray(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
        return Column(name, arr, NUMERIC)

    @staticmethod
    def categorical(name: str, values: Iterable) -> "Column":
        """Build a categorical column; missing entries decode as ``None``."""
        return Column(name, values if isinstance(values, np.ndarray) else list(values), CATEGORICAL)

    @staticmethod
    def from_codes(name: str, codes, categories) -> "Column":
        """Build a categorical column directly from codes + category table.

        ``categories`` need not be sorted or deduplicated; codes are remapped
        onto the canonical sorted table when necessary. Code ``-1`` means
        missing; codes outside ``[-1, len(categories) - 1]`` are rejected.
        """
        codes = np.asarray(codes, dtype=np.int32)
        raw = np.empty(len(categories), dtype=object)
        raw[:] = [str(c) for c in categories]
        if codes.size and (codes.min() < -1 or codes.max() >= len(raw)):
            raise ValueError(
                f"codes outside [-1, {len(raw) - 1}] for column {name!r}"
            )
        if len(raw) == 0:
            return Column._with_codes(name, codes, raw)
        canonical = np.unique(raw.astype(str)).astype(object)
        if len(canonical) == len(raw) and bool(np.all(canonical == raw)):
            return Column._with_codes(name, codes, canonical)
        lut = remap_table(raw, canonical, default=-1)
        return Column._with_codes(name, lut[codes], canonical)

    @staticmethod
    def _with_codes(name: str, codes: np.ndarray, categories: np.ndarray) -> "Column":
        """Internal zero-copy constructor; trusts the storage invariants."""
        col = Column.__new__(Column)
        col.name = name
        col.kind = CATEGORICAL
        col._data = None
        col._codes = codes
        col._categories = categories
        col._decoded = None
        return col

    @staticmethod
    def from_values(name: str, values, kind: Optional[str] = None) -> "Column":
        """Build a column, inferring the kind when not given.

        Inference: if every non-missing value is a number (or numeric string
        is *not* considered numeric -- strings stay categorical), the column
        is numeric; otherwise categorical.
        """
        if isinstance(values, Column):
            return values.copy().rename(name)
        if kind is not None:
            if kind == NUMERIC:
                return Column.numeric(name, values)
            return Column.categorical(name, values)
        values = list(values) if not isinstance(values, np.ndarray) else values
        if isinstance(values, np.ndarray):
            if values.dtype.kind in "fiub":
                return Column.numeric(name, values.astype(np.float64))
            if values.dtype.kind in "US":
                return Column.categorical(name, values)
        inferred_numeric = True
        for v in values:
            if v is None:
                continue
            if isinstance(v, bool):
                continue
            if isinstance(v, (int, float, np.integer, np.floating)):
                if isinstance(v, float) and np.isnan(v):
                    continue
                continue
            inferred_numeric = False
            break
        if inferred_numeric:
            return Column.numeric(name, [None if _is_missing_scalar(v) else v for v in values])
        return Column.categorical(name, values)

    # ------------------------------------------------------------------
    # storage views
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The column's value array.

        Numeric columns return the backing ``float64`` array. Categorical
        columns return a lazily-materialized (and cached) ``object`` array of
        strings with ``None`` for missing — a *view for reading*: mutating it
        does not write back into the coded storage.
        """
        if self.kind == NUMERIC:
            return self._data
        if self._decoded is None:
            self._decoded = self._decode_table(fill=None)[self._codes]
        return self._decoded

    @property
    def codes(self) -> np.ndarray:
        """Dictionary codes (int32, ``-1`` = missing); categorical only."""
        if not self.is_categorical:
            raise TypeError(f"codes on numeric column {self.name!r}")
        return self._codes

    @property
    def categories(self) -> np.ndarray:
        """Sorted category table (object array of str); categorical only."""
        if not self.is_categorical:
            raise TypeError(f"categories on numeric column {self.name!r}")
        return self._categories

    def decoded(self) -> np.ndarray:
        """A fresh, caller-owned copy of the decoded value array."""
        return self.values.copy()

    def _decode_table(self, fill) -> np.ndarray:
        """Category lookup table with ``fill`` in the final (missing) slot."""
        table = np.empty(len(self._categories) + 1, dtype=object)
        table[: len(self._categories)] = self._categories
        table[len(self._categories)] = fill
        return table

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data) if self.kind == NUMERIC else len(self._codes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column({self.name!r}, kind={self.kind}, n={len(self)})"

    def copy(self) -> "Column":
        if self.is_numeric:
            return Column(self.name, self._data.copy(), NUMERIC)
        # the category table is immutable-by-convention and safely shared
        return Column._with_codes(self.name, self._codes.copy(), self._categories)

    def rename(self, name: str) -> "Column":
        if self.is_numeric:
            return Column(name, self._data, NUMERIC)
        return Column._with_codes(name, self._codes, self._categories)

    @property
    def is_numeric(self) -> bool:
        return self.kind == NUMERIC

    @property
    def is_categorical(self) -> bool:
        return self.kind == CATEGORICAL

    # ------------------------------------------------------------------
    # missing values
    # ------------------------------------------------------------------
    def missing_mask(self) -> np.ndarray:
        """Boolean array that is True where the value is missing."""
        if self.is_numeric:
            return np.isnan(self._data)
        return self._codes < 0

    def num_missing(self) -> int:
        return int(self.missing_mask().sum())

    def has_missing(self) -> bool:
        return bool(self.missing_mask().any())

    def fill_missing(self, fill_value) -> "Column":
        """Return a copy with missing entries replaced by ``fill_value``."""
        if self.is_numeric:
            out = self._data.copy()
            out[np.isnan(out)] = float(fill_value)
            return Column(self.name, out, NUMERIC)
        fill = str(fill_value)
        code, categories, codes = self._ensure_category(fill)
        if codes is self._codes:  # _ensure_category copies when it inserts
            codes = codes.copy()
        codes[codes < 0] = code
        return Column._with_codes(self.name, codes, categories)

    def _ensure_category(self, category: str) -> Tuple[int, np.ndarray, np.ndarray]:
        """(code of ``category``, category table, codes) — inserting if new."""
        k = len(self._categories)
        pos = int(np.searchsorted(self._categories, category)) if k else 0
        if pos < k and self._categories[pos] == category:
            return pos, self._categories, self._codes
        categories = np.empty(k + 1, dtype=object)
        categories[:pos] = self._categories[:pos]
        categories[pos] = category
        categories[pos + 1 :] = self._categories[pos:]
        codes = self._codes.copy()
        codes[codes >= pos] += 1
        return pos, categories, codes

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Column":
        indices = np.asarray(indices)
        if self.is_numeric:
            return Column(self.name, self._data[indices], NUMERIC)
        return Column._with_codes(self.name, self._codes[indices], self._categories)

    def mask(self, boolean_mask: np.ndarray) -> "Column":
        boolean_mask = np.asarray(boolean_mask, dtype=bool)
        if len(boolean_mask) != len(self):
            raise ValueError(
                f"mask length {len(boolean_mask)} != column length {len(self)}"
            )
        if self.is_numeric:
            return Column(self.name, self._data[boolean_mask], NUMERIC)
        return Column._with_codes(
            self.name, self._codes[boolean_mask], self._categories
        )

    def set_where(self, boolean_mask: np.ndarray, new_values) -> "Column":
        """Return a copy where positions selected by the mask are replaced."""
        boolean_mask = np.asarray(boolean_mask, dtype=bool)
        if self.is_numeric:
            out = self._data.copy()
            out[boolean_mask] = np.asarray(new_values, dtype=np.float64)
            return Column(self.name, out, NUMERIC)
        n_selected = int(boolean_mask.sum())
        if np.isscalar(new_values) or isinstance(new_values, str) or new_values is None:
            replacements = [new_values] * n_selected
        else:
            replacements = list(new_values)
        repl_missing = np.asarray(
            [_is_missing_scalar(v) for v in replacements], dtype=bool
        )
        repl_strings = np.asarray(
            ["" if m else str(v) for v, m in zip(replacements, repl_missing)],
            dtype=object,
        )
        present = ~repl_missing
        union = _union_categories([self._categories, repl_strings[present]])
        lut = remap_table(self._categories, union, default=-1)
        codes = lut[self._codes]
        repl_codes = np.full(n_selected, -1, dtype=np.int32)
        if present.any():
            repl_codes[present] = np.searchsorted(
                union, repl_strings[present]
            ).astype(np.int32)
        codes[boolean_mask] = repl_codes
        return Column._with_codes(self.name, codes, union)

    # ------------------------------------------------------------------
    # vectorized comparisons
    # ------------------------------------------------------------------
    def eq(self, value) -> np.ndarray:
        """Boolean mask where the column equals ``value`` (missing → False)."""
        if self.is_numeric:
            try:
                target = float(value)
            except (TypeError, ValueError):
                return np.zeros(len(self), dtype=bool)
            with np.errstate(invalid="ignore"):
                return self._data == target
        code = self._category_code(str(value))
        if code < 0:
            return np.zeros(len(self), dtype=bool)
        return self._codes == code

    def isin(self, values: Iterable) -> np.ndarray:
        """Boolean mask of membership in ``values`` (missing → False)."""
        if self.is_numeric:
            numeric = []
            for v in values:
                try:
                    numeric.append(float(v))
                # lint: allow(silent-except) -- isin() defines membership
                # of an unparseable value as simply False, not an error
                except (TypeError, ValueError):
                    continue
            return np.isin(self._data, numeric)
        wanted = [self._category_code(str(v)) for v in values]
        wanted = [c for c in wanted if c >= 0]
        if not wanted:
            return np.zeros(len(self), dtype=bool)
        return np.isin(self._codes, wanted)

    def _category_code(self, category: str) -> int:
        """Code of ``category`` in the table, or ``-1`` if absent."""
        return sorted_position(self._categories, category)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def unique(self) -> List:
        """Distinct non-missing values, in first-seen order."""
        if self.is_numeric:
            seen = {}
            for v in self._data:
                if _is_missing_scalar(v):
                    continue
                if v not in seen:
                    seen[v] = None
            return list(seen.keys())
        uniq, first = np.unique(self._codes, return_index=True)
        order = np.argsort(first, kind="stable")
        return [self._categories[c] for c in uniq[order] if c >= 0]

    def value_counts(self) -> dict:
        """Counts of non-missing values, ordered by decreasing count."""
        if self.is_numeric:
            counts: dict = {}
            for v in self._data:
                if _is_missing_scalar(v):
                    continue
                counts[v] = counts.get(v, 0) + 1
            return dict(sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0]))))
        present = self._codes[self._codes >= 0]
        bins = np.bincount(present, minlength=len(self._categories))
        order = sorted(np.nonzero(bins)[0], key=lambda c: (-bins[c], str(self._categories[c])))
        return {self._categories[c]: int(bins[c]) for c in order}

    def mode(self):
        """Most frequent non-missing value; None if the column is all-missing."""
        counts = self.value_counts()
        if not counts:
            return None
        return next(iter(counts))

    def mean(self) -> float:
        return self._numeric_stat("mean")

    def std(self) -> float:
        return self._numeric_stat("std")

    def min(self) -> float:
        return self._numeric_stat("min")

    def max(self) -> float:
        return self._numeric_stat("max")

    def _numeric_stat(self, stat: str) -> float:
        if not self.is_numeric:
            raise TypeError(f"{stat}() on categorical column {self.name!r}")
        present = self._data[~np.isnan(self._data)]
        if present.size == 0:
            return float("nan")
        return float(getattr(present, stat)())

    def equals(self, other: "Column") -> bool:
        if not isinstance(other, Column):
            return False
        if self.kind != other.kind or len(self) != len(other):
            return False
        if self.is_numeric:
            a, b = self._data, other._data
            both_nan = np.isnan(a) & np.isnan(b)
            return bool(np.all(both_nan | (a == b)))
        if len(self._categories) == len(other._categories) and bool(
            np.all(self._categories == other._categories)
        ):
            return bool(np.array_equal(self._codes, other._codes))
        # different tables: remap the other side's codes into this table;
        # categories absent from this table map to -2 and can never match
        lut = remap_table(other._categories, self._categories, default=-2)
        return bool(np.array_equal(lut[other._codes], self._codes))


def concat_columns(columns: Sequence[Column]) -> Column:
    """Stack several same-kind, same-name columns vertically."""
    if not columns:
        raise ValueError("need at least one column to concatenate")
    first = columns[0]
    for col in columns[1:]:
        if col.kind != first.kind:
            raise ValueError(
                f"cannot concat kinds {first.kind!r} and {col.kind!r} "
                f"for column {first.name!r}"
            )
    if first.is_numeric:
        values = np.concatenate([c._data for c in columns])
        return Column(first.name, values, NUMERIC)
    tables = [c._categories for c in columns]
    if all(
        len(t) == len(tables[0]) and bool(np.all(t == tables[0])) for t in tables[1:]
    ):
        union = tables[0]
        codes = np.concatenate([c._codes for c in columns])
    else:
        union = _union_categories(tables)
        codes = np.concatenate(
            [remap_table(c._categories, union, default=-1)[c._codes] for c in columns]
        )
    return Column._with_codes(first.name, codes, union)

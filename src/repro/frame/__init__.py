"""Columnar DataFrame substrate (the pandas replacement).

Public API::

    from repro.frame import Column, DataFrame, concat_rows
    from repro.frame import read_csv, read_csv_chunked, write_csv
    from repro.frame import FrameStore, FrameStoreWriter, spill_csv
    from repro.frame import value_counts, crosstab, describe
"""

from .column import CATEGORICAL, NUMERIC, Column, concat_columns
from .dataframe import DataFrame, concat_rows, train_validation_test_masks
from .io import read_csv, read_csv_chunked, write_csv
from .storage import FrameStore, FrameStoreWriter, spill_csv
from .ops import (
    MISSING_LABEL,
    correlation_matrix,
    crosstab,
    describe,
    group_missing_rates,
    groupby_aggregate,
    value_counts,
)

__all__ = [
    "CATEGORICAL",
    "NUMERIC",
    "Column",
    "DataFrame",
    "FrameStore",
    "FrameStoreWriter",
    "MISSING_LABEL",
    "concat_columns",
    "concat_rows",
    "correlation_matrix",
    "crosstab",
    "describe",
    "group_missing_rates",
    "groupby_aggregate",
    "read_csv",
    "read_csv_chunked",
    "spill_csv",
    "train_validation_test_masks",
    "value_counts",
    "write_csv",
]

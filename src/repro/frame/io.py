"""CSV round-trip for :class:`repro.frame.DataFrame`.

Experiments write their per-run metrics as CSV/JSON; the reader exists so
that analysis code (and users with their own data) can load frames without
pandas. Missing values serialize as empty fields; in a single-column frame
a missing value is quoted (``""``) so it never serializes as a blank line,
which readers skip. Integral float columns render as integers (``5``
instead of ``5.0``) — a byte-level change from the old ``repr`` formatting
that parses back to the identical float64 value.

Both directions are column-wise and vectorized. The writer formats each
column in one pass (numeric via ``np.where(isnan, '', ...)``-style masking,
categorical by indexing the category table with the codes) and emits the
body with batched row joins; quoting is only needed when a category or
column name contains a CSV metacharacter, which is detected on the (small)
category tables, so the fallback to :mod:`csv` machinery is taken exactly
when the data requires it. The reader mirrors this: quote-free content is
split wholesale and dictionary-encoded per column; anything quoted (or with
``\r`` line endings) goes through ``csv.reader``.
"""

from __future__ import annotations

import csv
import io
import os
from itertools import islice, repeat
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import telemetry
from .column import CATEGORICAL, NUMERIC, Column
from .dataframe import DataFrame

_CSV_SPECIALS = (",", '"', "\n", "\r")


def write_csv(frame: DataFrame, path: str) -> None:
    """Write a frame to CSV with a header row; missing values become ''."""
    names = frame.columns
    formatted = []
    plain = not any(
        any(special in name for special in _CSV_SPECIALS) for name in names
    )
    for name in names:
        column = frame.col(name)
        if column.is_numeric:
            formatted.append(_format_numeric(column.values))
        else:
            # quoting is decided on the category table, not the row data:
            # the table holds every distinct string the column can emit
            plain = plain and not any(
                any(special in category for special in _CSV_SPECIALS)
                for category in column.categories
            )
            formatted.append(column._decode_table(fill="")[column.codes])
    if plain and len(names) == 1:
        # a lone empty field would serialize as a blank line, which readers
        # skip; csv.writer quotes it ("") so the row survives the round-trip
        plain = not np.any(formatted[0] == "")
    if plain:
        rows = zip(*[block.tolist() for block in formatted])
        body = "\n".join(map(",".join, rows))
        with open(path, "w", newline="") as handle:
            handle.write(",".join(names) + "\n" + body + "\n")
        return
    with open(path, "w", newline="") as handle:
        # same LF line endings as the plain fast path, so the newline
        # convention never depends on whether the data needed quoting
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow(names)
        writer.writerows(zip(*formatted))


def _format_numeric(values: np.ndarray) -> np.ndarray:
    """Render a float column to strings; NaN becomes the empty field.

    All-integral columns (the common case for count-like attributes) render
    through the much cheaper int64 formatter; everything else uses numpy's
    shortest-repr float formatting.
    """
    nan_mask = np.isnan(values)
    filled = np.where(nan_mask, 0.0, values)
    integral = bool(
        np.all(
            np.isfinite(filled)
            & (np.abs(filled) < 2**63)
            & (filled == np.floor(filled))
        )
        # int64 would render -0.0 as "0", losing the sign bit
        and not np.any(np.signbit(values) & (values == 0.0))
    )
    # format only the distinct values (typically far fewer than rows) and
    # broadcast the rendered strings back through the inverse index
    distinct, inverse = np.unique(
        filled.astype(np.int64) if integral else values, return_inverse=True
    )
    strings = distinct.astype(str)[inverse]
    strings[nan_mask] = ""
    return strings


def read_csv(
    path: str,
    numeric_columns: Optional[Sequence[str]] = None,
    kinds: Optional[Dict[str, str]] = None,
) -> DataFrame:
    """Read a CSV into a frame.

    Column kinds are resolved in priority order: explicit ``kinds``, then
    membership in ``numeric_columns``, then inference (a column whose
    non-empty fields all parse as floats is numeric).
    """
    with open(path, newline="") as handle:
        content = handle.read()
    kinds = dict(kinds or {})
    if numeric_columns:
        for name in numeric_columns:
            kinds.setdefault(name, NUMERIC)
    if '"' not in content and "\r" not in content:
        header, columns = _split_plain(content, path)
    else:
        header, columns = _split_quoted(content, path)
    return DataFrame(
        [
            _build_column(name, fields, kinds.get(name), path)
            for name, fields in zip(header, columns)
        ]
    )


def _split_plain(content: str, path: str) -> tuple:
    """Split quote-free CSV text into a header and per-column field lists."""
    lines = content.split("\n")
    while lines and lines[-1] == "":
        lines.pop()
    if not lines:
        raise ValueError(f"{path}: empty CSV")
    header = lines[0].split(",")
    del lines[0]
    columns = _split_plain_lines(lines, len(header), path, 0)
    if columns is None:
        raise ValueError(f"{path}: CSV has a header but no data rows")
    return header, columns


def _split_plain_lines(
    lines: List[str], n_cols: int, path: str, row_offset: int
) -> Optional[List[List[str]]]:
    """Quote-free data lines into per-column field lists.

    ``row_offset`` is the count of data rows consumed before these lines
    (0 for the whole-file reader), so error messages number rows
    globally. Returns ``None`` when the lines are all blank.
    """
    if "" in lines:
        lines = [line for line in lines if line]
    if not lines:
        return None
    # exact per-row field-count validation via C-level comma counting, so
    # ragged rows can never silently misalign the column slices below
    widths = list(map(str.count, lines, repeat(",")))
    expected = n_cols - 1
    if min(widths) != expected or max(widths) != expected:
        # data-row-based numbering, matching the csv.reader path (which
        # also filters blank rows before numbering)
        bad = next(i for i, w in enumerate(widths) if w != expected)
        raise ValueError(
            f"{path}: row {row_offset + bad + 2} has {widths[bad] + 1} fields, "
            f"expected {n_cols}"
        )
    flat = ",".join(lines).split(",")
    return [flat[j::n_cols] for j in range(n_cols)]


def _split_quoted(content: str, path: str) -> tuple:
    """Field splitting through ``csv.reader`` (quoted or CR-terminated data)."""
    reader = csv.reader(io.StringIO(content))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError(f"{path}: empty CSV") from None
    raw_rows = [row for row in reader if row]
    if not raw_rows:
        raise ValueError(f"{path}: CSV has a header but no data rows")
    return header, _split_quoted_rows(raw_rows, len(header), path, 0)


def _split_quoted_rows(
    raw_rows: List[List[str]], n_cols: int, path: str, row_offset: int
) -> List[List[str]]:
    for i, row in enumerate(raw_rows):
        if len(row) != n_cols:
            raise ValueError(
                f"{path}: row {row_offset + i + 2} has {len(row)} fields, "
                f"expected {n_cols}"
            )
    return [[row[j] for row in raw_rows] for j in range(n_cols)]


def read_csv_chunked(
    path: str,
    chunk_rows: int = 65536,
    numeric_columns: Optional[Sequence[str]] = None,
    kinds: Optional[Dict[str, str]] = None,
):
    """Iterate a CSV as :class:`DataFrame` batches of ≤ ``chunk_rows`` rows.

    The out-of-core counterpart of :func:`read_csv`: the file is streamed
    record by record, so peak memory is bounded by the batch size, not
    the file size. Records are assembled with quote-parity line joining
    (a physical line only ends a record when the cumulative ``\"`` count
    is even), so quoted fields with embedded newlines batch correctly;
    batches that contain quotes or ``\\r`` fall back to :mod:`csv`
    per-batch exactly like the whole-file reader.

    Column kinds not pinned by ``kinds``/``numeric_columns`` are inferred
    from the **first batch** and pinned for the rest of the file, so
    every batch carries identical dtypes and can be concatenated or
    spilled column-by-column (:mod:`repro.frame.storage`). If a later
    batch breaks a first-batch numeric inference, the error says which
    column to pin. Rows of each batch match :func:`read_csv` of the same
    records byte for byte.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    kinds = dict(kinds or {})
    if numeric_columns:
        for name in numeric_columns:
            kinds.setdefault(name, NUMERIC)
    # detached: a generator's span must not sit on the thread's nesting
    # stack while the frame is suspended between batches
    read_span = telemetry.span(
        "frame.read_csv_chunked",
        detached=True,
        path=os.path.basename(path),
        chunk_rows=chunk_rows,
    )
    chunks_read = 0
    with open(path, newline="") as handle, read_span:
        records = _iter_records(handle)
        try:
            header_text = next(records)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV") from None
        if '"' in header_text or "\r" in header_text:
            header = next(csv.reader(io.StringIO(header_text)))
        else:
            header = header_text.rstrip("\n").split(",")
        n_cols = len(header)
        row_offset = 0
        first = True
        while True:
            batch = list(islice(records, chunk_rows))
            if not batch:
                break
            columns = _split_records(batch, n_cols, path, row_offset)
            if columns is None:  # the batch held only blank lines
                continue
            if first:
                for name, fields in zip(header, columns):
                    if name not in kinds:
                        kinds[name] = (
                            NUMERIC if _all_parse_as_float(fields) else CATEGORICAL
                        )
                first = False
            telemetry.counter("frame.chunks_read").inc()
            chunks_read += 1
            yield DataFrame(
                [
                    _build_chunk_column(name, fields, kinds[name], path)
                    for name, fields in zip(header, columns)
                ]
            )
            row_offset += len(columns[0])
        read_span.set(chunks=chunks_read, rows=row_offset)
        if first:
            raise ValueError(f"{path}: CSV has a header but no data rows")


def _iter_records(handle):
    """Yield logical CSV records (with line endings) from a text stream.

    A physical line ends a record only when the quote count so far is
    even — inside an open quoted field, the newline belongs to the field
    and the next physical line continues the same record.
    """
    pending: List[str] = []
    quotes = 0
    for line in handle:
        quotes += line.count('"')
        pending.append(line)
        if quotes % 2 == 0:
            yield "".join(pending) if len(pending) > 1 else pending[0]
            pending.clear()
            quotes = 0
    if pending:  # unterminated quote at EOF: surface it to csv.reader
        yield "".join(pending)


def _split_records(
    records: List[str], n_cols: int, path: str, row_offset: int
) -> Optional[List[List[str]]]:
    """One batch of logical records into per-column field lists."""
    content = "".join(records)
    if '"' not in content and "\r" not in content:
        lines = content.split("\n")
        while lines and lines[-1] == "":
            lines.pop()
        return _split_plain_lines(lines, n_cols, path, row_offset)
    raw_rows = [row for row in csv.reader(io.StringIO(content)) if row]
    if not raw_rows:
        return None
    return _split_quoted_rows(raw_rows, n_cols, path, row_offset)


def _build_chunk_column(name: str, fields: List[str], kind: str, path: str) -> Column:
    try:
        return _build_column(name, fields, kind, path)
    except ValueError as exc:
        raise ValueError(
            f"{exc} (column kinds are pinned from the first chunk; pass "
            f"kinds={{{name!r}: 'categorical'}} to override the inference)"
        ) from None


def _build_column(
    name: str, fields: List[str], kind: Optional[str], path: str
) -> Column:
    if kind is None:
        kind = NUMERIC if _all_parse_as_float(fields) else CATEGORICAL
    if kind == NUMERIC:
        return Column(name, _parse_numeric(fields, name, path), NUMERIC)
    # dictionary-encode straight from the raw string fields: distinct
    # values via one set pass, codes via one C-level dict-lookup map
    categories = sorted(set(fields) - {""})
    index = {category: code for code, category in enumerate(categories)}
    index[""] = -1
    codes = np.asarray(list(map(index.__getitem__, fields)), dtype=np.int32)
    table = np.empty(len(categories), dtype=object)
    table[:] = categories
    return Column._with_codes(name, codes, table)


def _parse_numeric(fields: List[str], name: str, path: str) -> np.ndarray:
    try:
        return np.asarray(fields, dtype=np.float64)
    # lint: allow(silent-except) -- fallback control flow, not a swallow:
    # the retry below substitutes NaN for empty fields and re-raises with
    # context if the column still fails to parse
    except ValueError:
        pass
    try:
        return np.asarray(
            [field if field else "nan" for field in fields], dtype=np.float64
        )
    except ValueError as exc:
        raise ValueError(f"{path}: column {name!r}: {exc}") from None


def _all_parse_as_float(fields: List[str]) -> bool:
    if not any(fields):  # all-empty columns stay categorical
        return False
    try:
        np.asarray([field if field else "nan" for field in fields], dtype=np.float64)
    except ValueError:
        return False
    return True

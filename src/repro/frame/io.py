"""CSV round-trip for :class:`repro.frame.DataFrame`.

Experiments write their per-run metrics as CSV/JSON; the reader exists so
that analysis code (and users with their own data) can load frames without
pandas. Missing values serialize as empty fields.
"""

from __future__ import annotations

import csv
from typing import Dict, Optional, Sequence

import numpy as np

from .column import CATEGORICAL, NUMERIC, Column
from .dataframe import DataFrame


def write_csv(frame: DataFrame, path: str) -> None:
    """Write a frame to CSV with a header row; missing values become ''."""
    names = frame.columns
    arrays = [frame[n] for n in names]
    kinds = frame.kinds()
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(frame.num_rows):
            row = []
            for name, arr in zip(names, arrays):
                v = arr[i]
                if kinds[name] == NUMERIC:
                    row.append("" if np.isnan(v) else repr(float(v)))
                else:
                    row.append("" if v is None else str(v))
            writer.writerow(row)


def read_csv(
    path: str,
    numeric_columns: Optional[Sequence[str]] = None,
    kinds: Optional[Dict[str, str]] = None,
) -> DataFrame:
    """Read a CSV into a frame.

    Column kinds are resolved in priority order: explicit ``kinds``, then
    membership in ``numeric_columns``, then inference (a column whose
    non-empty fields all parse as floats is numeric).
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV") from None
        raw_rows = [row for row in reader if row]
    if not raw_rows:
        raise ValueError(f"{path}: CSV has a header but no data rows")
    n_cols = len(header)
    for i, row in enumerate(raw_rows):
        if len(row) != n_cols:
            raise ValueError(
                f"{path}: row {i + 2} has {len(row)} fields, expected {n_cols}"
            )
    kinds = dict(kinds or {})
    if numeric_columns:
        for name in numeric_columns:
            kinds.setdefault(name, NUMERIC)

    columns = []
    for j, name in enumerate(header):
        raw = [row[j] for row in raw_rows]
        kind = kinds.get(name)
        if kind is None:
            kind = NUMERIC if _all_parse_as_float(raw) else CATEGORICAL
        if kind == NUMERIC:
            values = [None if field == "" else float(field) for field in raw]
            columns.append(Column.numeric(name, values))
        else:
            values = [None if field == "" else field for field in raw]
            columns.append(Column.categorical(name, values))
    return DataFrame(columns)


def _all_parse_as_float(fields) -> bool:
    saw_value = False
    for field in fields:
        if field == "":
            continue
        saw_value = True
        try:
            float(field)
        except ValueError:
            return False
    return saw_value

"""Columnar spill store for frames larger than RAM.

:func:`repro.frame.io.read_csv_chunked` bounds the memory of *parsing*;
this module bounds the memory of *materializing*: a
:class:`FrameStoreWriter` streams frame batches column-by-column into
append-only ``.npy`` files and a JSON manifest, and :class:`FrameStore`
memory-maps them back into a :class:`~repro.frame.DataFrame` whose
columns are OS-paged views — the frame "loads" in milliseconds at any
size, and only the pages a computation touches ever occupy RAM.

On-disk layout (one directory per store)::

    store/
      manifest.json   {version, n_rows, columns: [{name, kind, file,
                       categories}]}
      c000.npy        float64 values (numeric) or int32 codes (categorical)
      c001.npy        ...

These are exactly the members an ``.npz`` archive would hold, laid out
unzipped because ``np.load(..., mmap_mode=...)`` cannot memory-map
inside a zip container. Category tables live in the manifest (they are
small by construction — distinct strings, not rows).

Two details make streaming writes exact:

* **Append-only npy.** Each column file starts with a fixed-size npy
  v1.0 header whose shape is patched on close, so batches append as raw
  little-endian bytes with no buffering of previous batches.
* **Provisional category codes.** Batch ``k``'s dictionary only knows
  the categories seen in batch ``k``, but the store-wide table must be
  sorted (a :class:`~repro.frame.column.Column` invariant). The writer
  assigns provisional ids in first-seen order while streaming, then on
  close remaps every code file **in place, block-wise** through a
  provisional→sorted lookup table (missing ``-1`` passes through). The
  result is byte-identical to encoding the whole file at once.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from typing import Dict, List, Optional

import numpy as np

from .column import CATEGORICAL, NUMERIC, Column
from .dataframe import DataFrame

MANIFEST_NAME = "manifest.json"
_MANIFEST_VERSION = 1

_NPY_HEADER_SIZE = 128  # fixed: magic(6) + version(2) + len(2) + dict(118)
_REMAP_BLOCK = 1 << 22  # int32 codes per in-place remap block (16 MiB)


def _npy_header(dtype: np.dtype, n_rows: int) -> bytes:
    """Fixed-width npy v1.0 header for a 1-D array of ``n_rows``."""
    descr = np.lib.format.dtype_to_descr(dtype)
    payload = ("{'descr': %r, 'fortran_order': False, 'shape': (%d,), }" % (
        descr, n_rows
    )).encode("latin1")
    pad = _NPY_HEADER_SIZE - 10 - 1 - len(payload)
    if pad < 0:  # pragma: no cover - would need a ~90-digit row count
        raise ValueError(f"npy header overflow for {n_rows} rows")
    return (
        b"\x93NUMPY\x01\x00"
        + struct.pack("<H", _NPY_HEADER_SIZE - 10)
        + payload
        + b" " * pad
        + b"\n"
    )


class _NpyAppendWriter:
    """Append-only single-column ``.npy`` writer (header patched on close)."""

    def __init__(self, path: str, dtype) -> None:
        self.path = path
        self.dtype = np.dtype(dtype)
        self.n_rows = 0
        self._handle = open(path, "wb")
        self._handle.write(b"\x00" * _NPY_HEADER_SIZE)

    def append(self, values: np.ndarray) -> None:
        block = np.ascontiguousarray(values, dtype=self.dtype)
        self._handle.write(block.tobytes())
        self.n_rows += block.shape[0]

    def close(self) -> None:
        if self._handle.closed:
            return
        self._handle.seek(0)
        self._handle.write(_npy_header(self.dtype, self.n_rows))
        self._handle.close()

    def abort(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def _remap_file_inplace(path: str, lut: np.ndarray) -> None:
    """Rewrite an int32 code file through ``lut`` block by block.

    ``lut`` has one slot per provisional id plus a trailing ``-1`` slot,
    so missing codes (``-1``) index the last entry and pass through —
    the same convention as :func:`repro.frame.column.remap_table`.
    """
    with open(path, "r+b") as handle:
        handle.seek(_NPY_HEADER_SIZE)
        position = _NPY_HEADER_SIZE
        while True:
            raw = handle.read(_REMAP_BLOCK * 4)
            if not raw:
                break
            codes = np.frombuffer(raw, dtype="<i4")
            remapped = np.ascontiguousarray(lut[codes], dtype="<i4")
            handle.seek(position)
            handle.write(remapped.tobytes())
            position += len(raw)


class FrameStoreWriter:
    """Stream :class:`DataFrame` batches into an on-disk column store.

    The first batch pins the schema (column names, order, and kinds);
    every later batch must match it. Use as a context manager — the
    manifest is only written by a clean :meth:`close`, so a crashed
    write never leaves a loadable half-store behind.
    """

    def __init__(self, root: str, overwrite: bool = False) -> None:
        manifest = os.path.join(root, MANIFEST_NAME)
        if os.path.exists(manifest) and not overwrite:
            raise FileExistsError(
                f"{root} already holds a frame store; pass overwrite=True"
            )
        os.makedirs(root, exist_ok=True)
        if os.path.exists(manifest):
            os.remove(manifest)  # never a loadable store mid-overwrite
        self.root = root
        self.n_rows = 0
        self._schema: Optional[List[tuple]] = None
        self._writers: List[_NpyAppendWriter] = []
        self._seen: List[Optional[Dict[str, int]]] = []
        self._closed = False

    def append(self, frame: DataFrame) -> None:
        if self._closed:
            raise ValueError("writer is closed")
        schema = [(name, frame.col(name).kind) for name in frame.columns]
        if self._schema is None:
            self._schema = schema
            for i, (_, kind) in enumerate(schema):
                dtype = "<f8" if kind == NUMERIC else "<i4"
                path = os.path.join(self.root, f"c{i:03d}.npy")
                self._writers.append(_NpyAppendWriter(path, dtype))
                self._seen.append(None if kind == NUMERIC else {})
        elif schema != self._schema:
            raise ValueError(
                f"batch schema {schema} does not match the first batch's "
                f"{self._schema}"
            )
        for i, (name, kind) in enumerate(schema):
            column = frame.col(name)
            if kind == NUMERIC:
                self._writers[i].append(column.values)
                continue
            seen = self._seen[i]
            # provisional ids in first-seen order; the close-time remap
            # rewrites them to ranks in the final sorted table
            batch_to_store = np.empty(len(column.categories) + 1, dtype=np.int32)
            for j, category in enumerate(column.categories):
                batch_to_store[j] = seen.setdefault(category, len(seen))
            batch_to_store[-1] = -1
            self._writers[i].append(batch_to_store[column.codes])
        self.n_rows += frame.num_rows

    def close(self) -> "FrameStore":
        if self._closed:
            raise ValueError("writer is already closed")
        if self._schema is None:
            raise ValueError("no batches were appended")
        self._closed = True
        manifest_columns = []
        for i, (name, kind) in enumerate(self._schema):
            self._writers[i].close()
            entry = {"name": name, "kind": kind, "file": f"c{i:03d}.npy"}
            if kind == CATEGORICAL:
                seen = self._seen[i]
                categories = sorted(seen)
                rank = {category: r for r, category in enumerate(categories)}
                lut = np.empty(len(seen) + 1, dtype=np.int32)
                for category, provisional in seen.items():
                    lut[provisional] = rank[category]
                lut[-1] = -1
                _remap_file_inplace(
                    os.path.join(self.root, entry["file"]), lut
                )
                entry["categories"] = categories
            manifest_columns.append(entry)
        manifest = {
            "version": _MANIFEST_VERSION,
            "n_rows": self.n_rows,
            "columns": manifest_columns,
        }
        manifest_path = os.path.join(self.root, MANIFEST_NAME)
        with open(manifest_path + ".tmp", "w") as handle:
            json.dump(manifest, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(manifest_path + ".tmp", manifest_path)
        return FrameStore.open(self.root)

    def abort(self) -> None:
        self._closed = True
        for writer in self._writers:
            writer.abort()

    def __enter__(self) -> "FrameStoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if not self._closed:
                self.close()
        else:
            self.abort()


class FrameStore:
    """A spilled frame: manifest + per-column memory-mapped ``.npy``."""

    def __init__(self, root: str, manifest: dict) -> None:
        self.root = root
        self.n_rows = int(manifest["n_rows"])
        self._columns = manifest["columns"]

    @classmethod
    def open(cls, root: str) -> "FrameStore":
        manifest_path = os.path.join(root, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(f"{root} is not a frame store (no manifest)")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        if manifest.get("version") != _MANIFEST_VERSION:
            raise ValueError(
                f"{root}: unsupported frame-store version {manifest.get('version')!r}"
            )
        return cls(root, manifest)

    @property
    def columns(self) -> List[str]:
        return [entry["name"] for entry in self._columns]

    def fingerprint(self) -> str:
        """Deterministic identity of the stored dataset, from the manifest.

        Two stores spilled from the same data fingerprint equal regardless
        of directory path or machine, so experiment-plan ``run_key``s
        computed against a store match across distributed workers without
        anyone re-reading (or re-shipping) the underlying rows.
        """
        payload = {"n_rows": self.n_rows, "columns": self._columns}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]
        return f"store:{digest}|rows={self.n_rows}"

    def column(self, name: str) -> Column:
        for entry in self._columns:
            if entry["name"] == name:
                return self._load_column(entry)
        raise KeyError(f"no column {name!r} in frame store {self.root}")

    def _load_column(self, entry: dict) -> Column:
        # mmap_mode="r": read-only pages are safe to share because Column
        # operations copy before mutating; np.asarray over the memmap is
        # zero-copy, so nothing materializes until a computation reads it
        data = np.load(os.path.join(self.root, entry["file"]), mmap_mode="r")
        if entry["kind"] == NUMERIC:
            return Column(entry["name"], data, NUMERIC)
        table = np.empty(len(entry["categories"]), dtype=object)
        table[:] = entry["categories"]
        return Column._with_codes(entry["name"], np.asarray(data), table)

    def frame(self) -> DataFrame:
        """The whole store as a DataFrame over memory-mapped columns."""
        return DataFrame([self._load_column(entry) for entry in self._columns])

    def batches(self, chunk_rows: int = 65536):
        """Iterate the store as materialized row slices (copies)."""
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        whole = self.frame()
        for start in range(0, self.n_rows, chunk_rows):
            yield whole.take(np.arange(start, min(start + chunk_rows, self.n_rows)))


def spill_csv(
    csv_path: str,
    root: str,
    chunk_rows: int = 65536,
    numeric_columns=None,
    kinds=None,
    overwrite: bool = False,
) -> FrameStore:
    """Stream a CSV straight into a frame store, batch by batch.

    Peak memory is one batch of parsed fields plus the growing category
    dictionaries — independent of row count. The resulting store's
    columns are byte-identical to ``read_csv(csv_path)``'s.
    """
    from .io import read_csv_chunked

    with FrameStoreWriter(root, overwrite=overwrite) as writer:
        for batch in read_csv_chunked(
            csv_path,
            chunk_rows=chunk_rows,
            numeric_columns=numeric_columns,
            kinds=kinds,
        ):
            writer.append(batch)
        return writer.close()

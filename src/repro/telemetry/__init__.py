"""Unified telemetry: spans, metrics, trace logs, and exposition.

Zero-dependency instrumentation threaded through the experiment engine,
the distributed grid executor, and the serving fleet. See
:mod:`repro.telemetry.core` for the runtime (spans + sinks),
:mod:`repro.telemetry.metrics` for the instruments, and
:mod:`repro.telemetry.trace` for the trace-log reader behind
``repro trace``.

Quick use::

    from repro import telemetry

    telemetry.counter("frame.chunks_read").inc()
    with telemetry.span("stage.train", run_key=key):
        ...

Spans are no-ops unless ``REPRO_TRACE_DIR`` (or ``configure``) enables
tracing; ``REPRO_TELEMETRY=0`` disables everything.
"""

from .core import (
    NOOP_SPAN,
    RateLimitedLog,
    Span,
    adopt_context,
    aggregate_delta,
    aggregate_state,
    configure,
    counter,
    gauge,
    histogram,
    log_line,
    metrics_enabled,
    metrics_state,
    record_event,
    reset_for_tests,
    set_quiet,
    span,
    trace_context,
    trace_dir,
    tracing_enabled,
)
from .metrics import (
    LATENCY_BOUNDS_MS,
    SIZE_BOUNDS,
    merge_states,
    render_prometheus,
)
from . import trace

__all__ = [
    "LATENCY_BOUNDS_MS",
    "NOOP_SPAN",
    "RateLimitedLog",
    "SIZE_BOUNDS",
    "Span",
    "adopt_context",
    "aggregate_delta",
    "aggregate_state",
    "configure",
    "counter",
    "gauge",
    "histogram",
    "log_line",
    "merge_states",
    "metrics_enabled",
    "metrics_state",
    "record_event",
    "render_prometheus",
    "reset_for_tests",
    "set_quiet",
    "span",
    "trace",
    "trace_context",
    "trace_dir",
    "tracing_enabled",
]

"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

The instruments live in a process-global :class:`MetricsRegistry` and are
deliberately simple — a counter is one attribute add, a gauge one store —
so leaving metrics enabled by default costs nanoseconds per event. Only
histograms take a lock (their observation updates three fields that must
stay mutually consistent); every lock in the registry is re-armed after
``fork()`` so a child process never inherits a lock a coordinator thread
happened to hold mid-increment.

Two pure functions turn registry snapshots into transportable/renderable
form: :func:`merge_states` sums the state dicts of many processes (the
serving fleet's per-worker registries) into one, and
:func:`render_prometheus` emits the Prometheus text exposition format
(``# TYPE`` headers, cumulative ``_bucket{le=...}`` counts).
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: request-latency style bounds, in milliseconds
LATENCY_BOUNDS_MS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)
#: batch-size style bounds (counts)
SIZE_BOUNDS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class Counter:
    """A monotonically increasing count. ``inc`` is a single attribute
    add — racy under free threading in the worst case (a lost increment),
    never a deadlock — which keeps it safe to call around ``fork()``."""

    __slots__ = ("_value",)

    def __init__(self):
        self._value = 0

    def inc(self, n: int = 1) -> None:
        self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value: either set explicitly or computed on read
    by a callback (e.g. a queue-depth probe)."""

    __slots__ = ("_value", "_fn")

    def __init__(self):
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def set_fn(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:
                return float("nan")
        return self._value


class Histogram:
    """Fixed-bound bucket histogram (non-cumulative internal counts).

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything above the last bound.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, bounds: Sequence[float]):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bounds must be strictly increasing, got {bounds!r}")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def state(self) -> dict:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


class MetricsRegistry:
    """Name → instrument map for one process."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}  # guarded-by: _lock
        self._gauges: Dict[str, Gauge] = {}  # guarded-by: _lock
        self._histograms: Dict[str, Histogram] = {}  # guarded-by: _lock

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter())
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge())
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BOUNDS_MS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(name, Histogram(bounds))
        return instrument

    def state(self) -> dict:
        """A JSON-safe snapshot of every instrument in this registry."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value() for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.state() for name, h in sorted(histograms.items())
            },
        }

    def rearm_locks(self) -> None:
        """Replace every lock with a fresh one (called after ``fork``)."""
        self._lock = threading.Lock()
        for histogram in self._histograms.values():
            histogram._lock = threading.Lock()


# ----------------------------------------------------------------------
# pure state transforms
# ----------------------------------------------------------------------
def merge_states(states: Iterable[dict]) -> dict:
    """Sum many registry snapshots (one per process) into one.

    Counters and gauges add; histograms add bucket-wise when their bounds
    agree (they always do for same-name instruments created by this
    codebase — bounds are fixed at the call site). A histogram whose
    bounds disagree with the first-seen ones is skipped rather than
    corrupting the merged distribution.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for state in states:
        if not isinstance(state, dict):
            continue
        for name, value in (state.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in (state.get("gauges") or {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, hist in (state.get("histograms") or {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
            elif merged["bounds"] == list(hist["bounds"]):
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], hist["counts"])
                ]
                merged["sum"] += hist["sum"]
                merged["count"] += hist["count"]
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    sanitized = _NAME_RE.sub("_", prefix + name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value)) if value == value else "NaN"


def render_prometheus(state: dict, prefix: str = "repro_") -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Bucket counts come out cumulative (``le`` semantics) with the
    mandatory ``+Inf`` bucket, per the format spec.
    """
    lines: List[str] = []
    for name, value in (state.get("counters") or {}).items():
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, value in (state.get("gauges") or {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, hist in (state.get("histograms") or {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_prom_value(float(bound))}"}} {cumulative}'
            )
        cumulative += hist["counts"][len(hist["bounds"])]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {repr(float(hist['sum']))}")
        lines.append(f"{metric}_count {int(hist['count'])}")
    return "\n".join(lines) + "\n"


# shared no-op instruments handed out when telemetry is disabled: same
# interface, no state, no locks
class NoopCounter:
    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class NoopGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def set_fn(self, fn) -> None:
        pass

    def value(self) -> float:
        return 0.0


class NoopHistogram:
    __slots__ = ()
    bounds = ()

    def observe(self, value: float) -> None:
        pass

    def state(self) -> dict:
        return {"bounds": [], "counts": [0], "sum": 0.0, "count": 0}


NOOP_COUNTER = NoopCounter()
NOOP_GAUGE = NoopGauge()
NOOP_HISTOGRAM = NoopHistogram()

"""Telemetry runtime: spans, the trace sink, and process-global state.

Design constraints, in order:

1. **Free when off.** Metrics are on by default (single attribute adds);
   spans are off by default and ``span(...)`` then returns one shared
   no-op object — no allocation, no clock read. ``REPRO_TELEMETRY=0``
   kills everything.
2. **Fork-safe.** Grid executors fork workers while coordinator threads
   are live. The trace sink therefore never holds a lock across a write:
   each record is one ``os.write`` on an ``O_APPEND`` fd, and the fd is
   reopened (as a new per-process file) whenever the pid changes. Every
   registry lock is re-armed via ``os.register_at_fork``.
3. **One tree per run.** Span ids are ``host:pid-seq``; children record
   their parent's id. Forked workers inherit the coordinator's open span
   stack (so their spans parent under ``grid.run``); remote workers
   adopt a trace context handed to them in the coordinator's welcome
   frame. Each process writes its own ``trace-<host>-<pid>.jsonl``; the
   reader stitches the directory back into one tree.

Enable tracing with ``REPRO_TRACE_DIR=/path`` (or
:func:`configure`\\ ``(trace_dir=...)``); spans then both stream to the
trace log and feed an in-memory per-name aggregate that run manifests
and benchmarks snapshot.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import threading
import time
from typing import Callable, Dict, Optional

from .metrics import (
    LATENCY_BOUNDS_MS,
    MetricsRegistry,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    merge_states,
    render_prometheus,
)

_HOSTNAME = socket.gethostname().split(".")[0] or "host"
_SEQ = itertools.count(1)


class _State:
    __slots__ = (
        "metrics_enabled",
        "span_active",
        "aggregate",
        "writer",
        "trace_id",
        "base_parent",
        "quiet",
    )

    def __init__(self):
        self.metrics_enabled = True
        self.span_active = False
        self.aggregate: Dict[str, "_SpanAggregate"] = {}
        self.writer: Optional[_TraceWriter] = None
        self.trace_id: Optional[str] = None
        self.base_parent: Optional[str] = None
        self.quiet = False


_STATE = _State()
_REGISTRY = MetricsRegistry()
_TLS = threading.local()


def _stack() -> list:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def _span_id() -> str:
    return f"{_HOSTNAME}:{os.getpid()}-{next(_SEQ)}"


# ----------------------------------------------------------------------
# trace sink
# ----------------------------------------------------------------------
class _TraceWriter:
    """Crash-safe JSONL sink: one file per process, one atomic append
    per record. A torn final line (process killed mid-write) is tolerated
    by the reader; everything before it is intact."""

    def __init__(self, directory: str):
        self.directory = directory
        self._fd: Optional[int] = None  # guarded-by: _lock
        self._pid: Optional[int] = None  # guarded-by: _lock
        self._lock = threading.Lock()
        os.makedirs(directory, exist_ok=True)

    def path_for_pid(self) -> str:
        return os.path.join(
            self.directory, f"trace-{_HOSTNAME}-{os.getpid()}.jsonl"
        )

    def _ensure(self) -> int:
        pid = os.getpid()
        if self._fd is None or pid != self._pid:
            with self._lock:
                if self._fd is None or pid != self._pid:
                    fd = os.open(
                        self.path_for_pid(),
                        os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                        0o644,
                    )
                    self._fd, self._pid = fd, pid
        return self._fd

    def write(self, record: dict) -> None:
        try:
            fd = self._ensure()
            line = json.dumps(record, separators=(",", ":"), default=str)
            os.write(fd, (line + "\n").encode("utf-8"))
        # lint: allow(silent-except) -- a full/unlinked trace dir must
        # never kill the run; tracing is best-effort by design
        except OSError:
            pass

    def rearm(self) -> None:
        self._lock = threading.Lock()


def _after_fork_in_child() -> None:
    _REGISTRY.rearm_locks()
    writer = _STATE.writer
    if writer is not None:
        writer.rearm()


os.register_at_fork(after_in_child=_after_fork_in_child)


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class _SpanAggregate:
    __slots__ = ("count", "total")

    def __init__(self):
        self.count = 0
        self.total = 0.0


class Span:
    """A timed section. Context manager; ``set(**attrs)`` adds fields."""

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "_t0", "_ts", "_detached"
    )

    def __init__(self, name: str, attrs: dict, detached: bool = False):
        self.name = name
        self.attrs = attrs
        self.span_id = _span_id()
        self.parent_id: Optional[str] = None
        self._detached = detached
        self._t0 = 0.0
        self._ts = 0.0

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _stack()
        self.parent_id = stack[-1].span_id if stack else _STATE.base_parent
        if not self._detached:
            stack.append(self)
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        if not self._detached:
            stack = _stack()
            if stack and stack[-1] is self:
                stack.pop()
            else:  # defensive: mis-nested exit (e.g. generator teardown)
                try:
                    stack.remove(self)
                # lint: allow(silent-except) -- the span may already be off
                # the context stack after adopt_context(); aggregation
                # below still records it either way
                except ValueError:
                    pass
        aggregate = _STATE.aggregate.get(self.name)
        if aggregate is None:
            aggregate = _STATE.aggregate.setdefault(self.name, _SpanAggregate())
        aggregate.count += 1
        aggregate.total += duration
        writer = _STATE.writer
        if writer is not None:
            record = {
                "kind": "span",
                "name": self.name,
                "span": self.span_id,
                "trace": _STATE.trace_id,
                "ts": round(self._ts, 6),
                "dur_s": round(duration, 9),
                "pid": os.getpid(),
            }
            if self.parent_id:
                record["parent"] = self.parent_id
            if exc_type is not None:
                record["error"] = exc_type.__name__
            if self.attrs:
                record["attrs"] = self.attrs
            writer.write(record)
        return False


class _NoopSpan:
    __slots__ = ()
    span_id = None

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


def span(name: str, detached: bool = False, **attrs):
    """Open a timed span: ``with span("stage.train", run_key=key): ...``.

    Returns the shared no-op object unless tracing is enabled. Pass
    ``detached=True`` from generators (the span still records timing and
    its parent, but never sits on the thread's nesting stack, where a
    suspended generator frame could mis-scope unrelated spans).
    """
    if not _STATE.span_active:
        return NOOP_SPAN
    return Span(name, attrs, detached=detached)


def record_event(name: str, fields: Optional[dict] = None) -> None:
    """Count an event and, when tracing, append it to the trace log."""
    if _STATE.metrics_enabled:
        _REGISTRY.counter(name).inc()
    writer = _STATE.writer
    if writer is not None:
        stack = _stack()
        record = {
            "kind": "event",
            "name": name,
            "trace": _STATE.trace_id,
            "ts": round(time.time(), 6),
            "pid": os.getpid(),
        }
        parent = stack[-1].span_id if stack else _STATE.base_parent
        if parent:
            record["parent"] = parent
        if fields:
            record["fields"] = fields
        writer.write(record)


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def configure(
    trace_dir: Optional[str] = None,
    aggregate: Optional[bool] = None,
    quiet: Optional[bool] = None,
    enabled: Optional[bool] = None,
) -> None:
    """Adjust the process-global telemetry state.

    ``trace_dir`` turns tracing on (spans stream to per-process JSONL
    files there); ``aggregate=True`` activates spans for the in-memory
    aggregate only (no files); ``enabled=False`` is the master kill
    switch (metrics and spans both become no-ops); ``quiet`` suppresses
    non-forced :func:`log_line` output.
    """
    if enabled is not None:
        _STATE.metrics_enabled = bool(enabled)
        if not enabled:
            _STATE.span_active = False
            _STATE.writer = None
            return
    if quiet is not None:
        _STATE.quiet = bool(quiet)
    if trace_dir is not None:
        _STATE.writer = _TraceWriter(trace_dir)
        _STATE.span_active = True
        if _STATE.trace_id is None:
            _STATE.trace_id = os.urandom(8).hex()
    if aggregate is not None:
        if aggregate:
            _STATE.span_active = True
        elif _STATE.writer is None:
            _STATE.span_active = False


def _bootstrap_from_env() -> None:
    value = os.environ.get("REPRO_TELEMETRY", "").strip().lower()
    if value in ("0", "off", "false", "no"):
        configure(enabled=False)
        return
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    if trace_dir:
        configure(trace_dir=trace_dir)


_bootstrap_from_env()


def reset_for_tests() -> None:
    """Fresh state + registry, then re-read the environment (tests only)."""
    global _STATE, _REGISTRY
    _STATE = _State()
    _REGISTRY = MetricsRegistry()
    _TLS.stack = []
    _bootstrap_from_env()


def tracing_enabled() -> bool:
    return _STATE.span_active


def metrics_enabled() -> bool:
    return _STATE.metrics_enabled


def trace_dir() -> Optional[str]:
    writer = _STATE.writer
    return writer.directory if writer is not None else None


def trace_context() -> Optional[dict]:
    """The (trace id, parent span) pair a remote worker should adopt so
    its spans stitch under this process's open span."""
    if not _STATE.span_active:
        return None
    stack = _stack()
    parent = stack[-1].span_id if stack else _STATE.base_parent
    return {"trace_id": _STATE.trace_id, "parent": parent}


def adopt_context(context: Optional[dict]) -> None:
    """Adopt a coordinator's trace context (no-op unless tracing here)."""
    if not context or not _STATE.span_active:
        return
    if context.get("trace_id"):
        _STATE.trace_id = context["trace_id"]
    if context.get("parent"):
        _STATE.base_parent = context["parent"]


# ----------------------------------------------------------------------
# metrics accessors (gated on the master switch)
# ----------------------------------------------------------------------
def counter(name: str):
    if not _STATE.metrics_enabled:
        return NOOP_COUNTER
    return _REGISTRY.counter(name)


def gauge(name: str):
    if not _STATE.metrics_enabled:
        return NOOP_GAUGE
    return _REGISTRY.gauge(name)


def histogram(name: str, bounds=LATENCY_BOUNDS_MS):
    if not _STATE.metrics_enabled:
        return NOOP_HISTOGRAM
    return _REGISTRY.histogram(name, bounds)


def metrics_state() -> dict:
    """Snapshot of this process's metrics registry."""
    return _REGISTRY.state()


def aggregate_state() -> Dict[str, dict]:
    """Per-span-name timing totals accumulated in this process."""
    return {
        name: {"count": agg.count, "total_s": round(agg.total, 9)}
        for name, agg in sorted(_STATE.aggregate.items())
    }


def aggregate_delta(before: Dict[str, dict]) -> Dict[str, dict]:
    """Aggregate growth since a previous :func:`aggregate_state` snapshot."""
    delta = {}
    for name, after in aggregate_state().items():
        prior = before.get(name, {"count": 0, "total_s": 0.0})
        count = after["count"] - prior["count"]
        if count > 0:
            delta[name] = {
                "count": count,
                "total_s": round(after["total_s"] - prior["total_s"], 9),
            }
    return delta


# ----------------------------------------------------------------------
# line-oriented logging (the tty sink)
# ----------------------------------------------------------------------
def set_quiet(quiet: bool) -> None:
    _STATE.quiet = bool(quiet)


def log_line(text: str, force: bool = False) -> None:
    """Write one whole line to stderr in a single syscall.

    Forked workers and coordinator threads sharing a tty interleave
    *between* writes, never inside one, so lines emitted this way stay
    intact however many processes log concurrently. ``--quiet``
    (``set_quiet``) suppresses everything not marked ``force``.
    """
    if _STATE.quiet and not force:
        return
    try:
        os.write(2, (text.rstrip("\n") + "\n").encode("utf-8", "replace"))
    # lint: allow(silent-except) -- stderr is gone (closed pipe); there is
    # nowhere left to report to, and logging must never kill the program
    except OSError:
        pass


class RateLimitedLog:
    """Token-bucket guard for structured error lines.

    Allows ``burst`` lines immediately and ``rate`` per second sustained;
    beyond that lines are counted (``suppressed``, plus an optional
    telemetry counter) instead of flooding stderr during an error storm.
    """

    def __init__(
        self,
        rate: float = 5.0,
        burst: int = 10,
        suppressed_counter: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = int(burst)
        self.suppressed = 0
        self._suppressed_counter = suppressed_counter
        self._clock = clock
        self._tokens = float(burst)  # guarded-by: _lock
        self._last = clock()  # guarded-by: _lock
        self._lock = threading.Lock()

    def allow(self) -> bool:
        now = self._clock()
        with self._lock:
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            self.suppressed += 1
        if self._suppressed_counter is not None:
            counter(self._suppressed_counter).inc()
        return False

    def log(self, payload: dict) -> bool:
        """Emit one structured JSON line (rate permitting)."""
        if not self.allow():
            return False
        record = {"ts": round(time.time(), 3), **payload}
        log_line(json.dumps(record, separators=(",", ":"), default=str), force=True)
        return True


__all__ = [
    "NOOP_SPAN",
    "RateLimitedLog",
    "Span",
    "adopt_context",
    "aggregate_delta",
    "aggregate_state",
    "configure",
    "counter",
    "gauge",
    "histogram",
    "log_line",
    "merge_states",
    "metrics_enabled",
    "metrics_state",
    "record_event",
    "render_prometheus",
    "reset_for_tests",
    "set_quiet",
    "span",
    "trace_context",
    "trace_dir",
    "tracing_enabled",
]

"""Trace-log reading: stitch per-process span files into one tree.

Every process in a traced run appends spans to its own
``trace-<host>-<pid>.jsonl`` inside the shared trace directory. Spans are
written at *exit*, so children appear before their parents (and a file
may end in a torn line if the process was killed); the loader is
order-independent and skips unparseable lines, counting them.

The report answers the two operational questions the paper's lifecycle
argument demands of a run: *where did the time go* (per-stage totals
across all workers) and *what bounded the wall clock* (the critical
path — the chain of longest children under the longest root).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple


def load_trace_dir(directory: str) -> dict:
    """Parse every trace file in ``directory``.

    Returns ``{"spans": [...], "events": [...], "files": n,
    "bad_lines": n}`` with spans and events sorted by start timestamp.
    """
    spans: List[dict] = []
    events: List[dict] = []
    files = 0
    bad_lines = 0
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("trace-") and name.endswith(".jsonl")):
            continue
        files += 1
        with open(os.path.join(directory, name), encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    bad_lines += 1
                    continue
                if not isinstance(record, dict):
                    bad_lines += 1
                elif record.get("kind") == "span":
                    spans.append(record)
                elif record.get("kind") == "event":
                    events.append(record)
    spans.sort(key=lambda r: r.get("ts", 0.0))
    events.sort(key=lambda r: r.get("ts", 0.0))
    return {
        "spans": spans,
        "events": events,
        "files": files,
        "bad_lines": bad_lines,
    }


def build_tree(spans: List[dict]) -> Tuple[List[dict], List[dict], Dict[str, List[dict]]]:
    """Stitch spans into a forest.

    Returns ``(roots, orphans, children)``: roots have no parent id,
    orphans reference a parent span that is missing from the log (a
    process died before writing it), and ``children`` maps a span id to
    its child spans.
    """
    by_id = {record["span"]: record for record in spans if "span" in record}
    roots: List[dict] = []
    orphans: List[dict] = []
    children: Dict[str, List[dict]] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is None:
            roots.append(record)
        elif parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            orphans.append(record)
    return roots, orphans, children


def stage_totals(spans: List[dict]) -> Dict[str, dict]:
    """Per-span-name time totals across every process in the trace."""
    totals: Dict[str, dict] = {}
    for record in spans:
        entry = totals.setdefault(
            record["name"],
            {"count": 0, "total_s": 0.0, "max_s": 0.0},
        )
        duration = float(record.get("dur_s", 0.0))
        entry["count"] += 1
        entry["total_s"] += duration
        entry["max_s"] = max(entry["max_s"], duration)
    for entry in totals.values():
        entry["total_s"] = round(entry["total_s"], 6)
        entry["max_s"] = round(entry["max_s"], 6)
        entry["mean_s"] = round(entry["total_s"] / entry["count"], 6)
    return dict(sorted(totals.items(), key=lambda kv: -kv[1]["total_s"]))


def critical_path(
    roots: List[dict], children: Dict[str, List[dict]]
) -> List[dict]:
    """The chain of longest-duration spans from the longest root down."""
    if not roots:
        return []
    path = []
    node = max(roots, key=lambda r: float(r.get("dur_s", 0.0)))
    while node is not None:
        path.append(node)
        below = children.get(node["span"])
        node = (
            max(below, key=lambda r: float(r.get("dur_s", 0.0)))
            if below
            else None
        )
    return path


def summarize(directory: str) -> dict:
    """Everything the CLI report needs, as one JSON-safe dict."""
    loaded = load_trace_dir(directory)
    spans = loaded["spans"]
    roots, orphans, children = build_tree(spans)
    trace_ids = sorted(
        {record.get("trace") for record in spans if record.get("trace")}
    )
    pids = sorted({record.get("pid") for record in spans if record.get("pid")})
    return {
        "directory": directory,
        "files": loaded["files"],
        "bad_lines": loaded["bad_lines"],
        "spans": len(spans),
        "events": len(loaded["events"]),
        "trace_ids": trace_ids,
        "processes": pids,
        "roots": len(roots),
        "orphans": len(orphans),
        "stage_totals": stage_totals(spans),
        "critical_path": [
            {
                "name": record["name"],
                "dur_s": float(record.get("dur_s", 0.0)),
                "pid": record.get("pid"),
                "attrs": record.get("attrs", {}),
            }
            for record in critical_path(roots, children)
        ],
        "event_counts": _event_counts(loaded["events"]),
    }


def _event_counts(events: List[dict]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for record in events:
        counts[record["name"]] = counts.get(record["name"], 0) + 1
    return dict(sorted(counts.items()))


def render_report(summary: dict) -> str:
    """Human-readable per-stage breakdown + critical path."""
    lines = [
        f"trace dir: {summary['directory']}",
        f"files: {summary['files']}  spans: {summary['spans']}  "
        f"events: {summary['events']}  processes: {len(summary['processes'])}",
        f"span tree: {summary['roots']} root(s), "
        f"{summary['orphans']} orphan(s), {summary['bad_lines']} torn line(s)",
    ]
    totals = summary["stage_totals"]
    if totals:
        lines.append("")
        lines.append(
            f"{'stage':<28} {'count':>7} {'total_s':>10} {'mean_s':>10} {'max_s':>10}"
        )
        for name, entry in totals.items():
            lines.append(
                f"{name:<28} {entry['count']:>7} {entry['total_s']:>10.3f} "
                f"{entry['mean_s']:>10.3f} {entry['max_s']:>10.3f}"
            )
    path = summary["critical_path"]
    if path:
        lines.append("")
        lines.append(f"critical path ({path[0]['dur_s']:.3f}s):")
        for depth, hop in enumerate(path):
            attrs = hop.get("attrs") or {}
            detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            suffix = f"  [{detail}]" if detail else ""
            lines.append(
                f"{'  ' * depth}{hop['name']:<{max(1, 28 - 2 * depth)}} "
                f"{hop['dur_s']:>9.3f}s  pid={hop.get('pid')}{suffix}"
            )
    counts = summary["event_counts"]
    if counts:
        lines.append("")
        lines.append(
            "events: " + "  ".join(f"{k}={v}" for k, v in counts.items())
        )
    return "\n".join(lines)


def check_single_tree(summary: dict) -> Optional[str]:
    """``None`` when the trace stitches into exactly one healthy tree,
    otherwise the reason it does not (for ``repro trace --strict``)."""
    if summary["spans"] == 0:
        return "trace contains no spans"
    if summary["roots"] != 1:
        return f"expected exactly 1 root span, found {summary['roots']}"
    if summary["orphans"]:
        return f"{summary['orphans']} span(s) reference a missing parent"
    if len(summary["trace_ids"]) > 1:
        return f"multiple trace ids present: {summary['trace_ids']}"
    if summary["bad_lines"]:
        return f"{summary['bad_lines']} unparseable line(s) in the trace"
    return None


__all__ = [
    "build_tree",
    "check_single_tree",
    "critical_path",
    "load_trace_dir",
    "render_report",
    "stage_totals",
    "summarize",
]

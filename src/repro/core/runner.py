"""Grid runner: execute experiment configurations over seeds × interventions.

This is the workhorse behind the paper's studies ("we leverage 16 different
random seeds ... and execute 1,344 runs in total"). Since the staged-engine
refactor it is a thin façade: :class:`~repro.core.plan.GridSpec` expands
into serializable run configurations (the *plan*), and an executor backend
(:mod:`repro.core.executors`) schedules them — serially or across
processes — while deduplicating shared preparation work.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Callable, List, Optional, Tuple, Union

from .. import telemetry
from ..datasets import DatasetSpec, dataset_spec, load_dataset
from ..frame import DataFrame
from .executors import (
    ExecutionPlan,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    build_experiment,
)
from .plan import GridSpec, Intervention, route_intervention
from .results import ResultsStore, RunResult

# backward-compatible aliases: GridSpec and the intervention router lived
# here before the plan/executor split
_route_intervention = route_intervention

#: Version of the run-manifest shape written by :func:`write_run_manifest`.
#: Bump whenever a field changes meaning, so readers can detect old files.
RUN_MANIFEST_VERSION = 1


def open_store_dataset(
    dataset: str, store_dir: str
) -> Tuple[DataFrame, DatasetSpec, str]:
    """A frame-store-backed grid input: memory-mapped frame + spec + identity.

    The frame reopens as OS-paged memory maps (milliseconds at any size —
    distributed workers on synthetic millions never re-parse a CSV), the
    spec comes from the named dataset registry, and the dataset
    fingerprint comes from the store manifest, so ``run_key``s agree
    across every machine that opens an identical store.
    """
    from ..frame.storage import FrameStore

    store = FrameStore.open(store_dir)
    return store.frame(), dataset_spec(dataset), store.fingerprint()


def run_grid(
    dataset: Union[str, Tuple[DataFrame, DatasetSpec]],
    grid: GridSpec,
    protected_attribute: Optional[str] = None,
    dataset_size: Optional[int] = None,
    results_store: Optional[ResultsStore] = None,
    progress: Optional[Callable[[int, int, RunResult], None]] = None,
    jobs: int = 1,
    resume: bool = False,
    executor: Optional[Executor] = None,
    dataset_fingerprint: Optional[str] = None,
    frame_store: Optional[str] = None,
    export=None,
    export_tags=None,
) -> List[RunResult]:
    """Run every combination in the grid; returns the result records.

    ``dataset`` is a registered dataset name (generated with seed 0) or an
    explicit ``(frame, spec)`` pair. ``jobs`` > 1 selects the process-pool
    backend; pass an explicit ``executor`` for full control. With
    ``resume=True`` (requires ``results_store``), combinations whose
    ``run_key`` is already stored are returned from the store instead of
    recomputed. Results always come back in grid-expansion order.

    ``frame_store`` (a :mod:`repro.frame.storage` store directory) replaces
    the generated frame with the store's memory-mapped one; ``dataset``
    must then be a registered name (it supplies the spec) and the dataset
    fingerprint defaults to the store manifest's.

    ``export`` (a :class:`~repro.serve.registry.ModelRegistry` or a path)
    publishes the best run's fitted pipeline — highest best-candidate
    validation accuracy across the grid — into the registry after the sweep,
    keyed by that run's ``run_key`` and optionally tagged ``export_tags``.
    """
    if frame_store is not None:
        if not isinstance(dataset, str):
            raise ValueError(
                "frame_store requires a registered dataset name for its spec"
            )
        frame, spec, store_fingerprint = open_store_dataset(dataset, frame_store)
        if dataset_fingerprint is None:
            dataset_fingerprint = store_fingerprint
    elif isinstance(dataset, str):
        frame, spec = load_dataset(dataset, n=dataset_size)
    else:
        frame, spec = dataset

    plan = ExecutionPlan.for_grid(
        frame,
        spec,
        grid,
        protected_attribute=protected_attribute,
        dataset_fingerprint=dataset_fingerprint,
    )
    if executor is None:
        executor = ParallelExecutor(jobs=jobs) if jobs > 1 else SerialExecutor()
    started = time.time()
    stages_before = telemetry.aggregate_state()
    results = executor.run(
        plan, results_store=results_store, resume=resume, progress=progress
    )
    if results_store is not None:
        write_run_manifest(
            results_store,
            plan,
            executor,
            wall_seconds=time.time() - started,
            stage_timings=telemetry.aggregate_delta(stages_before),
        )
    if export is not None and results:
        export_best(plan, results, export, tags=export_tags)
    return results


def manifest_path(store: ResultsStore) -> str:
    """Where a grid's run manifest lives, next to its results store."""
    return store.path + ".manifest.json"


def write_run_manifest(
    store: ResultsStore,
    plan: ExecutionPlan,
    executor: Executor,
    wall_seconds: float,
    stage_timings: Optional[dict] = None,
) -> str:
    """Persist the audit record of one grid run next to its results.

    The manifest makes a sweep self-describing after the fact: the
    configuration fingerprints it expanded to, which executor backend ran
    it, how long it took (wall clock plus per-stage span totals when
    tracing was on), and the distributed lease statistics if any. Written
    through a temp file + atomic rename, same as the store itself, and
    rewritten whole on every run (including resumes).
    """
    prep_keys = sorted({config.prep_key for config in plan.configs})
    manifest = {
        "manifest_version": RUN_MANIFEST_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "dataset": plan.spec.name,
        "dataset_fingerprint": plan.dataset_fingerprint,
        "rows": plan.frame.num_rows,
        "protected_attribute": plan.protected_attribute,
        "executor": type(executor).__name__,
        "grid_size": len(plan.configs),
        "prep_groups": len(prep_keys),
        "prep_keys": prep_keys,
        "run_keys": [config.run_key for config in plan.configs],
        "wall_seconds": round(wall_seconds, 6),
        "stage_timings": stage_timings or {},
        "telemetry": {
            "tracing": telemetry.tracing_enabled(),
            "trace_dir": telemetry.trace_dir(),
            "counters": telemetry.metrics_state()["counters"],
        },
        "results_path": os.path.basename(store.path),
    }
    distributed_stats = getattr(executor, "stats", None)
    if isinstance(distributed_stats, dict):
        manifest["distributed"] = distributed_stats
    path = manifest_path(store)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        # lint: allow(silent-except) -- failed cleanup of the temp file on
        # the re-raise path; the original error is what matters
        except OSError:
            pass
        raise
    return path


def export_best(
    plan: ExecutionPlan,
    results: List[RunResult],
    registry,
    tags=None,
) -> dict:
    """Re-fit the grid's best run and publish its pipeline.

    The winner is the run whose chosen candidate has the highest validation
    accuracy (the grid-level analog of the in-run ``AccuracySelector``).
    Training is deterministic in (inputs, seed), so the re-fit reproduces
    the recorded run exactly; the published entry carries that run's
    ``run_key`` and metric record.
    """

    def validation_accuracy(result: RunResult) -> float:
        value = result.best_candidate.validation_metrics.get("overall__accuracy")
        if value is None or value != value:
            return float("-inf")
        return float(value)

    best_position = max(range(len(results)), key=lambda i: validation_accuracy(results[i]))
    best_result = results[best_position]
    config = plan.configs[best_position]
    experiment = build_experiment(plan, config)
    prepared = experiment.prepare()
    trained = experiment.train_candidates(prepared)
    return experiment.export_pipeline(
        prepared, trained, best_result, registry=registry, tags=tags
    )


__all__ = [
    "GridSpec",
    "Intervention",
    "export_best",
    "manifest_path",
    "open_store_dataset",
    "run_grid",
    "route_intervention",
    "write_run_manifest",
]

"""Grid runner: execute experiment configurations over seeds × interventions.

This is the workhorse behind the paper's studies ("we leverage 16 different
random seeds ... and execute 1,344 runs in total"): the caller supplies the
axes to sweep; the runner executes one :class:`Experiment` per combination
and collects the :class:`RunResult` records.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..datasets import DatasetSpec, load_dataset
from ..frame import DataFrame
from .components import Learner, MissingValueHandler, PostProcessor, PreProcessor
from .experiment import Experiment
from .interventions import NoIntervention
from .results import ResultsStore, RunResult

# an intervention slot is either a pre-processor or a post-processor; the
# runner wires it into the right lifecycle stage
Intervention = Union[PreProcessor, PostProcessor]


@dataclass
class GridSpec:
    """Axes of an experiment sweep.

    Each factory in ``interventions``/``learners``/... is a zero-argument
    callable producing a *fresh* component, so state never leaks between
    runs.
    """

    seeds: Sequence[int]
    learners: Sequence[Callable[[], Learner]]
    interventions: Sequence[Callable[[], Intervention]] = field(
        default_factory=lambda: [NoIntervention]
    )
    missing_value_handlers: Sequence[Callable[[], Optional[MissingValueHandler]]] = field(
        default_factory=lambda: [lambda: None]
    )
    scalers: Sequence[Callable[[], object]] = field(
        default_factory=lambda: [lambda: None]
    )

    def size(self) -> int:
        return (
            len(self.seeds)
            * len(self.learners)
            * len(self.interventions)
            * len(self.missing_value_handlers)
            * len(self.scalers)
        )


def run_grid(
    dataset: Union[str, Tuple[DataFrame, DatasetSpec]],
    grid: GridSpec,
    protected_attribute: Optional[str] = None,
    dataset_size: Optional[int] = None,
    results_store: Optional[ResultsStore] = None,
    progress: Optional[Callable[[int, int, RunResult], None]] = None,
) -> List[RunResult]:
    """Run every combination in the grid; returns the result records.

    ``dataset`` is a registered dataset name (generated with seed 0) or an
    explicit ``(frame, spec)`` pair.
    """
    if isinstance(dataset, str):
        frame, spec = load_dataset(dataset, n=dataset_size)
    else:
        frame, spec = dataset

    combos = list(
        itertools.product(
            grid.seeds,
            grid.learners,
            grid.interventions,
            grid.missing_value_handlers,
            grid.scalers,
        )
    )
    results: List[RunResult] = []
    for index, (seed, learner_f, intervention_f, handler_f, scaler_f) in enumerate(combos):
        intervention = intervention_f()
        pre, post = _route_intervention(intervention)
        experiment = Experiment(
            frame=frame,
            spec=spec,
            random_seed=seed,
            learner=learner_f(),
            missing_value_handler=handler_f(),
            numeric_attribute_scaler=scaler_f(),
            pre_processor=pre,
            post_processor=post,
            protected_attribute=protected_attribute,
            results_store=results_store,
        )
        result = experiment.run()
        results.append(result)
        if progress is not None:
            progress(index + 1, len(combos), result)
    return results


def _route_intervention(
    intervention: Intervention,
) -> Tuple[Optional[PreProcessor], Optional[PostProcessor]]:
    """Place an intervention in the pre- or post-processing slot."""
    if isinstance(intervention, NoIntervention):
        return intervention, None
    if isinstance(intervention, PreProcessor):
        return intervention, None
    if isinstance(intervention, PostProcessor):
        return None, intervention
    raise TypeError(
        f"{type(intervention).__name__} is neither a PreProcessor nor a PostProcessor"
    )

"""Component interfaces of the FairPrep lifecycle (Figure 1 of the paper).

Each lifecycle stage is a single, exchangeable component with a narrow
interface (the paper's *componentization* goal). The framework — never user
code — decides which data a component sees: components are fit on training
data only and applied by the framework to the validation and test sets
(*inversion of control*, the paper's data-isolation goal).
"""

from __future__ import annotations

import abc
from typing import Optional

from ..fairness import BinaryLabelDataset
from ..frame import DataFrame


class Resampler(abc.ABC):
    """Optional first stage: resample the raw training frame."""

    @abc.abstractmethod
    def resample(self, train_frame: DataFrame, seed: int) -> DataFrame:
        """Return a (possibly) resampled copy of the training frame."""

    def name(self) -> str:
        return type(self).__name__


class MissingValueHandler(abc.ABC):
    """Second stage: decide how records with missing values are treated.

    ``fit`` only ever receives the raw *training* frame; ``handle_missing``
    is applied by the framework to each split separately.
    """

    @abc.abstractmethod
    def fit(self, train_frame: DataFrame, feature_columns, seed: int) -> "MissingValueHandler":
        """Learn whatever statistics/models imputation needs, on train only."""

    @abc.abstractmethod
    def handle_missing(self, frame: DataFrame) -> DataFrame:
        """Return a frame with no missing values in the feature columns.

        Complete-case analysis may *drop* rows; imputation strategies must
        preserve row count and order.
        """

    @property
    def drops_rows(self) -> bool:
        """True when the strategy removes incomplete records."""
        return False

    def name(self) -> str:
        return type(self).__name__


class Learner(abc.ABC):
    """Fifth stage: train a classifier on the (annotated) training data.

    ``fit_model`` receives the training :class:`BinaryLabelDataset` and the
    run's random seed (for reproducible training, Section 2.5) and returns a
    fitted model exposing ``predict(features)`` and, when available,
    ``predict_proba(features)``.
    """

    @abc.abstractmethod
    def fit_model(self, train_data: BinaryLabelDataset, seed: int):
        """Train and return the fitted model."""

    @property
    def needs_annotated_data(self) -> bool:
        """In-processing learners need group annotations, not just matrices."""
        return False

    def name(self) -> str:
        return type(self).__name__


class PreProcessor(abc.ABC):
    """Optional fourth stage: fairness intervention on the training data."""

    @abc.abstractmethod
    def fit(
        self,
        train_data: BinaryLabelDataset,
        privileged_groups,
        unprivileged_groups,
        seed: int,
    ) -> "PreProcessor":
        """Learn the intervention on training data only."""

    @abc.abstractmethod
    def transform_train(self, train_data: BinaryLabelDataset) -> BinaryLabelDataset:
        """Apply the intervention to the training data (weights/features)."""

    def transform_eval(self, data: BinaryLabelDataset) -> BinaryLabelDataset:
        """Apply the feature-editing part of the intervention to eval data.

        Weight-only interventions (e.g. reweighing) leave evaluation data
        untouched, which is the default.
        """
        return data

    def name(self) -> str:
        return type(self).__name__


class PostProcessor(abc.ABC):
    """Optional seventh stage: adjust predictions after classification."""

    @abc.abstractmethod
    def fit(
        self,
        validation_true: BinaryLabelDataset,
        validation_pred: BinaryLabelDataset,
        privileged_groups,
        unprivileged_groups,
        seed: int,
    ) -> "PostProcessor":
        """Learn the adjustment on validation predictions."""

    @abc.abstractmethod
    def apply(self, predictions: BinaryLabelDataset) -> BinaryLabelDataset:
        """Adjust a prediction dataset."""

    def name(self) -> str:
        return type(self).__name__

"""Component interfaces of the FairPrep lifecycle (Figure 1 of the paper).

Each lifecycle stage is a single, exchangeable component with a narrow
interface (the paper's *componentization* goal). The framework — never user
code — decides which data a component sees: components are fit on training
data only and applied by the framework to the validation and test sets
(*inversion of control*, the paper's data-isolation goal).
"""

from __future__ import annotations

import abc
import inspect
from typing import Dict, Optional

import numpy as np

from ..fairness import BinaryLabelDataset
from ..frame import DataFrame


def constructor_params(component) -> Dict[str, object]:
    """Constructor kwargs of a component (public attributes by signature).

    Components follow the convention of storing each constructor argument
    under an attribute of the same name, so a fresh, unfitted copy can be
    rebuilt as ``type(component)(**constructor_params(component))``.
    """
    signature = inspect.signature(type(component).__init__)
    params: Dict[str, object] = {}
    for name, parameter in signature.parameters.items():
        if name == "self" or parameter.kind in (
            parameter.VAR_POSITIONAL,
            parameter.VAR_KEYWORD,
        ):
            continue
        if hasattr(component, name):
            params[name] = getattr(component, name)
    return params


def component_fingerprint(component) -> str:
    """Deterministic, parameter-aware description of a component.

    Unlike ``name()`` (a display label), the fingerprint always includes the
    constructor parameters, so two instances fingerprint equal exactly when
    they are interchangeable — the property the plan layer relies on for
    run deduplication and preparation caching.
    """
    if component is None:
        return "None"
    params = constructor_params(component)
    inner = ",".join(f"{key}={params[key]!r}" for key in sorted(params))
    return f"{type(component).__name__}({inner})"


class Resampler(abc.ABC):
    """Optional first stage: resample the raw training frame."""

    @abc.abstractmethod
    def resample(self, train_frame: DataFrame, seed: int) -> DataFrame:
        """Return a (possibly) resampled copy of the training frame."""

    def name(self) -> str:
        return type(self).__name__


class MissingValueHandler(abc.ABC):
    """Second stage: decide how records with missing values are treated.

    ``fit`` only ever receives the raw *training* frame; ``handle_missing``
    is applied by the framework to each split separately.
    """

    @abc.abstractmethod
    def fit(self, train_frame: DataFrame, feature_columns, seed: int) -> "MissingValueHandler":
        """Learn whatever statistics/models imputation needs, on train only."""

    @abc.abstractmethod
    def handle_missing(self, frame: DataFrame) -> DataFrame:
        """Return a frame with no missing values in the feature columns.

        Complete-case analysis may *drop* rows; imputation strategies must
        preserve row count and order.
        """

    @property
    def drops_rows(self) -> bool:
        """True when the strategy removes incomplete records."""
        return False

    def kept_mask(self, frame: DataFrame):
        """Boolean mask over ``frame`` rows that :meth:`handle_missing` keeps.

        This is the handler's *own* drop decision, exposed so callers that
        need to map a handled frame's rows back onto input positions (the
        scoring engine's ``row_mask``) never re-derive the criterion — a
        handler that drops on different columns must override this together
        with ``handle_missing``. Row-preserving handlers keep everything.
        """
        return np.ones(frame.num_rows, dtype=bool)

    def name(self) -> str:
        return type(self).__name__


class Learner(abc.ABC):
    """Fifth stage: train a classifier on the (annotated) training data.

    ``fit_model`` receives the training :class:`BinaryLabelDataset` and the
    run's random seed (for reproducible training, Section 2.5) and returns a
    fitted model exposing ``predict(features)`` and, when available,
    ``predict_proba(features)``.
    """

    @abc.abstractmethod
    def fit_model(self, train_data: BinaryLabelDataset, seed: int):
        """Train and return the fitted model."""

    @property
    def needs_annotated_data(self) -> bool:
        """In-processing learners need group annotations, not just matrices."""
        return False

    def name(self) -> str:
        return type(self).__name__


class PreProcessor(abc.ABC):
    """Optional fourth stage: fairness intervention on the training data."""

    @abc.abstractmethod
    def fit(
        self,
        train_data: BinaryLabelDataset,
        privileged_groups,
        unprivileged_groups,
        seed: int,
    ) -> "PreProcessor":
        """Learn the intervention on training data only."""

    @abc.abstractmethod
    def transform_train(self, train_data: BinaryLabelDataset) -> BinaryLabelDataset:
        """Apply the intervention to the training data (weights/features)."""

    def transform_eval(self, data: BinaryLabelDataset) -> BinaryLabelDataset:
        """Apply the feature-editing part of the intervention to eval data.

        Weight-only interventions (e.g. reweighing) leave evaluation data
        untouched, which is the default.
        """
        return data

    def name(self) -> str:
        return type(self).__name__


class PostProcessor(abc.ABC):
    """Optional seventh stage: adjust predictions after classification."""

    @abc.abstractmethod
    def fit(
        self,
        validation_true: BinaryLabelDataset,
        validation_pred: BinaryLabelDataset,
        privileged_groups,
        unprivileged_groups,
        seed: int,
    ) -> "PostProcessor":
        """Learn the adjustment on validation predictions."""

    @abc.abstractmethod
    def apply(self, predictions: BinaryLabelDataset) -> BinaryLabelDataset:
        """Adjust a prediction dataset."""

    def clone(self) -> "PostProcessor":
        """A fresh, unfitted instance with the same constructor parameters.

        Each model-selection candidate gets its own fitted post-processor,
        so the component must be reconstructible. The default rebuilds from
        constructor parameters stored under same-named attributes; override
        when a post-processor holds state the constructor cannot restore.
        """
        return type(self)(**constructor_params(self))

    def name(self) -> str:
        return type(self).__name__

"""Lifecycle adapters for the fairness interventions.

Pre-processors (stage 4) and post-processors (stage 7) from
:mod:`repro.fairness` wrapped in the uniform component interfaces, so an
experiment is configured with e.g. ``pre_processor=DIRemover(0.5)`` exactly
as in the paper's example code.
"""

from __future__ import annotations

from typing import Optional

from ..fairness import BinaryLabelDataset
from ..fairness.postprocessing import (
    CalibratedEqOddsPostprocessing,
    EqOddsPostprocessing,
    RejectOptionClassification,
)
from ..fairness.preprocessing import DisparateImpactRemover, Reweighing
from ..serialize import serializable
from .components import PostProcessor, PreProcessor


@serializable
class NoIntervention(PreProcessor, PostProcessor):
    """Identity for both intervention stages (the baseline condition)."""

    def fit(self, *args, **kwargs) -> "NoIntervention":
        return self

    def transform_train(self, train_data: BinaryLabelDataset) -> BinaryLabelDataset:
        return train_data

    def transform_eval(self, data: BinaryLabelDataset) -> BinaryLabelDataset:
        return data

    def apply(self, predictions: BinaryLabelDataset) -> BinaryLabelDataset:
        return predictions

    def name(self) -> str:
        return "NoIntervention"

    def to_state(self) -> dict:
        return {}

    @classmethod
    def from_state(cls, state: dict) -> "NoIntervention":
        return cls()


@serializable
class ReweighingPreProcessor(PreProcessor):
    """Kamiran & Calders reweighing: edits training instance weights only."""

    def fit(self, train_data, privileged_groups, unprivileged_groups, seed):
        self._reweighing = Reweighing(
            unprivileged_groups=unprivileged_groups,
            privileged_groups=privileged_groups,
        ).fit(train_data)
        return self

    def transform_train(self, train_data: BinaryLabelDataset) -> BinaryLabelDataset:
        return self._reweighing.transform(train_data)

    def name(self) -> str:
        return "Reweighing"

    def to_state(self) -> dict:
        return {"reweighing": self._reweighing.to_state()}

    @classmethod
    def from_state(cls, state: dict) -> "ReweighingPreProcessor":
        instance = cls()
        instance._reweighing = Reweighing.from_state(state["reweighing"])
        return instance


@serializable
class DIRemover(PreProcessor):
    """Feldman et al. disparate-impact removal at a given repair level.

    Feature repair applies to evaluation data too (validation/test must be
    mapped through the same fitted repair), using training-set quantiles.
    """

    def __init__(self, repair_level: float = 1.0):
        self.repair_level = repair_level
        self._remover: Optional[DisparateImpactRemover] = None

    def fit(self, train_data, privileged_groups, unprivileged_groups, seed):
        attribute = train_data.protected_attribute_names[0]
        self._remover = DisparateImpactRemover(
            repair_level=self.repair_level, sensitive_attribute=attribute
        ).fit(train_data)
        return self

    def transform_train(self, train_data: BinaryLabelDataset) -> BinaryLabelDataset:
        return self._remover.transform(train_data)

    def transform_eval(self, data: BinaryLabelDataset) -> BinaryLabelDataset:
        return self._remover.transform(data)

    def name(self) -> str:
        return f"DIRemover({self.repair_level})"

    def to_state(self) -> dict:
        if self._remover is None:
            raise RuntimeError("DIRemover must be fit before serialization")
        return {
            "repair_level": self.repair_level,
            "remover": self._remover.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "DIRemover":
        instance = cls(repair_level=state["repair_level"])
        instance._remover = DisparateImpactRemover.from_state(state["remover"])
        return instance


@serializable
class RejectOptionPostProcessor(PostProcessor):
    """Kamiran et al. reject-option classification (needs scores)."""

    def __init__(
        self,
        metric_name: str = "Statistical parity difference",
        metric_ub: float = 0.05,
        metric_lb: float = -0.05,
        num_class_thresh: int = 50,
        num_ROC_margin: int = 25,
    ):
        self.metric_name = metric_name
        self.metric_ub = metric_ub
        self.metric_lb = metric_lb
        self.num_class_thresh = num_class_thresh
        self.num_ROC_margin = num_ROC_margin

    def fit(self, validation_true, validation_pred, privileged_groups, unprivileged_groups, seed):
        self._roc = RejectOptionClassification(
            unprivileged_groups=unprivileged_groups,
            privileged_groups=privileged_groups,
            metric_name=self.metric_name,
            metric_ub=self.metric_ub,
            metric_lb=self.metric_lb,
            num_class_thresh=self.num_class_thresh,
            num_ROC_margin=self.num_ROC_margin,
        ).fit(validation_true, validation_pred)
        return self

    def apply(self, predictions: BinaryLabelDataset) -> BinaryLabelDataset:
        return self._roc.predict(predictions)

    def name(self) -> str:
        return "RejectOption"

    def to_state(self) -> dict:
        if not hasattr(self, "_roc"):
            raise RuntimeError(
                "RejectOptionPostProcessor must be fit before serialization"
            )
        return {
            "params": {
                "metric_name": self.metric_name,
                "metric_ub": self.metric_ub,
                "metric_lb": self.metric_lb,
                "num_class_thresh": self.num_class_thresh,
                "num_ROC_margin": self.num_ROC_margin,
            },
            "roc": self._roc.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RejectOptionPostProcessor":
        instance = cls(**state["params"])
        instance._roc = RejectOptionClassification.from_state(state["roc"])
        return instance


@serializable
class CalibratedEqOddsPostProcessor(PostProcessor):
    """Pleiss et al. calibrated equalized odds (needs scores)."""

    def __init__(self, cost_constraint: str = "weighted"):
        self.cost_constraint = cost_constraint

    def fit(self, validation_true, validation_pred, privileged_groups, unprivileged_groups, seed):
        self._ceo = CalibratedEqOddsPostprocessing(
            unprivileged_groups=unprivileged_groups,
            privileged_groups=privileged_groups,
            cost_constraint=self.cost_constraint,
            seed=seed,
        ).fit(validation_true, validation_pred)
        return self

    def apply(self, predictions: BinaryLabelDataset) -> BinaryLabelDataset:
        return self._ceo.predict(predictions)

    def name(self) -> str:
        return f"CalEqOdds({self.cost_constraint})"

    def to_state(self) -> dict:
        if not hasattr(self, "_ceo"):
            raise RuntimeError(
                "CalibratedEqOddsPostProcessor must be fit before serialization"
            )
        return {"cost_constraint": self.cost_constraint, "ceo": self._ceo.to_state()}

    @classmethod
    def from_state(cls, state: dict) -> "CalibratedEqOddsPostProcessor":
        instance = cls(cost_constraint=state["cost_constraint"])
        instance._ceo = CalibratedEqOddsPostprocessing.from_state(state["ceo"])
        return instance


@serializable
class EqOddsPostProcessor(PostProcessor):
    """Hardt et al. equalized odds via the randomized-flip LP."""

    def fit(self, validation_true, validation_pred, privileged_groups, unprivileged_groups, seed):
        self._eq = EqOddsPostprocessing(
            unprivileged_groups=unprivileged_groups,
            privileged_groups=privileged_groups,
            seed=seed,
        ).fit(validation_true, validation_pred)
        return self

    def apply(self, predictions: BinaryLabelDataset) -> BinaryLabelDataset:
        return self._eq.predict(predictions)

    def name(self) -> str:
        return "EqOdds"

    def to_state(self) -> dict:
        if not hasattr(self, "_eq"):
            raise RuntimeError("EqOddsPostProcessor must be fit before serialization")
        return {"eq": self._eq.to_state()}

    @classmethod
    def from_state(cls, state: dict) -> "EqOddsPostProcessor":
        instance = cls()
        instance._eq = EqOddsPostprocessing.from_state(state["eq"])
        return instance

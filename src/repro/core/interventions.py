"""Lifecycle adapters for the fairness interventions.

Pre-processors (stage 4) and post-processors (stage 7) from
:mod:`repro.fairness` wrapped in the uniform component interfaces, so an
experiment is configured with e.g. ``pre_processor=DIRemover(0.5)`` exactly
as in the paper's example code.
"""

from __future__ import annotations

from typing import Optional

from ..fairness import BinaryLabelDataset
from ..fairness.postprocessing import (
    CalibratedEqOddsPostprocessing,
    EqOddsPostprocessing,
    RejectOptionClassification,
)
from ..fairness.preprocessing import DisparateImpactRemover, Reweighing
from .components import PostProcessor, PreProcessor


class NoIntervention(PreProcessor, PostProcessor):
    """Identity for both intervention stages (the baseline condition)."""

    def fit(self, *args, **kwargs) -> "NoIntervention":
        return self

    def transform_train(self, train_data: BinaryLabelDataset) -> BinaryLabelDataset:
        return train_data

    def transform_eval(self, data: BinaryLabelDataset) -> BinaryLabelDataset:
        return data

    def apply(self, predictions: BinaryLabelDataset) -> BinaryLabelDataset:
        return predictions

    def name(self) -> str:
        return "NoIntervention"


class ReweighingPreProcessor(PreProcessor):
    """Kamiran & Calders reweighing: edits training instance weights only."""

    def fit(self, train_data, privileged_groups, unprivileged_groups, seed):
        self._reweighing = Reweighing(
            unprivileged_groups=unprivileged_groups,
            privileged_groups=privileged_groups,
        ).fit(train_data)
        return self

    def transform_train(self, train_data: BinaryLabelDataset) -> BinaryLabelDataset:
        return self._reweighing.transform(train_data)

    def name(self) -> str:
        return "Reweighing"


class DIRemover(PreProcessor):
    """Feldman et al. disparate-impact removal at a given repair level.

    Feature repair applies to evaluation data too (validation/test must be
    mapped through the same fitted repair), using training-set quantiles.
    """

    def __init__(self, repair_level: float = 1.0):
        self.repair_level = repair_level
        self._remover: Optional[DisparateImpactRemover] = None

    def fit(self, train_data, privileged_groups, unprivileged_groups, seed):
        attribute = train_data.protected_attribute_names[0]
        self._remover = DisparateImpactRemover(
            repair_level=self.repair_level, sensitive_attribute=attribute
        ).fit(train_data)
        return self

    def transform_train(self, train_data: BinaryLabelDataset) -> BinaryLabelDataset:
        return self._remover.transform(train_data)

    def transform_eval(self, data: BinaryLabelDataset) -> BinaryLabelDataset:
        return self._remover.transform(data)

    def name(self) -> str:
        return f"DIRemover({self.repair_level})"


class RejectOptionPostProcessor(PostProcessor):
    """Kamiran et al. reject-option classification (needs scores)."""

    def __init__(
        self,
        metric_name: str = "Statistical parity difference",
        metric_ub: float = 0.05,
        metric_lb: float = -0.05,
        num_class_thresh: int = 50,
        num_ROC_margin: int = 25,
    ):
        self.metric_name = metric_name
        self.metric_ub = metric_ub
        self.metric_lb = metric_lb
        self.num_class_thresh = num_class_thresh
        self.num_ROC_margin = num_ROC_margin

    def fit(self, validation_true, validation_pred, privileged_groups, unprivileged_groups, seed):
        self._roc = RejectOptionClassification(
            unprivileged_groups=unprivileged_groups,
            privileged_groups=privileged_groups,
            metric_name=self.metric_name,
            metric_ub=self.metric_ub,
            metric_lb=self.metric_lb,
            num_class_thresh=self.num_class_thresh,
            num_ROC_margin=self.num_ROC_margin,
        ).fit(validation_true, validation_pred)
        return self

    def apply(self, predictions: BinaryLabelDataset) -> BinaryLabelDataset:
        return self._roc.predict(predictions)

    def name(self) -> str:
        return "RejectOption"


class CalibratedEqOddsPostProcessor(PostProcessor):
    """Pleiss et al. calibrated equalized odds (needs scores)."""

    def __init__(self, cost_constraint: str = "weighted"):
        self.cost_constraint = cost_constraint

    def fit(self, validation_true, validation_pred, privileged_groups, unprivileged_groups, seed):
        self._ceo = CalibratedEqOddsPostprocessing(
            unprivileged_groups=unprivileged_groups,
            privileged_groups=privileged_groups,
            cost_constraint=self.cost_constraint,
            seed=seed,
        ).fit(validation_true, validation_pred)
        return self

    def apply(self, predictions: BinaryLabelDataset) -> BinaryLabelDataset:
        return self._ceo.predict(predictions)

    def name(self) -> str:
        return f"CalEqOdds({self.cost_constraint})"


class EqOddsPostProcessor(PostProcessor):
    """Hardt et al. equalized odds via the randomized-flip LP."""

    def fit(self, validation_true, validation_pred, privileged_groups, unprivileged_groups, seed):
        self._eq = EqOddsPostprocessing(
            unprivileged_groups=unprivileged_groups,
            privileged_groups=privileged_groups,
            seed=seed,
        ).fit(validation_true, validation_pred)
        return self

    def apply(self, predictions: BinaryLabelDataset) -> BinaryLabelDataset:
        return self._eq.predict(predictions)

    def name(self) -> str:
        return "EqOdds"

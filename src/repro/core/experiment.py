"""The FairPrep experiment lifecycle (Figure 1 of the paper).

An evaluation run has three phases:

1. **Model selection on training + validation data.** The raw dataset is
   split 70/10/20 (train/validation/test) with the run's seed. The training
   split flows through resampling → missing-value handling → featurization →
   optional pre-processing intervention → classifier training. Each fitted
   transformation is replayed — never refit — on the validation split, and
   each candidate model's predictions on the validation set are scored with
   the full metric bundle (optionally after a post-processing intervention
   fitted on validation predictions).
2. **User-defined choice of the best model** from the validation metrics.
3. **One-shot application to the held-out test set.** The chosen model and
   its fitted transformations are applied to the test split, which user code
   never touches directly (inversion of control). Metrics are additionally
   computed separately for test records that originally had missing values,
   so the effect of data cleaning on affected individuals is visible
   (the paper's Figure 4/5 analysis).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..datasets import DatasetSpec
from ..fairness import BinaryLabelDataset, ClassificationMetric
from ..frame import DataFrame, train_validation_test_masks
from ..learn import StandardScaler
from .components import Learner, MissingValueHandler, PostProcessor, PreProcessor, Resampler
from .featurization import Featurizer
from .interventions import NoIntervention
from .missing_values import NoMissingValues
from .resamplers import NoResampling
from .results import CandidateResult, ResultsStore, RunResult
from .selection import AccuracySelector, BestModelSelector


class Experiment:
    """A configured, reproducible FairPrep evaluation run.

    Parameters mirror the paper's example: a dataset (frame + spec), a fixed
    random seed, and one component per lifecycle stage. ``learner`` accepts
    a list for multi-candidate model selection.
    """

    def __init__(
        self,
        frame: DataFrame,
        spec: DatasetSpec,
        random_seed: int,
        learner: Union[Learner, Sequence[Learner]],
        missing_value_handler: Optional[MissingValueHandler] = None,
        numeric_attribute_scaler=None,
        resampler: Optional[Resampler] = None,
        pre_processor: Optional[PreProcessor] = None,
        post_processor: Optional[PostProcessor] = None,
        categorical_encoder=None,
        protected_attribute: Optional[str] = None,
        train_fraction: float = 0.7,
        validation_fraction: float = 0.1,
        model_selector: Optional[BestModelSelector] = None,
        results_store: Optional[ResultsStore] = None,
    ):
        spec.validate(frame)
        self.frame = frame
        self.spec = spec
        self.random_seed = int(random_seed)
        self.learners: List[Learner] = (
            list(learner) if isinstance(learner, (list, tuple)) else [learner]
        )
        if not self.learners:
            raise ValueError("at least one learner is required")
        self.missing_value_handler = missing_value_handler or NoMissingValues()
        self.numeric_attribute_scaler = (
            numeric_attribute_scaler
            if numeric_attribute_scaler is not None
            else StandardScaler()
        )
        self.resampler = resampler or NoResampling()
        self.pre_processor = pre_processor or NoIntervention()
        self.post_processor = post_processor or NoIntervention()
        self.categorical_encoder = categorical_encoder
        self.protected_attribute = protected_attribute or spec.default_protected
        self.train_fraction = train_fraction
        self.validation_fraction = validation_fraction
        self.model_selector = model_selector or AccuracySelector()
        self.results_store = results_store

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        seed = self.random_seed
        feature_columns = self.spec.feature_columns

        # -------- phase 1: split + transforms on training data ----------
        train_mask, validation_mask, test_mask = train_validation_test_masks(
            self.frame.num_rows,
            self.train_fraction,
            self.validation_fraction,
            seed,
        )
        raw_train = self.frame.mask(train_mask)
        raw_validation = self.frame.mask(validation_mask)
        raw_test = self.frame.mask(test_mask)

        raw_train = self.resampler.resample(raw_train, seed)

        handler = self.missing_value_handler
        handler.fit(raw_train, feature_columns, seed)
        train_frame = handler.handle_missing(raw_train)
        validation_frame = handler.handle_missing(raw_validation)
        test_frame = handler.handle_missing(raw_test)

        # which completed rows originally had missing values (empty when the
        # handler drops incomplete rows instead of imputing them)
        if handler.drops_rows:
            validation_had_missing = np.zeros(validation_frame.num_rows, dtype=bool)
            test_had_missing = np.zeros(test_frame.num_rows, dtype=bool)
        else:
            validation_had_missing = raw_validation.missing_mask(feature_columns)
            test_had_missing = raw_test.missing_mask(feature_columns)

        featurizer = Featurizer(
            self.spec,
            numeric_scaler=self.numeric_attribute_scaler,
            protected_attribute=self.protected_attribute,
            categorical_encoder=self.categorical_encoder,
        ).fit(train_frame)
        privileged = featurizer.privileged_groups
        unprivileged = featurizer.unprivileged_groups

        train_data = featurizer.transform(train_frame)
        validation_data = featurizer.transform(validation_frame)
        test_data = featurizer.transform(test_frame)

        self.pre_processor.fit(train_data, privileged, unprivileged, seed)
        train_data = self.pre_processor.transform_train(train_data)
        validation_data_eval = self.pre_processor.transform_eval(validation_data)
        test_data_eval = self.pre_processor.transform_eval(test_data)

        # -------- phase 1 (continued): candidates + validation metrics --
        candidates: List[CandidateResult] = []
        fitted = []
        for learner in self.learners:
            model = learner.fit_model(train_data, seed)
            post = self._fresh_post_processor()
            validation_pred = self._predict(model, validation_data_eval, validation_data)
            post.fit(validation_data, validation_pred, privileged, unprivileged, seed)
            validation_pred = post.apply(validation_pred)
            train_pred = self._predict(model, train_data, train_data)
            candidates.append(
                CandidateResult(
                    learner=learner.name(),
                    validation_metrics=self._metrics(validation_data, validation_pred),
                    train_metrics=self._metrics(train_data, train_pred),
                    best_params=self._best_params(learner),
                )
            )
            fitted.append((model, post))

        # -------- phase 2: user-defined best-model choice ----------------
        best_index = self.model_selector.select(
            [c.validation_metrics for c in candidates]
        )

        # -------- phase 3: one-shot application to the test set ----------
        best_model, best_post = fitted[best_index]
        test_pred = self._predict(best_model, test_data_eval, test_data)
        test_pred = best_post.apply(test_pred)
        test_metrics = self._metrics(test_data, test_pred)

        incomplete_metrics: Dict[str, float] = {}
        complete_metrics: Dict[str, float] = {}
        if test_had_missing.any():
            incomplete_metrics = self._metrics(
                test_data.subset(test_had_missing), test_pred.subset(test_had_missing)
            )
            complete_metrics = self._metrics(
                test_data.subset(~test_had_missing), test_pred.subset(~test_had_missing)
            )

        result = RunResult(
            dataset=self.spec.name,
            random_seed=seed,
            components=self.component_description(),
            candidates=candidates,
            best_index=best_index,
            test_metrics=test_metrics,
            test_metrics_incomplete=incomplete_metrics,
            test_metrics_complete=complete_metrics,
            sizes={
                "train": train_frame.num_rows,
                "validation": validation_frame.num_rows,
                "test": test_frame.num_rows,
                "test_incomplete": int(test_had_missing.sum()),
            },
        )
        if self.results_store is not None:
            self.results_store.append(result)
        return result

    # ------------------------------------------------------------------
    def component_description(self) -> Dict[str, str]:
        return {
            "resampler": self.resampler.name(),
            "missing_value_handler": self.missing_value_handler.name(),
            "scaler": type(self.numeric_attribute_scaler).__name__,
            "categorical_encoder": (
                "OneHotEncoder"
                if self.categorical_encoder is None
                else type(self.categorical_encoder).__name__
            ),
            "pre_processor": self.pre_processor.name(),
            "post_processor": self.post_processor.name(),
            "protected_attribute": self.protected_attribute,
            "selector": self.model_selector.name(),
            "learners": ",".join(l.name() for l in self.learners),
        }

    def _fresh_post_processor(self) -> PostProcessor:
        """Each candidate gets its own fitted post-processor instance."""
        post = self.post_processor
        if isinstance(post, NoIntervention):
            return post
        return type(post)(**_shallow_params(post))

    def _predict(
        self,
        model,
        eval_data: BinaryLabelDataset,
        annotation_source: BinaryLabelDataset,
    ) -> BinaryLabelDataset:
        """Prediction dataset aligned to the *unrepaired* annotations."""
        labels = model.predict(eval_data.features)
        scores = model.predict_scores(eval_data.features)
        needs_scores = not isinstance(self.post_processor, NoIntervention)
        if needs_scores and scores is None:
            raise ValueError(
                f"post-processor {self.post_processor.name()} requires prediction "
                "scores but the learner provides none"
            )
        return annotation_source.with_predictions(labels=labels, scores=scores)

    def _metrics(
        self, dataset_true: BinaryLabelDataset, dataset_pred: BinaryLabelDataset
    ) -> Dict[str, float]:
        metric = ClassificationMetric(
            dataset_true,
            dataset_pred,
            unprivileged_groups=[{self.protected_attribute: 0.0}],
            privileged_groups=[{self.protected_attribute: 1.0}],
        )
        return metric.all_metrics()

    @staticmethod
    def _best_params(learner: Learner) -> Optional[Dict]:
        search = getattr(learner, "last_search_", None)
        if search is None:
            return None
        return dict(search.best_params_)


def _shallow_params(component) -> Dict:
    """Constructor kwargs of a component (public attributes by signature)."""
    import inspect

    signature = inspect.signature(type(component).__init__)
    params = {}
    for name in signature.parameters:
        if name == "self":
            continue
        if hasattr(component, name):
            params[name] = getattr(component, name)
    return params

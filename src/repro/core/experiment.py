"""The FairPrep experiment lifecycle (Figure 1 of the paper).

An evaluation run has three phases:

1. **Model selection on training + validation data.** The raw dataset is
   split 70/10/20 (train/validation/test) with the run's seed. The training
   split flows through resampling → missing-value handling → featurization →
   optional pre-processing intervention → classifier training. Each fitted
   transformation is replayed — never refit — on the validation split, and
   each candidate model's predictions on the validation set are scored with
   the full metric bundle (optionally after a post-processing intervention
   fitted on validation predictions).
2. **User-defined choice of the best model** from the validation metrics.
3. **One-shot application to the held-out test set.** The chosen model and
   its fitted transformations are applied to the test split, which user code
   never touches directly (inversion of control). Metrics are additionally
   computed separately for test records that originally had missing values,
   so the effect of data cleaning on affected individuals is visible
   (the paper's Figure 4/5 analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..datasets import DatasetSpec
from ..fairness import BinaryLabelDataset, ClassificationMetric
from ..frame import DataFrame, train_validation_test_masks
from ..learn import StandardScaler
from .components import Learner, MissingValueHandler, PostProcessor, PreProcessor, Resampler
from .featurization import Featurizer
from .interventions import NoIntervention
from .missing_values import NoMissingValues
from .resamplers import NoResampling
from .results import CandidateResult, ResultsStore, RunResult
from .selection import AccuracySelector, BestModelSelector


@dataclass(frozen=True)
class FeaturizedSplits:
    """Immutable output of the shareable preparation pipeline.

    Everything up to (but excluding) the fairness pre-processing
    intervention: split → resample → missing-value handling → featurization.
    The artifact depends only on the seed, resampler, missing-value handler,
    scaler and encoder — *not* on the learner or intervention — so executor
    backends cache and share it across all grid combinations with the same
    preparation configuration. Consumers must never mutate the contained
    datasets in place.
    """

    seed: int
    train_data: BinaryLabelDataset
    validation_data: BinaryLabelDataset
    test_data: BinaryLabelDataset
    privileged_groups: List[Dict[str, float]]
    unprivileged_groups: List[Dict[str, float]]
    validation_had_missing: np.ndarray
    test_had_missing: np.ndarray
    sizes: Dict[str, int] = field(default_factory=dict)
    # the fitted preparation components ride along so the best pipeline of a
    # run can be exported into a model registry after evaluation
    handler: Optional[MissingValueHandler] = None
    featurizer: Optional[object] = None


@dataclass(frozen=True)
class PreparedData:
    """Immutable, fully prepared inputs for candidate training.

    A :class:`FeaturizedSplits` with the pre-processing intervention fitted
    and applied: ``train_data`` is the (possibly reweighted/repaired)
    training set, while ``validation_data``/``test_data`` keep the
    *unrepaired* annotations that metrics are computed against and
    ``*_eval`` carry the repaired features models predict on.
    """

    seed: int
    train_data: BinaryLabelDataset
    validation_data: BinaryLabelDataset
    test_data: BinaryLabelDataset
    validation_data_eval: BinaryLabelDataset
    test_data_eval: BinaryLabelDataset
    privileged_groups: List[Dict[str, float]]
    unprivileged_groups: List[Dict[str, float]]
    validation_had_missing: np.ndarray
    test_had_missing: np.ndarray
    sizes: Dict[str, int] = field(default_factory=dict)
    handler: Optional[MissingValueHandler] = None
    featurizer: Optional[object] = None
    # the *fitted* pre-processor: executors share PreparedData across
    # experiment instances, so the instance that exports a pipeline may
    # never have fitted its own pre_processor attribute
    pre_processor: Optional[PreProcessor] = None


@dataclass(frozen=True)
class TrainedCandidates:
    """All fitted candidate models with their validation-set outcomes."""

    candidates: List[CandidateResult]
    models: List[Tuple[object, PostProcessor]]


class Experiment:
    """A configured, reproducible FairPrep evaluation run.

    Parameters mirror the paper's example: a dataset (frame + spec), a fixed
    random seed, and one component per lifecycle stage. ``learner`` accepts
    a list for multi-candidate model selection.
    """

    def __init__(
        self,
        frame: DataFrame,
        spec: DatasetSpec,
        random_seed: int,
        learner: Union[Learner, Sequence[Learner]],
        missing_value_handler: Optional[MissingValueHandler] = None,
        numeric_attribute_scaler=None,
        resampler: Optional[Resampler] = None,
        pre_processor: Optional[PreProcessor] = None,
        post_processor: Optional[PostProcessor] = None,
        categorical_encoder=None,
        protected_attribute: Optional[str] = None,
        train_fraction: float = 0.7,
        validation_fraction: float = 0.1,
        model_selector: Optional[BestModelSelector] = None,
        results_store: Optional[ResultsStore] = None,
    ):
        spec.validate(frame)
        self.frame = frame
        self.spec = spec
        self.random_seed = int(random_seed)
        self.learners: List[Learner] = (
            list(learner) if isinstance(learner, (list, tuple)) else [learner]
        )
        if not self.learners:
            raise ValueError("at least one learner is required")
        self.missing_value_handler = missing_value_handler or NoMissingValues()
        self.numeric_attribute_scaler = (
            numeric_attribute_scaler
            if numeric_attribute_scaler is not None
            else StandardScaler()
        )
        self.resampler = resampler or NoResampling()
        self.pre_processor = pre_processor or NoIntervention()
        self.post_processor = post_processor or NoIntervention()
        self.categorical_encoder = categorical_encoder
        self.protected_attribute = protected_attribute or spec.default_protected
        self.train_fraction = train_fraction
        self.validation_fraction = validation_fraction
        self.model_selector = model_selector or AccuracySelector()
        self.results_store = results_store

    # ------------------------------------------------------------------
    # staged execution: run() is a thin composition of the three stages so
    # executor backends can cache/share the expensive preparation artifacts
    # ------------------------------------------------------------------
    def run(self, export=None, export_tags=None) -> RunResult:
        prepared = self.prepare()
        trained = self.train_candidates(prepared)
        result = self.evaluate(prepared, trained)
        if export is not None:
            self.export_pipeline(
                prepared, trained, result, registry=export, tags=export_tags
            )
        return result

    def prepare_splits(self) -> FeaturizedSplits:
        """Split → resample → missing-value handling → featurization.

        The returned artifact is independent of the learner and of the
        pre/post intervention, so executors share it across all grid
        combinations with the same ``(seed, resampler, handler, scaler)``
        preparation configuration.
        """
        seed = self.random_seed
        feature_columns = self.spec.feature_columns

        train_mask, validation_mask, test_mask = train_validation_test_masks(
            self.frame.num_rows,
            self.train_fraction,
            self.validation_fraction,
            seed,
        )
        raw_train = self.frame.mask(train_mask)
        raw_validation = self.frame.mask(validation_mask)
        raw_test = self.frame.mask(test_mask)

        raw_train = self.resampler.resample(raw_train, seed)

        handler = self.missing_value_handler
        handler.fit(raw_train, feature_columns, seed)
        train_frame = handler.handle_missing(raw_train)
        validation_frame = handler.handle_missing(raw_validation)
        test_frame = handler.handle_missing(raw_test)

        # which completed rows originally had missing values (empty when the
        # handler drops incomplete rows instead of imputing them)
        if handler.drops_rows:
            validation_had_missing = np.zeros(validation_frame.num_rows, dtype=bool)
            test_had_missing = np.zeros(test_frame.num_rows, dtype=bool)
        else:
            validation_had_missing = raw_validation.missing_mask(feature_columns)
            test_had_missing = raw_test.missing_mask(feature_columns)

        featurizer = Featurizer(
            self.spec,
            numeric_scaler=self.numeric_attribute_scaler,
            protected_attribute=self.protected_attribute,
            categorical_encoder=self.categorical_encoder,
        ).fit(train_frame)

        return FeaturizedSplits(
            seed=seed,
            train_data=featurizer.transform(train_frame),
            validation_data=featurizer.transform(validation_frame),
            test_data=featurizer.transform(test_frame),
            privileged_groups=featurizer.privileged_groups,
            unprivileged_groups=featurizer.unprivileged_groups,
            validation_had_missing=validation_had_missing,
            test_had_missing=test_had_missing,
            sizes={
                "train": train_frame.num_rows,
                "validation": validation_frame.num_rows,
                "test": test_frame.num_rows,
                "test_incomplete": int(test_had_missing.sum()),
            },
            handler=handler,
            featurizer=featurizer,
        )

    def prepare(self, splits: Optional[FeaturizedSplits] = None) -> PreparedData:
        """Fit and apply the pre-processing intervention on featurized splits.

        Pass a cached :class:`FeaturizedSplits` (from :meth:`prepare_splits`
        of any experiment with the same preparation configuration) to skip
        recomputing the split/resample/impute/featurize pipeline.
        """
        if splits is None:
            splits = self.prepare_splits()
        seed = self.random_seed
        self.pre_processor.fit(
            splits.train_data, splits.privileged_groups, splits.unprivileged_groups, seed
        )
        return PreparedData(
            seed=seed,
            train_data=self.pre_processor.transform_train(splits.train_data),
            validation_data=splits.validation_data,
            test_data=splits.test_data,
            validation_data_eval=self.pre_processor.transform_eval(splits.validation_data),
            test_data_eval=self.pre_processor.transform_eval(splits.test_data),
            privileged_groups=splits.privileged_groups,
            unprivileged_groups=splits.unprivileged_groups,
            validation_had_missing=splits.validation_had_missing,
            test_had_missing=splits.test_had_missing,
            sizes=dict(splits.sizes),
            handler=splits.handler,
            featurizer=splits.featurizer,
            pre_processor=self.pre_processor,
        )

    def train_candidates(self, prepared: PreparedData) -> TrainedCandidates:
        """Train every candidate learner and score it on the validation set."""
        seed = prepared.seed
        candidates: List[CandidateResult] = []
        models: List[Tuple[object, PostProcessor]] = []
        for learner in self.learners:
            model = learner.fit_model(prepared.train_data, seed)
            post = self.post_processor.clone()
            validation_pred = self._predict(
                model, prepared.validation_data_eval, prepared.validation_data
            )
            post.fit(
                prepared.validation_data,
                validation_pred,
                prepared.privileged_groups,
                prepared.unprivileged_groups,
                seed,
            )
            validation_pred = post.apply(validation_pred)
            train_pred = self._predict(model, prepared.train_data, prepared.train_data)
            candidates.append(
                CandidateResult(
                    learner=learner.name(),
                    validation_metrics=self._metrics(
                        prepared.validation_data, validation_pred
                    ),
                    train_metrics=self._metrics(prepared.train_data, train_pred),
                    best_params=self._best_params(learner),
                )
            )
            models.append((model, post))
        return TrainedCandidates(candidates=candidates, models=models)

    def evaluate(
        self, prepared: PreparedData, trained: TrainedCandidates
    ) -> RunResult:
        """Select the best candidate and apply it once to the test set."""
        candidates = trained.candidates
        best_index = self.model_selector.select(
            [c.validation_metrics for c in candidates]
        )

        best_model, best_post = trained.models[best_index]
        test_pred = self._predict(best_model, prepared.test_data_eval, prepared.test_data)
        test_pred = best_post.apply(test_pred)
        test_metrics = self._metrics(prepared.test_data, test_pred)

        test_had_missing = prepared.test_had_missing
        incomplete_metrics: Dict[str, float] = {}
        complete_metrics: Dict[str, float] = {}
        if test_had_missing.any():
            incomplete_metrics = self._metrics(
                prepared.test_data.subset(test_had_missing),
                test_pred.subset(test_had_missing),
            )
            complete_metrics = self._metrics(
                prepared.test_data.subset(~test_had_missing),
                test_pred.subset(~test_had_missing),
            )

        result = RunResult(
            dataset=self.spec.name,
            random_seed=prepared.seed,
            components=self.component_description(),
            candidates=candidates,
            best_index=best_index,
            test_metrics=test_metrics,
            test_metrics_incomplete=incomplete_metrics,
            test_metrics_complete=complete_metrics,
            sizes=dict(prepared.sizes),
        )
        if self.results_store is not None:
            self.results_store.append(result)
        return result

    # ------------------------------------------------------------------
    # serving export
    # ------------------------------------------------------------------
    def fitted_pipeline(
        self,
        prepared: PreparedData,
        trained: TrainedCandidates,
        best_index: int,
        run_key: Optional[str] = None,
    ):
        """Bundle the chosen candidate's frozen scoring path as an artifact.

        Returns a :class:`~repro.serve.artifacts.PipelineArtifact` carrying
        the fitted handler, featurizer, pre-processor (eval side), model and
        post-processor — everything a fresh process needs to reproduce this
        run's test-set predictions byte for byte.
        """
        from ..serve.artifacts import PipelineArtifact

        if prepared.handler is None or prepared.featurizer is None:
            raise ValueError(
                "prepared data lacks its fitted preparation components; "
                "re-run prepare_splits() with this engine version"
            )
        model, post = trained.models[best_index]
        # the in-process test-set predictions travel with the artifact, so a
        # fresh process can re-score the same raw rows and assert
        # byte-for-byte agreement (the serving smoke check)
        test_pred = post.apply(
            self._predict(model, prepared.test_data_eval, prepared.test_data)
        )
        verification: Dict[str, object] = {"test_labels": test_pred.labels}
        if test_pred.scores is not None:
            verification["test_scores"] = test_pred.scores
        metadata = {
            "dataset": self.spec.name,
            "random_seed": prepared.seed,
            "components": self.component_description(),
            "best_learner": trained.candidates[best_index].learner,
            "sizes": dict(prepared.sizes),
            "train_fraction": self.train_fraction,
            "validation_fraction": self.validation_fraction,
            "num_rows": self.frame.num_rows,
            "verification": verification,
        }
        if run_key is not None:
            metadata["run_key"] = run_key
        return PipelineArtifact(
            spec=self.spec,
            protected_attribute=self.protected_attribute,
            handler=prepared.handler,
            featurizer=prepared.featurizer,
            pre_processor=(
                prepared.pre_processor
                if prepared.pre_processor is not None
                else self.pre_processor
            ),
            model=model,
            post_processor=post,
            metadata=metadata,
        )

    def export_pipeline(
        self,
        prepared: PreparedData,
        trained: TrainedCandidates,
        result: RunResult,
        registry,
        tags=None,
        overwrite: bool = True,
    ):
        """Publish the evaluated run's best pipeline into a registry.

        ``registry`` is a :class:`~repro.serve.registry.ModelRegistry` or a
        filesystem path to create one at. Returns the registry record.
        """
        if isinstance(registry, str):
            from ..serve.registry import ModelRegistry

            registry = ModelRegistry(registry)
        pipeline = self.fitted_pipeline(
            prepared, trained, result.best_index, run_key=result.run_key
        )
        return registry.publish(
            pipeline, result=result, tags=list(tags or ()), overwrite=overwrite
        )

    # ------------------------------------------------------------------
    def component_description(self) -> Dict[str, str]:
        return {
            "resampler": self.resampler.name(),
            "missing_value_handler": self.missing_value_handler.name(),
            "scaler": type(self.numeric_attribute_scaler).__name__,
            "categorical_encoder": (
                "OneHotEncoder"
                if self.categorical_encoder is None
                else type(self.categorical_encoder).__name__
            ),
            "pre_processor": self.pre_processor.name(),
            "post_processor": self.post_processor.name(),
            "protected_attribute": self.protected_attribute,
            "selector": self.model_selector.name(),
            "learners": ",".join(l.name() for l in self.learners),
        }

    def _predict(
        self,
        model,
        eval_data: BinaryLabelDataset,
        annotation_source: BinaryLabelDataset,
    ) -> BinaryLabelDataset:
        """Prediction dataset aligned to the *unrepaired* annotations."""
        labels = model.predict(eval_data.features)
        scores = model.predict_scores(eval_data.features)
        needs_scores = not isinstance(self.post_processor, NoIntervention)
        if needs_scores and scores is None:
            raise ValueError(
                f"post-processor {self.post_processor.name()} requires prediction "
                "scores but the learner provides none"
            )
        return annotation_source.with_predictions(labels=labels, scores=scores)

    def _metrics(
        self, dataset_true: BinaryLabelDataset, dataset_pred: BinaryLabelDataset
    ) -> Dict[str, float]:
        metric = ClassificationMetric(
            dataset_true,
            dataset_pred,
            unprivileged_groups=[{self.protected_attribute: 0.0}],
            privileged_groups=[{self.protected_attribute: 1.0}],
        )
        return metric.all_metrics()

    @staticmethod
    def _best_params(learner: Learner) -> Optional[Dict]:
        search = getattr(learner, "last_search_", None)
        if search is None:
            return None
        return dict(search.best_params_)

"""Execution plans: *what to run*, decoupled from *how to run it*.

The paper's studies are large grids ("16 different random seeds ... 1,344
runs in total"). :meth:`GridSpec.expand` turns the axes of such a sweep
into a flat list of serializable :class:`RunConfig` records. Each record
carries two deterministic fingerprints:

``run_key``
    Identifies the complete run configuration (dataset, seed, every
    component). A :class:`~repro.core.results.ResultsStore` indexes
    completed runs by this key, so interrupted grids resume without
    recomputation.
``prep_key``
    Identifies only the preparation configuration (seed, resampler,
    missing-value handler, scaler). All combinations sharing a ``prep_key``
    can reuse one :class:`~repro.core.experiment.FeaturizedSplits`
    artifact, which executor backends exploit to dedupe the expensive
    split → resample → impute → featurize pipeline.

Executor backends that turn a plan into results live in
:mod:`repro.core.executors`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .components import (
    Learner,
    MissingValueHandler,
    PostProcessor,
    PreProcessor,
    component_fingerprint,
)
from .interventions import NoIntervention

# an intervention slot is either a pre-processor or a post-processor; the
# engine wires it into the right lifecycle stage
Intervention = Union[PreProcessor, PostProcessor]


def route_intervention(
    intervention: Intervention,
) -> Tuple[Optional[PreProcessor], Optional[PostProcessor]]:
    """Place an intervention in the pre- or post-processing slot."""
    if isinstance(intervention, NoIntervention):
        return intervention, None
    if isinstance(intervention, PreProcessor):
        return intervention, None
    if isinstance(intervention, PostProcessor):
        return None, intervention
    raise TypeError(
        f"{type(intervention).__name__} is neither a PreProcessor nor a PostProcessor"
    )


@dataclass(frozen=True)
class RunConfig:
    """One serializable cell of an experiment grid.

    Holds plain data only — dataset name, seed, axis indices into the
    originating :class:`GridSpec`, descriptive component fingerprints and
    the two derived keys — so records can be pickled across process
    boundaries and persisted next to their results.
    """

    dataset: str
    random_seed: int
    index: int
    learner_index: int
    intervention_index: int
    handler_index: int
    scaler_index: int
    protected_attribute: Optional[str]
    components: Dict[str, str]
    prep_key: str
    run_key: str

    def to_dict(self) -> dict:
        """Full wire-format record; :meth:`from_dict` round-trips it."""
        return {
            "dataset": self.dataset,
            "random_seed": self.random_seed,
            "index": self.index,
            "learner_index": self.learner_index,
            "intervention_index": self.intervention_index,
            "handler_index": self.handler_index,
            "scaler_index": self.scaler_index,
            "protected_attribute": self.protected_attribute,
            "components": dict(self.components),
            "prep_key": self.prep_key,
            "run_key": self.run_key,
        }

    @staticmethod
    def from_dict(data: dict) -> "RunConfig":
        return RunConfig(
            dataset=data["dataset"],
            random_seed=int(data["random_seed"]),
            index=int(data["index"]),
            learner_index=int(data["learner_index"]),
            intervention_index=int(data["intervention_index"]),
            handler_index=int(data["handler_index"]),
            scaler_index=int(data["scaler_index"]),
            protected_attribute=data.get("protected_attribute"),
            components=dict(data["components"]),
            prep_key=data["prep_key"],
            run_key=data["run_key"],
        )


@dataclass
class GridSpec:
    """Axes of an experiment sweep.

    Each factory in ``interventions``/``learners``/... is a zero-argument
    callable producing a *fresh* component, so state never leaks between
    runs.
    """

    seeds: Sequence[int]
    learners: Sequence[Callable[[], Union[Learner, Sequence[Learner]]]]
    interventions: Sequence[Callable[[], Intervention]] = field(
        default_factory=lambda: [NoIntervention]
    )
    missing_value_handlers: Sequence[Callable[[], Optional[MissingValueHandler]]] = field(
        default_factory=lambda: [lambda: None]
    )
    scalers: Sequence[Callable[[], object]] = field(
        default_factory=lambda: [lambda: None]
    )

    def size(self) -> int:
        return (
            len(self.seeds)
            * len(self.learners)
            * len(self.interventions)
            * len(self.missing_value_handlers)
            * len(self.scalers)
        )

    def expand(
        self,
        dataset: str,
        protected_attribute: Optional[str] = None,
        dataset_fingerprint: Optional[str] = None,
    ) -> List[RunConfig]:
        """Flatten the axes into :class:`RunConfig` records, in run order.

        The expansion order matches the historical serial runner
        (``itertools.product(seeds, learners, interventions, handlers,
        scalers)``), so result lists stay comparable across engine versions.

        ``dataset_fingerprint`` feeds the ``run_key``/``prep_key`` hashes in
        place of the bare dataset name; callers that know more about the
        concrete data (row count, generation seed) should pass it so resume
        never matches results computed on a different dataset variant.
        """
        identity = dataset_fingerprint if dataset_fingerprint is not None else dataset
        configs: List[RunConfig] = []
        axes = itertools.product(
            range(len(self.seeds)),
            range(len(self.learners)),
            range(len(self.interventions)),
            range(len(self.missing_value_handlers)),
            range(len(self.scalers)),
        )
        for index, (si, li, ii, hi, sci) in enumerate(axes):
            seed = int(self.seeds[si])
            components = self._describe_cell(li, ii, hi, sci)
            prep_key = _fingerprint(
                {
                    "dataset": identity,
                    "seed": seed,
                    "protected": protected_attribute,
                    "resampler": components["resampler"],
                    "missing_value_handler": components["missing_value_handler"],
                    "scaler": components["scaler"],
                }
            )
            run_key = _fingerprint(
                {
                    "dataset": identity,
                    "seed": seed,
                    "protected": protected_attribute,
                    "components": components,
                }
            )
            configs.append(
                RunConfig(
                    dataset=dataset,
                    random_seed=seed,
                    index=index,
                    learner_index=li,
                    intervention_index=ii,
                    handler_index=hi,
                    scaler_index=sci,
                    protected_attribute=protected_attribute,
                    components=components,
                    prep_key=prep_key,
                    run_key=run_key,
                )
            )
        return configs

    # ------------------------------------------------------------------
    def _describe_cell(self, li: int, ii: int, hi: int, sci: int) -> Dict[str, str]:
        """Parameter-aware fingerprints of one cell's components.

        Factories are instantiated once per cell; components are cheap
        configuration objects, the expensive work happens at fit time.
        """
        from ..learn import StandardScaler
        from .missing_values import NoMissingValues
        from .resamplers import NoResampling

        learner = self.learners[li]()
        learners = list(learner) if isinstance(learner, (list, tuple)) else [learner]
        pre, post = route_intervention(self.interventions[ii]())
        handler = self.missing_value_handlers[hi]()
        scaler = self.scalers[sci]()
        # None means "use the Experiment default"; fingerprint an actual
        # default instance so the two spellings of the same configuration
        # always collide (explicit StandardScaler() vs scaler=None, etc.)
        return {
            "learners": ",".join(component_fingerprint(l) for l in learners),
            "pre_processor": component_fingerprint(
                pre if pre is not None else NoIntervention()
            ),
            "post_processor": component_fingerprint(
                post if post is not None else NoIntervention()
            ),
            "missing_value_handler": component_fingerprint(
                handler if handler is not None else NoMissingValues()
            ),
            "scaler": component_fingerprint(
                scaler if scaler is not None else StandardScaler()
            ),
            # the grid has no resampler axis (yet); fingerprint the default
            # so prep keys stay stable when one is added
            "resampler": component_fingerprint(NoResampling()),
        }


def _fingerprint(payload: dict) -> str:
    """Stable hex digest of a JSON-serializable payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]

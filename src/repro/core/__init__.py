"""The FairPrep lifecycle: the paper's primary contribution.

Compose an :class:`Experiment` from exchangeable components (resampler,
missing-value handler, scaler, learner, pre/post intervention, model
selector), run it under a fixed seed, and collect the full fairness +
accuracy metric bundle — with test-set isolation enforced by construction.
"""

from .components import (
    Learner,
    MissingValueHandler,
    PostProcessor,
    PreProcessor,
    Resampler,
    component_fingerprint,
    constructor_params,
)
from .distributed import DistributedExecutor
from .executors import (
    EXECUTOR_BACKENDS,
    ExecutionPlan,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    register_executor,
)
from .experiment import (
    Experiment,
    FeaturizedSplits,
    PreparedData,
    TrainedCandidates,
)
from .featurization import Featurizer
from .interventions import (
    CalibratedEqOddsPostProcessor,
    DIRemover,
    EqOddsPostProcessor,
    NoIntervention,
    RejectOptionPostProcessor,
    ReweighingPreProcessor,
)
from .learners import (
    DECISION_TREE_GRID,
    LOGISTIC_REGRESSION_GRID,
    AdversarialDebiasingLearner,
    DecisionTree,
    KNearestNeighbors,
    LogisticRegression,
    NaiveBayes,
    PrejudiceRemoverLearner,
)
from .missing_values import (
    CompleteCaseAnalysis,
    DatawigImputer,
    LearnedImputer,
    ModeImputer,
    NoMissingValues,
)
from .resamplers import (
    BootstrapResampler,
    ClassBalancingResampler,
    NoResampling,
    StratifiedSampler,
)
from .plan import RunConfig, route_intervention
from .results import CandidateResult, ResultsStore, RunResult, results_to_rows
from .runner import GridSpec, export_best, open_store_dataset, run_grid
from .selection import (
    AccuracySelector,
    BestModelSelector,
    ConstrainedSelector,
    FunctionSelector,
)
from .standard_experiments import (
    AdultExperiment,
    GermanCreditExperiment,
    PaymentOptionGenderExperiment,
    PropublicaExperiment,
    RicciExperiment,
)

__all__ = [
    "AccuracySelector",
    "AdultExperiment",
    "AdversarialDebiasingLearner",
    "BestModelSelector",
    "BootstrapResampler",
    "CalibratedEqOddsPostProcessor",
    "CandidateResult",
    "ClassBalancingResampler",
    "CompleteCaseAnalysis",
    "ConstrainedSelector",
    "DatawigImputer",
    "DECISION_TREE_GRID",
    "DIRemover",
    "DecisionTree",
    "DistributedExecutor",
    "EqOddsPostProcessor",
    "EXECUTOR_BACKENDS",
    "ExecutionPlan",
    "Executor",
    "Experiment",
    "Featurizer",
    "FeaturizedSplits",
    "FunctionSelector",
    "GermanCreditExperiment",
    "GridSpec",
    "KNearestNeighbors",
    "Learner",
    "LearnedImputer",
    "LOGISTIC_REGRESSION_GRID",
    "LogisticRegression",
    "MissingValueHandler",
    "ModeImputer",
    "NaiveBayes",
    "NoIntervention",
    "NoMissingValues",
    "NoResampling",
    "ParallelExecutor",
    "PaymentOptionGenderExperiment",
    "PostProcessor",
    "PreProcessor",
    "PreparedData",
    "PrejudiceRemoverLearner",
    "PropublicaExperiment",
    "RejectOptionPostProcessor",
    "Resampler",
    "ResultsStore",
    "ReweighingPreProcessor",
    "RicciExperiment",
    "RunConfig",
    "RunResult",
    "SerialExecutor",
    "StratifiedSampler",
    "TrainedCandidates",
    "component_fingerprint",
    "constructor_params",
    "make_executor",
    "open_store_dataset",
    "register_executor",
    "results_to_rows",
    "route_intervention",
    "export_best",
    "run_grid",
]

"""Result records for experiment runs, with JSON/CSV round-trips.

Every experiment writes an output file with its metrics by default (§4 of
the paper); these records are what the analysis layer consumes to rebuild
the paper's figures.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional


@dataclass
class CandidateResult:
    """One trained model's validation-set outcome."""

    learner: str
    validation_metrics: Dict[str, float]
    train_metrics: Dict[str, float] = field(default_factory=dict)
    best_params: Optional[Dict] = None


@dataclass
class RunResult:
    """Complete record of a single experiment run (one seed, one config)."""

    dataset: str
    random_seed: int
    components: Dict[str, str]
    candidates: List[CandidateResult]
    best_index: int
    test_metrics: Dict[str, float]
    test_metrics_incomplete: Dict[str, float] = field(default_factory=dict)
    test_metrics_complete: Dict[str, float] = field(default_factory=dict)
    sizes: Dict[str, int] = field(default_factory=dict)
    # deterministic configuration fingerprint stamped by the plan/executor
    # layer; lets a store index completed runs and skip them on resume
    run_key: Optional[str] = None

    @property
    def best_candidate(self) -> CandidateResult:
        return self.candidates[self.best_index]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=True)

    @staticmethod
    def from_dict(data: dict) -> "RunResult":
        candidates = [CandidateResult(**c) for c in data["candidates"]]
        return RunResult(
            dataset=data["dataset"],
            random_seed=data["random_seed"],
            components=data["components"],
            candidates=candidates,
            best_index=data["best_index"],
            test_metrics=data["test_metrics"],
            test_metrics_incomplete=data.get("test_metrics_incomplete", {}),
            test_metrics_complete=data.get("test_metrics_complete", {}),
            sizes=data.get("sizes", {}),
            run_key=data.get("run_key"),
        )

    @staticmethod
    def from_json(text: str) -> "RunResult":
        return RunResult.from_dict(json.loads(text))


class ResultsStore:
    """Append-only JSONL store of run results on disk.

    Writes are crash-safe: a batch lands in the store through a temp-file
    copy and an atomic rename, so a process killed mid-write (a dead grid
    worker, a SIGKILLed coordinator) can never leave a truncated store
    behind — readers and ``resume=True`` always see the previous complete
    state or the new complete state, nothing in between.
    """

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)

    def append(self, result: RunResult) -> None:
        self.extend([result])

    def extend(self, results: List[RunResult]) -> None:
        """Append a batch of results atomically (temp file + rename)."""
        if not results:
            return
        payload = "".join(result.to_json() + "\n" for result in results)
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(self.path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                if os.path.exists(self.path):
                    with open(self.path) as current:
                        shutil.copyfileobj(current, handle)
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            # lint: allow(silent-except) -- failed cleanup of the temp file
            # on the re-raise path; the original error is what matters
            except OSError:
                pass
            raise

    def run_keys(self) -> "set[str]":
        """Fingerprints of every stored run that carries one."""
        return {r.run_key for r in self.load(strict=False) if r.run_key}

    def load(self, strict: bool = True) -> List[RunResult]:
        """Read every stored result.

        With ``strict=False``, unparseable lines (e.g. a final line torn by
        an interrupted write — the very situation ``resume`` recovers from)
        are skipped instead of raising.
        """
        if not os.path.exists(self.path):
            return []
        results = []
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    results.append(RunResult.from_json(line))
                except (ValueError, KeyError, TypeError):
                    if strict:
                        raise
        return results


def results_to_rows(results: List[RunResult]) -> List[dict]:
    """Flatten run results into analysis-friendly rows.

    One row per run: components + seed + every test metric, plus the
    incomplete/complete test strata (prefixed), plus the best candidate's
    validation accuracy.
    """
    rows = []
    for result in results:
        row = {
            "dataset": result.dataset,
            "seed": result.random_seed,
            **{f"component__{k}": v for k, v in result.components.items()},
            "best_learner": result.best_candidate.learner,
            **{f"test__{k}": v for k, v in result.test_metrics.items()},
            **{
                f"test_incomplete__{k}": v
                for k, v in result.test_metrics_incomplete.items()
            },
            **{
                f"test_complete__{k}": v
                for k, v in result.test_metrics_complete.items()
            },
        }
        validation_accuracy = result.best_candidate.validation_metrics.get(
            "overall__accuracy"
        )
        if validation_accuracy is not None:
            row["validation_accuracy"] = validation_accuracy
        if result.run_key is not None:
            row["run_key"] = result.run_key
        rows.append(row)
    return rows

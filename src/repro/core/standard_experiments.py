"""Ready-made experiment classes for the integrated datasets.

Each class binds a generated dataset (and its spec) to the lifecycle with
the paper's split fractions, so configuring a study takes a few lines, as
in the paper's Section 4 example.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..datasets import load_dataset
from .experiment import Experiment
from .results import ResultsStore, RunResult


class _StandardExperiment(Experiment):
    """Experiment over a registered dataset, generated on construction."""

    dataset_name: str = ""

    def __init__(
        self,
        random_seed: int,
        dataset_size: Optional[int] = None,
        dataset_seed: int = 0,
        **kwargs,
    ):
        frame, spec = load_dataset(
            self.dataset_name, n=dataset_size, seed=dataset_seed
        )
        super().__init__(frame=frame, spec=spec, random_seed=random_seed, **kwargs)

    @classmethod
    def run_grid(
        cls,
        grid,
        dataset_size: Optional[int] = None,
        dataset_seed: int = 0,
        protected_attribute: Optional[str] = None,
        results_store: Optional[ResultsStore] = None,
        progress: Optional[Callable[[int, int, RunResult], None]] = None,
        jobs: int = 1,
        resume: bool = False,
        executor=None,
    ) -> List[RunResult]:
        """Run a :class:`~repro.core.plan.GridSpec` sweep on this dataset.

        Same engine as :func:`repro.core.run_grid` — ``jobs`` selects the
        parallel backend, ``resume`` skips runs already in the store —
        bound to the class's generated dataset, e.g.
        ``AdultExperiment.run_grid(grid, jobs=4)``.
        """
        from .runner import run_grid as _run_grid

        frame, spec = load_dataset(cls.dataset_name, n=dataset_size, seed=dataset_seed)
        return _run_grid(
            (frame, spec),
            grid,
            protected_attribute=protected_attribute,
            results_store=results_store,
            progress=progress,
            jobs=jobs,
            resume=resume,
            executor=executor,
            # generation seed changes content but not shape, so fold it
            # into the resume fingerprint — but keep the default seed on
            # the canonical format so stores are shared with plain
            # run_grid over the same generated dataset
            dataset_fingerprint=(
                None
                if dataset_seed == 0
                else f"{spec.name}|rows={frame.num_rows}|gen_seed={dataset_seed}"
            ),
        )


class AdultExperiment(_StandardExperiment):
    """Adult income prediction; sensitive attributes race (default) and sex."""

    dataset_name = "adult"


class GermanCreditExperiment(_StandardExperiment):
    """German credit-risk prediction; sensitive attribute sex."""

    dataset_name = "germancredit"


class PropublicaExperiment(_StandardExperiment):
    """COMPAS two-year recidivism; sensitive attributes race (default) and sex."""

    dataset_name = "propublica"


class RicciExperiment(_StandardExperiment):
    """Ricci promotion decisions; sensitive attribute race."""

    dataset_name = "ricci"


class PaymentOptionGenderExperiment(_StandardExperiment):
    """The paper's running example: Ann's payment-option classifier."""

    dataset_name = "payment"

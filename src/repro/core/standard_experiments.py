"""Ready-made experiment classes for the integrated datasets.

Each class binds a generated dataset (and its spec) to the lifecycle with
the paper's split fractions, so configuring a study takes a few lines, as
in the paper's Section 4 example.
"""

from __future__ import annotations

from typing import Optional

from ..datasets import load_dataset
from .experiment import Experiment


class _StandardExperiment(Experiment):
    """Experiment over a registered dataset, generated on construction."""

    dataset_name: str = ""

    def __init__(
        self,
        random_seed: int,
        dataset_size: Optional[int] = None,
        dataset_seed: int = 0,
        **kwargs,
    ):
        frame, spec = load_dataset(
            self.dataset_name, n=dataset_size, seed=dataset_seed
        )
        super().__init__(frame=frame, spec=spec, random_seed=random_seed, **kwargs)


class AdultExperiment(_StandardExperiment):
    """Adult income prediction; sensitive attributes race (default) and sex."""

    dataset_name = "adult"


class GermanCreditExperiment(_StandardExperiment):
    """German credit-risk prediction; sensitive attribute sex."""

    dataset_name = "germancredit"


class PropublicaExperiment(_StandardExperiment):
    """COMPAS two-year recidivism; sensitive attributes race (default) and sex."""

    dataset_name = "propublica"


class RicciExperiment(_StandardExperiment):
    """Ricci promotion decisions; sensitive attribute race."""

    dataset_name = "ricci"


class PaymentOptionGenderExperiment(_StandardExperiment):
    """The paper's running example: Ann's payment-option classifier."""

    dataset_name = "payment"

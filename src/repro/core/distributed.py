"""Distributed grid execution: a fault-tolerant work-queue executor.

The third executor backend. A socket-based **coordinator** (run inside
:class:`DistributedExecutor`) leases whole ``prep_key`` groups of run
configurations to **workers** over length-prefixed JSON frames; workers
execute them locally through the existing
:func:`~repro.core.executors.iter_config_group` path — so the
shared-preparation and fitted-pre-processor caches survive distribution:
a worker that leases a group prepares its splits once, exactly like the
serial executor — and stream each :class:`~repro.core.results.RunResult`
back for idempotent merge-by-``run_key`` into the coordinator's store.

Wire protocol (one frame = 4-byte big-endian length + UTF-8 JSON object,
``type`` field first; worker frames on the left, coordinator replies on
the right)::

    register {worker, pid, needs_manifest}  -> welcome {lease_seconds,
                                               total, manifest?}
    lease    {}                             -> work {lease, prep_key,
                                               run_keys} | wait {seconds}
                                               | done {}
    result   {lease, run_key, result}       -> (no reply; streamed)
    heartbeat{lease}                        -> (no reply; renews deadline)
    complete {lease, stats}                 -> ack {stale?}
    error    {message}                      -> (connection torn down)

Fault tolerance comes from the plan layer's resume semantics rather than
from replication:

* every lease carries a deadline, renewed by heartbeats (and by each
  streamed result); a worker that dies or stalls past it has the lease's
  *unreceived* keys re-queued for the next worker;
* a worker disconnect re-queues its outstanding keys immediately;
* results are merged by ``run_key`` — duplicates (a re-queued group
  finished twice, a stale lease still streaming) are counted and dropped,
  so re-execution never corrupts the store;
* a killed coordinator restarts with ``resume=True`` and only re-issues
  the keys missing from its results store.

Single-coordinator by design; the frames carry explicit lease ids and
worker ids so a replicated coordinator (ScalienDB-style primary/backup)
can be layered on without changing the worker side.

Workers obtain the plan two ways: **forked localhost workers** (the
``workers=N`` single-machine mode used by benches and CI) inherit it
copy-on-write from the coordinator process, while **remote workers**
(``repro grid-worker --connect HOST:PORT``) rebuild it from the
serializable grid *manifest* the coordinator hands out at registration —
the manifest is opaque to this module; the CLI builds and interprets it.
Either way the worker recomputes the deterministic ``run_key``
fingerprints itself and refuses leases whose keys it cannot find, so a
plan mismatch fails loudly instead of silently merging foreign results.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import threading
import time
import warnings
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import parallel, telemetry
from .executors import (
    Executor,
    iter_config_group,
    plan_groups,
    register_executor,
)
from .plan import RunConfig
from .results import RunResult

PROTOCOL_VERSION = 1
DEFAULT_LEASE_SECONDS = 30.0
#: results are small JSON records; anything near this is a framing bug
MAX_FRAME_BYTES = 64 * 1024 * 1024

# coordinator-side event callback: receives dicts like
# {"event": "lease", "lease": 3, "worker": "w1", "keys": 4}
EventCallback = Callable[[dict], None]


class ProtocolError(RuntimeError):
    """A malformed or unexpected frame on a coordinator/worker connection."""


class PlanMismatchError(RuntimeError):
    """A leased ``run_key`` does not exist in the worker's own plan."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, message: dict) -> None:
    """Write one length-prefixed JSON frame."""
    data = json.dumps(message, separators=(",", ":"), allow_nan=True).encode(
        "utf-8"
    )
    sock.sendall(struct.pack(">I", len(data)) + data)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame; ``None`` on a clean EOF between frames."""
    header = _recv_exact(sock, 4, eof_ok=True)
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the protocol limit")
    data = _recv_exact(sock, length, eof_ok=False)
    message = json.loads(data.decode("utf-8"))
    if not isinstance(message, dict):
        raise ProtocolError(f"frame is not a JSON object: {message!r}")
    return message


def _recv_exact(sock: socket.socket, n: int, eof_ok: bool) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def parse_address(text: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``:PORT`` / ``PORT``) into a pair."""
    host, _, port = text.rpartition(":")
    try:
        return (host or "127.0.0.1"), int(port)
    except ValueError:
        raise ValueError(f"expected HOST:PORT, got {text!r}") from None


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
class _Lease:
    __slots__ = ("lease_id", "prep_key", "configs", "worker", "deadline", "received")

    def __init__(self, lease_id: int, configs: List[RunConfig], worker: str):
        self.lease_id = lease_id
        self.prep_key = configs[0].prep_key
        self.configs = configs
        self.worker = worker
        self.deadline = 0.0
        self.received: Dict[str, RunResult] = {}

    def missing(self) -> List[RunConfig]:
        return [c for c in self.configs if c.run_key not in self.received]


class Coordinator:
    """Lease queue + merge point for one distributed grid run.

    All state mutations happen under one lock; connection handler threads
    and the deadline monitor call into it, the owning executor thread only
    waits on :attr:`finished`. ``emit_group`` (the executor's persistence
    callback) is invoked under that lock, so store writes and progress
    callbacks are serialized exactly as in the single-process backends.
    """

    def __init__(
        self,
        sock: socket.socket,
        groups: Sequence[Sequence[RunConfig]],
        emit_group: Callable[[Sequence[RunConfig], List[RunResult]], None],
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        manifest: Optional[dict] = None,
        on_event: Optional[EventCallback] = None,
    ):
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        self._sock = sock
        # captured on the owning executor thread (inside its open
        # grid.run span) so remote workers can parent their spans there
        self._trace_context = telemetry.trace_context()
        self._queue = deque([list(group) for group in groups if group])
        self._total = sum(len(group) for group in self._queue)
        self._emit_group = emit_group
        self.lease_seconds = float(lease_seconds)
        self.manifest = manifest
        self._on_event = on_event
        self._lock = threading.RLock()
        self._outstanding: Dict[int, _Lease] = {}
        self._done_keys: set = set()
        self._lease_seq = 0
        self._registered: set = set()
        self._live_workers: Dict[int, str] = {}  # connection id -> worker id
        self._conn_seq = 0
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self.finished = threading.Event()
        if self._total == 0:
            self.finished.set()
        self.stats = {
            "total": self._total,
            "leased": 0,
            "completed": 0,
            "requeued": 0,
            "duplicates": 0,
            "stale_results": 0,
            "workers": {},
        }

    # -- lifecycle ------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return self._sock.getsockname()[:2]

    def start(self) -> None:
        accept = threading.Thread(
            target=self._accept_loop, name="grid-coordinator-accept", daemon=True
        )
        monitor = threading.Thread(
            target=self._monitor_loop, name="grid-coordinator-monitor", daemon=True
        )
        self._threads = [accept, monitor]
        accept.start()
        monitor.start()

    def stop(self) -> None:
        self._stopping.set()
        try:
            self._sock.close()
        # lint: allow(silent-except) -- shutdown path; the socket may
        # already be closed, which is the goal
        except OSError:
            pass
        for thread in self._threads:
            thread.join(timeout=5.0)

    def live_worker_count(self) -> int:
        with self._lock:
            return len(self._live_workers)

    # -- accept / per-connection protocol -------------------------------
    def _accept_loop(self) -> None:
        # a timeout on accept() lets the loop observe stop(): closing a
        # listening socket does not reliably wake a thread blocked in
        # accept(). Accepted connections come back in blocking mode.
        self._sock.settimeout(0.2)
        while not self._stopping.is_set():
            try:
                conn, _ = self._sock.accept()
            # lint: allow(silent-except) -- the accept timeout is the poll
            # tick that lets the loop observe stop(); nothing failed
            except socket.timeout:
                continue
            except OSError:
                return  # listening socket closed by stop()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            handler.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._lock:
            self._conn_seq += 1
            conn_id = self._conn_seq
        worker = f"conn-{conn_id}"
        held: set = set()
        try:
            while True:
                frame = recv_frame(conn)
                if frame is None:
                    return
                kind = frame.get("type")
                if kind == "register":
                    worker = str(frame.get("worker") or worker)
                    self._register(conn_id, worker, frame, conn)
                elif kind == "lease":
                    self._grant(worker, held, conn)
                elif kind == "result":
                    self._on_result(frame, held)
                elif kind == "heartbeat":
                    self._renew(frame)
                elif kind == "complete":
                    self._on_complete(worker, frame, held, conn)
                elif kind == "error":
                    self._event(
                        {
                            "event": "worker-error",
                            "worker": worker,
                            "message": frame.get("message"),
                        }
                    )
                    return
                else:
                    send_frame(
                        conn,
                        {"type": "error", "message": f"unknown frame type {kind!r}"},
                    )
                    return
        # lint: allow(silent-except) -- a torn connection is expected
        # worker churn: the finally-block requeues its leases and emits a
        # 'requeue' telemetry event with reason=disconnect
        except (ProtocolError, OSError, ValueError):
            pass
        finally:
            try:
                conn.close()
            # lint: allow(silent-except) -- closing a torn connection;
            # there is nothing left to salvage
            except OSError:
                pass
            with self._lock:
                self._live_workers.pop(conn_id, None)
            self._requeue(held, reason="disconnect")

    def _register(self, conn_id, worker, frame, conn) -> None:
        with self._lock:
            self._live_workers[conn_id] = worker
            fresh = worker not in self._registered
            self._registered.add(worker)
            self.stats["workers"].setdefault(
                worker,
                {"runs": 0, "groups": 0, "prep_builds": 0, "seconds": 0.0},
            )
        if fresh:
            self._event({"event": "worker-registered", "worker": worker})
        welcome = {
            "type": "welcome",
            "protocol": PROTOCOL_VERSION,
            "lease_seconds": self.lease_seconds,
            "total": self._total,
        }
        if self._trace_context is not None:
            welcome["trace"] = self._trace_context
        if frame.get("needs_manifest"):
            welcome["manifest"] = self.manifest
        send_frame(conn, welcome)

    def _grant(self, worker, held, conn) -> None:
        with self._lock:
            if self.finished.is_set():
                send_frame(conn, {"type": "done"})
                return
            configs: List[RunConfig] = []
            while self._queue and not configs:
                # drop keys that a stale-lease result already merged
                configs = [
                    c
                    for c in self._queue.popleft()
                    if c.run_key not in self._done_keys
                ]
            if not configs:
                # work is outstanding elsewhere; it may yet be re-queued
                send_frame(
                    conn,
                    {"type": "wait", "seconds": min(1.0, self.lease_seconds / 4)},
                )
                return
            self._lease_seq += 1
            lease = _Lease(self._lease_seq, configs, worker)
            lease.deadline = time.monotonic() + self.lease_seconds
            self._outstanding[lease.lease_id] = lease
            held.add(lease.lease_id)
            self.stats["leased"] += len(configs)
        send_frame(
            conn,
            {
                "type": "work",
                "lease": lease.lease_id,
                "prep_key": lease.prep_key,
                "run_keys": [c.run_key for c in configs],
            },
        )
        self._event(
            {
                "event": "lease",
                "lease": lease.lease_id,
                "worker": worker,
                "keys": len(configs),
            }
        )

    def _renew(self, frame) -> None:
        with self._lock:
            lease = self._outstanding.get(frame.get("lease"))
            if lease is not None:
                lease.deadline = time.monotonic() + self.lease_seconds

    def _on_result(self, frame, held) -> None:
        run_key = frame.get("run_key")
        result = RunResult.from_dict(frame["result"])
        result.run_key = run_key
        with self._lock:
            if run_key in self._done_keys:
                self.stats["duplicates"] += 1
                return
            lease = self._outstanding.get(frame.get("lease"))
            if lease is None or frame.get("lease") not in held:
                # stale lease (expired and re-queued, or from a previous
                # holder): the key is still missing, so merge it directly
                config = self._config_for(run_key)
                if config is None:
                    self.stats["duplicates"] += 1
                    return
                self.stats["stale_results"] += 1
                self._merge([config], [result])
                return
            lease.deadline = time.monotonic() + self.lease_seconds
            lease.received[run_key] = result
            self._done_keys.add(run_key)

    def _on_complete(self, worker, frame, held, conn) -> None:
        lease_id = frame.get("lease")
        reported = frame.get("stats") or {}
        with self._lock:
            record = self.stats["workers"].setdefault(
                worker,
                {"runs": 0, "groups": 0, "prep_builds": 0, "seconds": 0.0},
            )
            record["runs"] += int(reported.get("runs", 0))
            record["groups"] += int(reported.get("groups", 0))
            record["prep_builds"] += int(reported.get("prep_builds", 0))
            record["seconds"] += float(reported.get("seconds", 0.0))
            lease = self._outstanding.pop(lease_id, None)
            held.discard(lease_id)
            if lease is None:
                send_frame(conn, {"type": "ack", "stale": True})
                return
            received = [
                (c, lease.received[c.run_key])
                for c in lease.configs
                if c.run_key in lease.received
            ]
            if received:
                configs, results = zip(*received)
                self._merge(list(configs), list(results), already_marked=True)
            missing = [
                c for c in lease.missing() if c.run_key not in self._done_keys
            ]
        if missing:
            # a "complete" that did not deliver everything it leased: the
            # worker skipped keys (e.g. crash-restart mid-lease semantics)
            self._requeue_configs(missing, lease.lease_id, reason="incomplete")
        send_frame(conn, {"type": "ack", "stale": False})
        self._event(
            {
                "event": "complete",
                "lease": lease_id,
                "worker": worker,
                "keys": len(received),
            }
        )

    # -- merge / requeue -------------------------------------------------
    def _config_for(self, run_key) -> Optional[RunConfig]:
        for lease in self._outstanding.values():
            for config in lease.configs:
                if config.run_key == run_key:
                    return config
        for group in self._queue:
            for config in group:
                if config.run_key == run_key:
                    return config
        return None

    def _merge(self, configs, results, already_marked=False) -> None:
        """Persist newly completed runs; caller holds the lock."""
        if not already_marked:
            for config in configs:
                self._done_keys.add(config.run_key)
            # drop the merged keys from wherever they were queued so an
            # eventual re-lease never recomputes them
            for group in list(self._queue):
                group[:] = [c for c in group if c.run_key not in self._done_keys]
                if not group:
                    self._queue.remove(group)
        self._emit_group(configs, results)
        self.stats["completed"] += len(results)
        # finished means every key MERGED (emitted to the store), not
        # merely received: results buffered on an active lease still need
        # their complete/disconnect/expiry merge before teardown is safe
        if self.stats["completed"] >= self._total:
            self.finished.set()

    def _requeue(self, lease_ids: set, reason: str) -> None:
        for lease_id in list(lease_ids):
            with self._lock:
                lease = self._outstanding.pop(lease_id, None)
            lease_ids.discard(lease_id)
            if lease is None:
                continue
            received = [
                (c, lease.received[c.run_key])
                for c in lease.configs
                if c.run_key in lease.received
            ]
            with self._lock:
                if received:
                    configs, results = zip(*received)
                    self._merge(list(configs), list(results), already_marked=True)
                missing = [
                    c for c in lease.missing() if c.run_key not in self._done_keys
                ]
            self._requeue_configs(missing, lease_id, reason)

    def _requeue_configs(self, configs, lease_id, reason) -> None:
        if not configs:
            return
        with self._lock:
            # front of the queue: re-queued work is the oldest work
            self._queue.appendleft(list(configs))
            self.stats["requeued"] += len(configs)
        self._event(
            {
                "event": "requeue",
                "lease": lease_id,
                "keys": len(configs),
                "reason": reason,
            }
        )

    def _monitor_loop(self) -> None:
        tick = max(0.05, min(1.0, self.lease_seconds / 4))
        while not self._stopping.is_set() and not self.finished.is_set():
            now = time.monotonic()
            expired = set()
            with self._lock:
                for lease_id, lease in self._outstanding.items():
                    if lease.deadline < now:
                        expired.add(lease_id)
            if expired:
                self._requeue(expired, reason="expired")
            self._stopping.wait(tick)

    def _event(self, payload: dict) -> None:
        # every lease-queue event is a telemetry event first (a counter
        # always, a trace-log record when tracing), then the callback
        telemetry.record_event(
            f"distributed.{payload.get('event', 'unknown')}", dict(payload)
        )
        if self._on_event is not None:
            try:
                self._on_event(dict(payload))
            except Exception:
                # an observer must never kill the run
                telemetry.counter("distributed.observer_errors").inc()


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------
def worker_loop(
    address: Tuple[str, int],
    plan=None,
    plan_factory: Optional[Callable[[Optional[dict]], object]] = None,
    worker_id: Optional[str] = None,
    share_preparation: bool = True,
    on_event: Optional[EventCallback] = None,
) -> dict:
    """Pull leases from a coordinator until it reports the grid done.

    Pass ``plan`` when this process already holds the
    :class:`~repro.core.executors.ExecutionPlan` (forked localhost
    workers), or ``plan_factory`` to build one from the coordinator's
    manifest (``repro grid-worker``). Returns the worker's own stats.
    """
    if plan is None and plan_factory is None:
        raise ValueError("worker_loop needs a plan or a plan_factory")
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    sock = socket.create_connection(address)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    stats = {
        "worker": worker_id,
        "runs": 0,
        "groups": 0,
        "prep_builds": 0,
        "seconds": 0.0,
    }

    def event(payload: dict) -> None:
        if on_event is not None:
            on_event(dict(payload, worker=worker_id))

    try:
        send_frame(
            sock,
            {
                "type": "register",
                "worker": worker_id,
                "pid": os.getpid(),
                "protocol": PROTOCOL_VERSION,
                "needs_manifest": plan is None,
            },
        )
        welcome = recv_frame(sock)
        if welcome is None or welcome.get("type") != "welcome":
            raise ProtocolError(f"expected a welcome frame, got {welcome!r}")
        lease_seconds = float(welcome.get("lease_seconds", DEFAULT_LEASE_SECONDS))
        # a remote worker tracing into its own trace dir adopts the
        # coordinator's trace id + root span so the per-process files
        # stitch into the coordinator's tree (forked localhost workers
        # inherit the open span stack through fork instead)
        telemetry.adopt_context(welcome.get("trace"))
        if plan is None:
            manifest = welcome.get("manifest")
            if manifest is None:
                raise ProtocolError(
                    "coordinator offers no grid manifest; only forked "
                    "localhost workers can join this run"
                )
            plan = plan_factory(manifest)
        by_key = {config.run_key: config for config in plan.configs}

        while True:
            send_frame(sock, {"type": "lease"})
            reply = recv_frame(sock)
            if reply is None:
                raise ProtocolError("coordinator closed the connection")
            kind = reply.get("type")
            if kind == "done":
                event({"event": "done"})
                return stats
            if kind == "wait":
                time.sleep(float(reply.get("seconds", 0.5)))
                continue
            if kind != "work":
                raise ProtocolError(f"expected work/wait/done, got {reply!r}")

            lease_id = reply["lease"]
            keys = reply["run_keys"]
            unknown = [key for key in keys if key not in by_key]
            if unknown:
                message = (
                    f"leased {len(unknown)} run keys missing from this "
                    f"worker's plan (e.g. {unknown[0]}); dataset or grid "
                    "manifest differs from the coordinator's"
                )
                send_frame(sock, {"type": "error", "message": message})
                raise PlanMismatchError(message)
            group = sorted((by_key[key] for key in keys), key=lambda c: c.index)
            event({"event": "lease", "lease": lease_id, "keys": len(group)})

            started = time.monotonic()
            send_lock = threading.Lock()
            stop_heartbeat = threading.Event()
            heartbeat = threading.Thread(
                target=_heartbeat_loop,
                args=(sock, send_lock, stop_heartbeat, lease_id, lease_seconds),
                daemon=True,
            )
            heartbeat.start()
            try:
                with telemetry.span(
                    "distributed.lease",
                    lease=lease_id,
                    worker=worker_id,
                    keys=len(group),
                ):
                    for config, result in iter_config_group(
                        plan, group, share_preparation
                    ):
                        with send_lock:
                            send_frame(
                                sock,
                                {
                                    "type": "result",
                                    "lease": lease_id,
                                    "run_key": config.run_key,
                                    "result": result.to_dict(),
                                },
                            )
            finally:
                stop_heartbeat.set()
                heartbeat.join()
            elapsed = time.monotonic() - started
            lease_stats = {
                "runs": len(group),
                "groups": 1,
                "prep_builds": 1 if share_preparation else len(group),
                "seconds": round(elapsed, 6),
            }
            for key in ("runs", "groups", "prep_builds"):
                stats[key] += lease_stats[key]
            stats["seconds"] += lease_stats["seconds"]
            with send_lock:
                send_frame(
                    sock,
                    {"type": "complete", "lease": lease_id, "stats": lease_stats},
                )
            ack = recv_frame(sock)
            if ack is None or ack.get("type") != "ack":
                raise ProtocolError(f"expected an ack frame, got {ack!r}")
            event({"event": "complete", "lease": lease_id, "keys": len(group)})
    finally:
        try:
            sock.close()
        # lint: allow(silent-except) -- worker teardown; a close error on
        # an already-torn socket changes nothing
        except OSError:
            pass


def _heartbeat_loop(sock, send_lock, stop, lease_id, lease_seconds) -> None:
    interval = max(0.05, lease_seconds / 3.0)
    while not stop.wait(interval):
        try:
            with send_lock:
                send_frame(sock, {"type": "heartbeat", "lease": lease_id})
        except OSError:
            return  # the main loop will surface the dead connection


# ----------------------------------------------------------------------
# executor backend
# ----------------------------------------------------------------------
class DistributedExecutor(Executor):
    """Work-queue execution across machines (or forked localhost workers).

    The executor process runs the coordinator; ``workers=N`` forks N
    localhost workers that inherit the plan (the single-machine
    "distributed over localhost" mode — benches, CI, and any grid whose
    component factories are closures), while ``workers=0`` serves external
    ``repro grid-worker`` processes only, which rebuild the plan from
    ``manifest``. Results are identical to :class:`SerialExecutor` —
    same metrics, same store contents modulo row order.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: Optional[int] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        share_preparation: bool = True,
        manifest: Optional[dict] = None,
        on_event: Optional[EventCallback] = None,
    ):
        self.workers = (
            int(workers) if workers is not None else (os.cpu_count() or 1)
        )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if self.workers == 0 and manifest is None:
            warnings.warn(
                "DistributedExecutor(workers=0) without a manifest can only "
                "serve forked workers, and it forks none; external "
                "grid-worker processes will be refused",
                RuntimeWarning,
                stacklevel=2,
            )
        self.lease_seconds = float(lease_seconds)
        self.share_preparation = share_preparation
        self.manifest = manifest
        self.on_event = on_event
        self._host = host
        self._port = port
        self._sock: Optional[socket.socket] = None
        self.stats: Optional[dict] = None
        self._bind()

    def _bind(self) -> None:
        self._sock = socket.create_server((self._host, self._port))

    @property
    def address(self) -> Tuple[str, int]:
        """The coordinator's bound ``(host, port)`` — known before run()."""
        if self._sock is None:
            self._bind()
        return self._sock.getsockname()[:2]

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            # lint: allow(silent-except) -- executor shutdown; the socket
            # may already be closed by a failed bind
            except OSError:
                pass
            self._sock = None

    def _execute(self, plan, pending, emit_group) -> None:
        if self._sock is None:
            self._bind()
        groups = plan_groups(pending, self.share_preparation)
        if self.workers > 1:
            # fewer groups than local workers: split the largest so every
            # worker gets a lease (costs a re-preparation, never changes
            # results — same policy as ParallelExecutor)
            groups = parallel.split_for_balance(groups, self.workers)
        coordinator = Coordinator(
            self._sock,
            groups,
            emit_group,
            lease_seconds=self.lease_seconds,
            manifest=self.manifest,
            on_event=self.on_event,
        )
        address = coordinator.address
        coordinator.start()
        pids: List[int] = []
        threads: List[threading.Thread] = []
        try:
            if self.workers > 0 and parallel.fork_available():
                pids = [
                    parallel.fork_process(
                        lambda rank=rank: worker_loop(
                            address,
                            plan=plan,
                            worker_id=f"local-{rank}",
                            share_preparation=self.share_preparation,
                        )
                    )
                    for rank in range(self.workers)
                ]
            elif self.workers > 0:
                warnings.warn(
                    "DistributedExecutor needs the 'fork' start method to "
                    "spawn localhost worker processes; running them as "
                    "threads instead (no parallel speedup)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                threads = [
                    threading.Thread(
                        target=worker_loop,
                        args=(address,),
                        kwargs={
                            "plan": plan,
                            "worker_id": f"local-{rank}",
                            "share_preparation": self.share_preparation,
                        },
                        daemon=True,
                    )
                    for rank in range(self.workers)
                ]
                for thread in threads:
                    thread.start()
            self._wait(coordinator, pids, threads)
        finally:
            for pid in pids:
                parallel.reap_process(pid, kill_after=self.lease_seconds)
            coordinator.stop()
            self.close()
            self.stats = coordinator.stats

    def _wait(self, coordinator, pids, threads) -> None:
        """Block until every key merged; watch local workers meanwhile."""
        alive = dict.fromkeys(pids, True)
        while not coordinator.finished.wait(timeout=0.1):
            for pid in [p for p, a in alive.items() if a]:
                done, status = os.waitpid(pid, os.WNOHANG)
                if done:
                    alive[pid] = False
            if (
                self.workers > 0
                and pids
                and not any(alive.values())
                and coordinator.live_worker_count() == 0
            ):
                raise RuntimeError(
                    "all local grid workers exited before the grid "
                    "completed; see worker tracebacks above"
                )
            dead_threads = threads and not any(t.is_alive() for t in threads)
            if dead_threads and coordinator.live_worker_count() == 0:
                raise RuntimeError(
                    "all local grid worker threads exited before the grid "
                    "completed"
                )


register_executor("distributed", DistributedExecutor)

"""Missing-value handlers: the paper's second lifecycle stage.

Three strategies, matching Section 4:

* :class:`CompleteCaseAnalysis` — drop incomplete records (the default in
  the studies the paper critiques);
* :class:`ModeImputer` — fill the most frequent value / column mean,
  statistics learned on the training split only;
* :class:`LearnedImputer` — the Datawig substitute: one model per target
  column, trained on the remaining feature columns of the training split
  (classification for categorical targets, k-NN mean for numeric targets).
  The alias :class:`DatawigImputer` preserves the paper's component name.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..frame import CATEGORICAL, NUMERIC, Column, DataFrame
from ..learn import (
    DecisionTreeClassifier,
    OneHotEncoder,
    StandardScaler,
    nearest_neighbor_indices,
)
from ..serialize import serializable
from .components import MissingValueHandler


@serializable
class CompleteCaseAnalysis(MissingValueHandler):
    """Remove records that have missing values in any feature column."""

    def fit(self, train_frame: DataFrame, feature_columns, seed: int):
        self._feature_columns = list(feature_columns)
        return self

    def handle_missing(self, frame: DataFrame) -> DataFrame:
        # keep handle_missing and kept_mask on one decision so row masks
        # derived from kept_mask always align with the handled frame
        return frame.mask(self.kept_mask(frame))

    def kept_mask(self, frame: DataFrame) -> np.ndarray:
        return ~frame.missing_mask(self._feature_columns)

    @property
    def drops_rows(self) -> bool:
        return True

    def to_state(self) -> dict:
        return {"feature_columns": list(self._feature_columns)}

    @classmethod
    def from_state(cls, state: dict) -> "CompleteCaseAnalysis":
        handler = cls()
        handler._feature_columns = list(state["feature_columns"])
        return handler


@serializable
class NoMissingValues(MissingValueHandler):
    """For complete datasets: assert and pass through.

    Fails loudly if missing values show up, so a complete-data assumption
    can never silently corrupt an experiment.
    """

    def fit(self, train_frame: DataFrame, feature_columns, seed: int):
        self._feature_columns = list(feature_columns)
        return self

    def handle_missing(self, frame: DataFrame) -> DataFrame:
        mask = frame.missing_mask(self._feature_columns)
        if mask.any():
            raise ValueError(
                f"{int(mask.sum())} records have missing values but the "
                "experiment is configured with NoMissingValues"
            )
        return frame

    def to_state(self) -> dict:
        return {"feature_columns": list(self._feature_columns)}

    @classmethod
    def from_state(cls, state: dict) -> "NoMissingValues":
        handler = cls()
        handler._feature_columns = list(state["feature_columns"])
        return handler


@serializable
class ModeImputer(MissingValueHandler):
    """Fill missing categoricals with the training mode, numerics with the mean."""

    def fit(self, train_frame: DataFrame, feature_columns, seed: int):
        self._feature_columns = list(feature_columns)
        self._fill_values: Dict[str, object] = {}
        for name in self._feature_columns:
            column = train_frame.col(name)
            if column.is_categorical:
                mode = column.mode()
                self._fill_values[name] = mode if mode is not None else "missing"
            else:
                mean = column.mean()
                self._fill_values[name] = 0.0 if np.isnan(mean) else mean
        return self

    def handle_missing(self, frame: DataFrame) -> DataFrame:
        out = frame
        for name in self._feature_columns:
            column = out.col(name)
            if column.has_missing():
                out = out.with_column(column.fill_missing(self._fill_values[name]))
        return out

    def to_state(self) -> dict:
        return {
            "feature_columns": list(self._feature_columns),
            # categorical fills are strings, numeric fills are floats; JSON
            # keeps both apart without extra tagging
            "fill_values": {
                name: (value if isinstance(value, str) else float(value))
                for name, value in self._fill_values.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "ModeImputer":
        handler = cls()
        handler._feature_columns = list(state["feature_columns"])
        handler._fill_values = dict(state["fill_values"])
        return handler


@serializable
class LearnedImputer(MissingValueHandler):
    """Model-based per-column imputation (the Datawig substitute).

    For each target column with missing values in the training data (or
    listed in ``target_columns``), a model is learned from the *other*
    feature columns — never the class label — on the training rows where
    the target is observed:

    * categorical targets: a decision-tree classifier;
    * numeric targets: the mean of the ``n_neighbors`` nearest training
      rows in the encoded feature space.

    Predictor columns are completed with mode/mean statistics (learned on
    the training split) before encoding, so chained missingness cannot leak
    information across splits.
    """

    def __init__(
        self,
        target_columns: Optional[Sequence[str]] = None,
        max_depth: int = 8,
        n_neighbors: int = 15,
    ):
        self.target_columns = None if target_columns is None else list(target_columns)
        self.max_depth = max_depth
        self.n_neighbors = n_neighbors

    # ------------------------------------------------------------------
    def fit(self, train_frame: DataFrame, feature_columns, seed: int):
        self._feature_columns = list(feature_columns)
        if self.target_columns is None:
            targets = [
                name
                for name in self._feature_columns
                if train_frame.col(name).has_missing()
            ]
        else:
            unknown = [c for c in self.target_columns if c not in self._feature_columns]
            if unknown:
                raise KeyError(f"target columns outside the feature set: {unknown}")
            targets = list(self.target_columns)
        self._targets = targets

        # fallback statistics double as predictor completion
        self._fallback = ModeImputer().fit(train_frame, self._feature_columns, seed)

        self._models: Dict[str, dict] = {}
        # one fitted encoder (and one encoded matrix) is shared across all
        # imputation targets: per-column statistics are independent, so the
        # per-target predictor matrix is just a column slice of the full one
        self._encoder = None
        if targets:
            completed = self._fallback.handle_missing(train_frame)
            self._encoder = _PredictorEncoder(self._feature_columns).fit(completed)
            full_matrix = self._encoder.transform(completed)
        for target in targets:
            observed = ~train_frame.col(target).missing_mask()
            if observed.sum() < 5:
                # too few observed values to learn from; fall back to mode/mean
                self._models[target] = {"kind": "fallback"}
                continue
            X = self._encoder.submatrix(full_matrix, exclude=target)[observed]
            target_column = train_frame.col(target)
            if target_column.is_categorical:
                y = np.asarray(
                    [str(v) for v in target_column.values[observed]], dtype=object
                )
                if len(set(y)) < 2:
                    self._models[target] = {"kind": "fallback"}
                    continue
                model = DecisionTreeClassifier(
                    max_depth=self.max_depth,
                    min_samples_leaf=5,
                    random_state=seed,
                ).fit(X, y)
                self._models[target] = {
                    "kind": "classifier",
                    "model": model,
                }
            else:
                y = target_column.values[observed].astype(np.float64)
                self._models[target] = {
                    "kind": "knn",
                    "train_X": X,
                    "train_sq": (X**2).sum(axis=1),
                    "train_y": y,
                }
        return self

    def handle_missing(self, frame: DataFrame) -> DataFrame:
        if not hasattr(self, "_models"):
            raise RuntimeError("LearnedImputer must be fit before handle_missing")
        out = frame
        completed_predictors = self._fallback.handle_missing(frame)
        full_matrix = None  # encoded lazily, once, shared by every target
        for target in self._targets:
            column = out.col(target)
            mask = column.missing_mask()
            if not mask.any():
                continue
            spec = self._models[target]
            if spec["kind"] == "fallback":
                out = out.with_column(
                    column.fill_missing(self._fallback._fill_values[target])
                )
                continue
            if full_matrix is None:
                full_matrix = self._encoder.transform(completed_predictors)
            X = self._encoder.submatrix(full_matrix, exclude=target)[mask]
            if spec["kind"] == "classifier":
                predictions = spec["model"].predict(X)
                out = out.with_column(column.set_where(mask, predictions))
            else:
                neighbors = nearest_neighbor_indices(
                    spec["train_X"],
                    X,
                    self.n_neighbors,
                    train_sq=spec["train_sq"],
                )
                predictions = spec["train_y"][neighbors].mean(axis=1)
                out = out.with_column(column.set_where(mask, predictions))
        # any remaining missing feature values (non-target columns) get the
        # fallback statistics so downstream featurization never sees NaN
        residual = [
            name
            for name in self._feature_columns
            if out.col(name).has_missing()
        ]
        for name in residual:
            out = out.with_column(
                out.col(name).fill_missing(self._fallback._fill_values[name])
            )
        return out

    def name(self) -> str:
        targets = "all" if self.target_columns is None else ",".join(self.target_columns)
        return f"LearnedImputer({targets})"

    def to_state(self) -> dict:
        if not hasattr(self, "_models"):
            raise RuntimeError("LearnedImputer must be fit before serialization")
        models = {}
        for target, spec in self._models.items():
            if spec["kind"] == "fallback":
                models[target] = {"kind": "fallback"}
            elif spec["kind"] == "classifier":
                models[target] = {
                    "kind": "classifier",
                    "model": spec["model"].to_state(),
                }
            else:
                models[target] = {
                    "kind": "knn",
                    "train_X": spec["train_X"],
                    "train_sq": spec["train_sq"],
                    "train_y": spec["train_y"],
                }
        return {
            "params": {
                "target_columns": self.target_columns,
                "max_depth": self.max_depth,
                "n_neighbors": self.n_neighbors,
            },
            "feature_columns": list(self._feature_columns),
            "targets": list(self._targets),
            "fallback": self._fallback.to_state(),
            "encoder": None if self._encoder is None else self._encoder.to_state(),
            "models": models,
        }

    @classmethod
    def from_state(cls, state: dict) -> "LearnedImputer":
        handler = cls(**state["params"])
        handler._feature_columns = list(state["feature_columns"])
        handler._targets = list(state["targets"])
        handler._fallback = ModeImputer.from_state(state["fallback"])
        handler._encoder = (
            None
            if state["encoder"] is None
            else _PredictorEncoder.from_state(state["encoder"])
        )
        handler._models = {}
        for target, spec in state["models"].items():
            if spec["kind"] == "fallback":
                handler._models[target] = {"kind": "fallback"}
            elif spec["kind"] == "classifier":
                handler._models[target] = {
                    "kind": "classifier",
                    "model": DecisionTreeClassifier.from_state(spec["model"]),
                }
            else:
                handler._models[target] = {
                    "kind": "knn",
                    "train_X": np.asarray(spec["train_X"], dtype=np.float64),
                    "train_sq": np.asarray(spec["train_sq"], dtype=np.float64),
                    "train_y": np.asarray(spec["train_y"], dtype=np.float64),
                }
        return handler


@serializable
class DatawigImputer(LearnedImputer):
    """Alias preserving the paper's component name for the learned imputer."""


@serializable
class _PredictorEncoder:
    """Encode a frame's predictor columns to a numeric matrix.

    Numeric columns are standardized; categorical columns are one-hot
    encoded with the unseen-category dimension. Statistics come from the
    frame passed to :meth:`fit` (the completed training split).

    Because both transforms are per-column and row-wise, one encoder fit on
    *all* feature columns serves every imputation target: the matrix a
    target-specific encoder would produce is exactly :meth:`submatrix` of
    the full transform, so the split → encode work happens once per frame
    instead of once per target.
    """

    def __init__(self, columns: List[str]):
        self.columns = columns

    def fit(self, frame: DataFrame) -> "_PredictorEncoder":
        self.numeric_ = [c for c in self.columns if frame.col(c).is_numeric]
        self.categorical_ = [c for c in self.columns if frame.col(c).is_categorical]
        if self.numeric_:
            self.scaler_ = StandardScaler().fit(frame.to_matrix(self.numeric_))
        if self.categorical_:
            self.encoder_ = OneHotEncoder().fit(
                [frame.col(c) for c in self.categorical_]
            )
        # output-column span of every input column, for submatrix slicing
        self.spans_: Dict[str, np.ndarray] = {}
        start = 0
        for name in self.numeric_:
            self.spans_[name] = np.arange(start, start + 1)
            start += 1
        if self.categorical_:
            for name, categories in zip(self.categorical_, self.encoder_.categories_):
                width = len(categories) + 1  # + the unseen slot
                self.spans_[name] = np.arange(start, start + width)
                start += width
        self.n_outputs_ = start
        return self

    def transform(self, frame: DataFrame) -> np.ndarray:
        blocks = []
        if self.numeric_:
            blocks.append(self.scaler_.transform(frame.to_matrix(self.numeric_)))
        if self.categorical_:
            blocks.append(
                self.encoder_.transform([frame.col(c) for c in self.categorical_])
            )
        if not blocks:
            return np.zeros((frame.num_rows, 1))
        return np.hstack(blocks)

    def submatrix(self, matrix: np.ndarray, exclude: str) -> np.ndarray:
        """The encoded matrix with ``exclude``'s output columns dropped.

        Matches what an encoder fit on the predictor set *minus* ``exclude``
        would transform to — including the all-zeros single column an empty
        predictor set produces.
        """
        span = self.spans_.get(exclude)
        if span is None:
            return matrix
        keep = np.ones(self.n_outputs_, dtype=bool)
        keep[span] = False
        if not keep.any():
            return np.zeros((matrix.shape[0], 1))
        return matrix[:, keep]

    def to_state(self) -> dict:
        return {
            "columns": list(self.columns),
            "numeric_": list(self.numeric_),
            "categorical_": list(self.categorical_),
            "scaler_": self.scaler_.to_state() if self.numeric_ else None,
            "encoder_": self.encoder_.to_state() if self.categorical_ else None,
            "spans_": [[name, span] for name, span in self.spans_.items()],
            "n_outputs_": int(self.n_outputs_),
        }

    @classmethod
    def from_state(cls, state: dict) -> "_PredictorEncoder":
        encoder = cls(list(state["columns"]))
        encoder.numeric_ = list(state["numeric_"])
        encoder.categorical_ = list(state["categorical_"])
        if state["scaler_"] is not None:
            encoder.scaler_ = StandardScaler.from_state(state["scaler_"])
        if state["encoder_"] is not None:
            encoder.encoder_ = OneHotEncoder.from_state(state["encoder_"])
        encoder.spans_ = {
            name: np.asarray(span, dtype=np.int64) for name, span in state["spans_"]
        }
        encoder.n_outputs_ = int(state["n_outputs_"])
        return encoder

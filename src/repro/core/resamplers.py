"""Training-set resamplers (the optional first lifecycle stage)."""

from __future__ import annotations

import numpy as np

from ..frame import DataFrame
from .components import Resampler


class NoResampling(Resampler):
    """Default: leave the training data as is."""

    def resample(self, train_frame: DataFrame, seed: int) -> DataFrame:
        return train_frame


class BootstrapResampler(Resampler):
    """Sample ``fraction * n`` rows with replacement (seeded)."""

    def __init__(self, fraction: float = 1.0):
        if fraction <= 0:
            raise ValueError("fraction must be positive")
        self.fraction = fraction

    def resample(self, train_frame: DataFrame, seed: int) -> DataFrame:
        rng = np.random.default_rng(seed)
        size = max(1, int(round(self.fraction * train_frame.num_rows)))
        indices = rng.integers(0, train_frame.num_rows, size=size)
        return train_frame.take(indices)

    def name(self) -> str:
        return f"Bootstrap({self.fraction})"


class StratifiedSampler(Resampler):
    """Subsample the training data while preserving a column's proportions.

    The paper lists stratified sampling among the preprocessing techniques
    FairPrep should grow to support (§7). Strata are the values of
    ``stratify_column`` (e.g. the protected attribute or the label); within
    each stratum a ``fraction`` of rows is drawn without replacement.
    """

    def __init__(self, stratify_column: str, fraction: float = 0.5):
        if not 0 < fraction <= 1:
            raise ValueError("fraction must lie in (0, 1]")
        self.stratify_column = stratify_column
        self.fraction = fraction

    def resample(self, train_frame: DataFrame, seed: int) -> DataFrame:
        rng = np.random.default_rng(seed)
        values = train_frame[self.stratify_column]
        keys = np.asarray([str(v) for v in values], dtype=object)
        keep = []
        for value in sorted(set(keys)):
            members = np.nonzero(keys == value)[0]
            size = max(1, int(round(self.fraction * len(members))))
            keep.append(rng.choice(members, size=size, replace=False))
        indices = np.sort(np.concatenate(keep))
        return train_frame.take(indices)

    def name(self) -> str:
        return f"StratifiedSampler({self.stratify_column}, {self.fraction})"


class ClassBalancingResampler(Resampler):
    """Oversample minority-label rows until both classes are equally frequent."""

    def __init__(self, label_column: str):
        self.label_column = label_column

    def resample(self, train_frame: DataFrame, seed: int) -> DataFrame:
        rng = np.random.default_rng(seed)
        labels = train_frame[self.label_column]
        values, counts = np.unique(
            np.asarray([str(v) for v in labels], dtype=object), return_counts=True
        )
        if len(values) < 2:
            return train_frame
        majority = counts.max()
        extra_indices = []
        for value, count in zip(values, counts):
            deficit = int(majority - count)
            if deficit == 0:
                continue
            members = np.nonzero(
                np.asarray([str(v) == value for v in labels], dtype=bool)
            )[0]
            extra_indices.append(rng.choice(members, size=deficit, replace=True))
        if not extra_indices:
            return train_frame
        indices = np.concatenate(
            [np.arange(train_frame.num_rows)] + extra_indices
        )
        return train_frame.take(indices)

    def name(self) -> str:
        return f"ClassBalancing({self.label_column})"

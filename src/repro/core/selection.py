"""Best-model selection: the paper's second phase.

After phase 1 trains each candidate and computes its validation metrics,
"a user can then choose the 'best' model via a user-defined function,
selecting the model with a suitable fairness / accuracy trade-off for their
scenario". Selectors receive the list of candidate metric dicts and return
the chosen index.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

MetricDict = Dict[str, float]


class BestModelSelector:
    """Base selector: pick the candidate maximizing a metric value."""

    def __init__(self, metric: str = "overall__accuracy", maximize: bool = True):
        self.metric = metric
        self.maximize = maximize

    def select(self, candidate_metrics: List[MetricDict]) -> int:
        if not candidate_metrics:
            raise ValueError("no candidates to select from")
        values = []
        for metrics in candidate_metrics:
            value = metrics.get(self.metric, float("nan"))
            values.append(-np.inf if np.isnan(value) else value)
        values = np.asarray(values)
        if not self.maximize:
            values = -values
        return int(np.argmax(values))

    def name(self) -> str:
        direction = "max" if self.maximize else "min"
        return f"{direction}({self.metric})"


class AccuracySelector(BestModelSelector):
    """Default: the candidate with the best validation accuracy."""

    def __init__(self):
        super().__init__(metric="overall__accuracy", maximize=True)


class ConstrainedSelector(BestModelSelector):
    """Maximize an objective among candidates satisfying a fairness bound.

    E.g. "best accuracy with |disparate impact - 1| <= 0.2". Falls back to
    the least-violating candidate if none satisfies the constraint.
    """

    def __init__(
        self,
        objective: str = "overall__accuracy",
        constraint_metric: str = "group__disparate_impact",
        constraint_target: float = 1.0,
        constraint_slack: float = 0.2,
    ):
        super().__init__(metric=objective, maximize=True)
        self.constraint_metric = constraint_metric
        self.constraint_target = constraint_target
        self.constraint_slack = constraint_slack

    def select(self, candidate_metrics: List[MetricDict]) -> int:
        if not candidate_metrics:
            raise ValueError("no candidates to select from")
        violations = []
        for metrics in candidate_metrics:
            value = metrics.get(self.constraint_metric, float("nan"))
            violation = (
                np.inf if np.isnan(value) else abs(value - self.constraint_target)
            )
            violations.append(violation)
        feasible = [
            i for i, v in enumerate(violations) if v <= self.constraint_slack
        ]
        if feasible:
            pool = feasible
            best = max(
                pool,
                key=lambda i: _value_or(-np.inf, candidate_metrics[i], self.metric),
            )
            return int(best)
        return int(np.argmin(violations))

    def name(self) -> str:
        return (
            f"max({self.metric}) s.t. |{self.constraint_metric} - "
            f"{self.constraint_target}| <= {self.constraint_slack}"
        )


class FunctionSelector(BestModelSelector):
    """Adapt an arbitrary user function ``metrics_list -> index``."""

    def __init__(self, function: Callable[[List[MetricDict]], int], label: str = "custom"):
        self.function = function
        self.label = label

    def select(self, candidate_metrics: List[MetricDict]) -> int:
        index = int(self.function(candidate_metrics))
        if not 0 <= index < len(candidate_metrics):
            raise ValueError(
                f"selector returned index {index} outside 0..{len(candidate_metrics) - 1}"
            )
        return index

    def name(self) -> str:
        return self.label


def _value_or(default: float, metrics: MetricDict, key: str) -> float:
    value = metrics.get(key, float("nan"))
    return default if np.isnan(value) else value

"""Featurization: frame → annotated numeric dataset (third lifecycle stage).

Numeric features pass through a user-chosen scaler; categorical features
are one-hot encoded with a reserved unseen-value dimension. All aggregate
statistics are fit on the training split only and replayed on the
validation/test splits — the leak-free behaviour Section 2.1 demands.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..datasets import DatasetSpec
from ..fairness import BinaryLabelDataset
from ..frame import DataFrame
from ..learn import NoOpScaler, OneHotEncoder, clone
from ..serialize import restore, serializable, state_of


@serializable
class Featurizer:
    """Fit-once/apply-many conversion of raw frames into model inputs.

    Parameters
    ----------
    spec:
        The dataset spec naming features, label and protected attributes.
    numeric_scaler:
        Any transformer with the fit/transform contract (StandardScaler,
        MinMaxScaler, or NoOpScaler to study the unscaled case).
    protected_attribute:
        Which of the spec's protected attributes drives group annotations
        (defaults to the spec's default).
    """

    def __init__(
        self,
        spec: DatasetSpec,
        numeric_scaler=None,
        protected_attribute: Optional[str] = None,
        categorical_encoder=None,
    ):
        self.spec = spec
        self.numeric_scaler = numeric_scaler if numeric_scaler is not None else NoOpScaler()
        self.protected_attribute = protected_attribute or spec.default_protected
        self.categorical_encoder = categorical_encoder

    # ------------------------------------------------------------------
    def fit(self, train_frame: DataFrame) -> "Featurizer":
        """Fit scaler and encoder statistics on the training frame."""
        self._numeric = list(self.spec.numeric_features)
        self._categorical = list(self.spec.categorical_features)
        if self._numeric:
            matrix = train_frame.to_matrix(self._numeric)
            if np.isnan(matrix).any():
                raise ValueError(
                    "missing numeric values reached featurization; run a "
                    "missing-value handler first"
                )
            self.scaler_ = clone(self.numeric_scaler).fit(matrix)
        if self._categorical:
            template = (
                OneHotEncoder(handle_missing="category")
                if self.categorical_encoder is None
                else self.categorical_encoder
            )
            # target-style encoders consume the training labels; one-hot and
            # frequency encoders ignore them. Columns are passed whole so the
            # encoders work on dictionary codes, not decoded object arrays.
            self.encoder_ = clone(template).fit(
                [train_frame.col(c) for c in self._categorical],
                y=self.spec.label_binary(train_frame),
            )
        self.feature_names_ = self._build_feature_names()
        return self

    def feature_matrix(self, frame: DataFrame) -> np.ndarray:
        """The scaled/encoded feature matrix of a frame (no annotations)."""
        if not hasattr(self, "feature_names_"):
            raise RuntimeError("Featurizer must be fit before transform")
        blocks: List[np.ndarray] = []
        if self._numeric:
            matrix = frame.to_matrix(self._numeric)
            if np.isnan(matrix).any():
                raise ValueError(
                    "missing numeric values reached featurization; run a "
                    "missing-value handler first"
                )
            blocks.append(self.scaler_.transform(matrix))
        if self._categorical:
            blocks.append(
                self.encoder_.transform([frame.col(c) for c in self._categorical])
            )
        return np.hstack(blocks) if blocks else np.zeros((frame.num_rows, 0))

    def transform(
        self, frame: DataFrame, require_label: bool = True
    ) -> BinaryLabelDataset:
        """Convert any split into an annotated BinaryLabelDataset.

        With ``require_label=False`` (the serving path), frames without the
        label column are annotated with all-unfavorable placeholder labels —
        predictions overwrite them and no metric ever reads them.
        """
        features = self.feature_matrix(frame)
        protected = self.spec.protected(self.protected_attribute).binary_column(frame)
        if require_label or self.spec.label_column in frame:
            labels = self.spec.label_binary(frame)
        else:
            labels = np.zeros(frame.num_rows, dtype=np.float64)
        return BinaryLabelDataset(
            features=features,
            labels=labels,
            protected_attributes=protected,
            protected_attribute_names=[self.protected_attribute],
            feature_names=self.feature_names_,
        )

    def fit_transform(self, train_frame: DataFrame) -> BinaryLabelDataset:
        return self.fit(train_frame).transform(train_frame)

    # ------------------------------------------------------------------
    def _build_feature_names(self) -> List[str]:
        names = list(self._numeric)
        if self._categorical:
            names.extend(self.encoder_.feature_names(self._categorical))
        return names

    @property
    def privileged_groups(self):
        return [{self.protected_attribute: 1.0}]

    @property
    def unprivileged_groups(self):
        return [{self.protected_attribute: 0.0}]

    # ------------------------------------------------------------------
    # serialization (fitted state only; the spec travels as plain JSON)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        if not hasattr(self, "feature_names_"):
            raise RuntimeError("Featurizer must be fit before serialization")
        return {
            "spec": self.spec.to_dict(),
            "protected_attribute": self.protected_attribute,
            "numeric": list(self._numeric),
            "categorical": list(self._categorical),
            "scaler_": state_of(self.scaler_) if self._numeric else None,
            "encoder_": state_of(self.encoder_) if self._categorical else None,
            "feature_names_": list(self.feature_names_),
        }

    @classmethod
    def from_state(cls, state: dict) -> "Featurizer":
        featurizer = cls(
            DatasetSpec.from_dict(state["spec"]),
            protected_attribute=state["protected_attribute"],
        )
        featurizer._numeric = list(state["numeric"])
        featurizer._categorical = list(state["categorical"])
        if state["scaler_"] is not None:
            featurizer.scaler_ = restore(state["scaler_"])
        if state["encoder_"] is not None:
            featurizer.encoder_ = restore(state["encoder_"])
        featurizer.feature_names_ = list(state["feature_names_"])
        return featurizer

"""Executor backends: *how* an execution plan runs.

The plan layer (:mod:`repro.core.plan`) describes what to run; the
executors here decide scheduling and reuse:

* :class:`SerialExecutor` — in-process, one run at a time;
* :class:`ParallelExecutor` — fans preparation groups out over the
  fork-based group runner in :mod:`repro.parallel` (shared with
  ``GridSearchCV(n_jobs=...)``; fork means grid factories need not be
  picklable), falling back to serial execution where fork is
  unavailable.

Both share two caches keyed by the plan's fingerprints:

* a **preparation cache**: every combination with the same ``prep_key``
  (seed, resampler, missing-value handler, scaler) reuses one
  :class:`~repro.core.experiment.FeaturizedSplits` instead of re-running
  split → resample → impute → featurize;
* a **pre-processing cache** on top of it: combinations that also share
  the fairness pre-processor reuse the fitted/applied
  :class:`~repro.core.experiment.PreparedData`, so e.g. a DI-remover
  repair is computed once per (seed, repair level) and shared by every
  learner.

Results are identical to uncached serial execution because every stage is
deterministic in (inputs, seed) and never mutates shared artifacts.

With a :class:`~repro.core.results.ResultsStore`, completed groups are
persisted in batches (one open/write per group) and ``resume=True`` skips
any configuration whose ``run_key`` is already stored.
"""

from __future__ import annotations

import abc
import os
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .. import parallel, telemetry
from ..datasets import DatasetSpec
from ..frame import DataFrame
from .components import component_fingerprint
from .experiment import Experiment, FeaturizedSplits
from .plan import GridSpec, RunConfig, route_intervention
from .results import ResultsStore, RunResult

# progress callback: (completed_count, total, latest_result)
ProgressCallback = Callable[[int, int, RunResult], None]


@dataclass
class ExecutionPlan:
    """A grid bound to its data: everything an executor needs to run."""

    frame: DataFrame
    spec: DatasetSpec
    grid: GridSpec
    configs: List[RunConfig]
    protected_attribute: Optional[str] = None
    dataset_fingerprint: Optional[str] = None

    @classmethod
    def for_grid(
        cls,
        frame: DataFrame,
        spec: DatasetSpec,
        grid: GridSpec,
        protected_attribute: Optional[str] = None,
        dataset_fingerprint: Optional[str] = None,
    ) -> "ExecutionPlan":
        # fold the concrete row count into the run fingerprints so resume
        # never matches results computed on a size-truncated variant
        if dataset_fingerprint is None:
            dataset_fingerprint = f"{spec.name}|rows={frame.num_rows}"
        configs = grid.expand(
            spec.name, protected_attribute, dataset_fingerprint=dataset_fingerprint
        )
        return cls(
            frame=frame,
            spec=spec,
            grid=grid,
            configs=configs,
            protected_attribute=protected_attribute,
            dataset_fingerprint=dataset_fingerprint,
        )


def build_experiment(plan: ExecutionPlan, config: RunConfig) -> Experiment:
    """Materialize the experiment for one plan cell from fresh components."""
    grid = plan.grid
    intervention = grid.interventions[config.intervention_index]()
    pre, post = route_intervention(intervention)
    return Experiment(
        frame=plan.frame,
        spec=plan.spec,
        random_seed=config.random_seed,
        learner=grid.learners[config.learner_index](),
        missing_value_handler=grid.missing_value_handlers[config.handler_index](),
        numeric_attribute_scaler=grid.scalers[config.scaler_index](),
        pre_processor=pre,
        post_processor=post,
        protected_attribute=plan.protected_attribute,
    )


def iter_config_group(
    plan: ExecutionPlan,
    group: Sequence[RunConfig],
    share_preparation: bool = True,
):
    """Execute one preparation group, yielding each result as it completes.

    All configs in ``group`` must share a ``prep_key`` (enforced by the
    grouping in :class:`Executor`); the featurized splits are computed once
    and each distinct pre-processor is fitted/applied once.
    """
    splits: Optional[FeaturizedSplits] = None
    prepared_cache: Dict[str, object] = {}
    for config in group:
        experiment = build_experiment(plan, config)
        if share_preparation:
            if splits is None:
                with telemetry.span(
                    "stage.prepare_splits", prep_key=config.prep_key
                ):
                    splits = experiment.prepare_splits()
                telemetry.counter("executor.prep_splits_built").inc()
            else:
                telemetry.counter("executor.prep_cache_hits").inc()
            pre_fingerprint = component_fingerprint(experiment.pre_processor)
            prepared = prepared_cache.get(pre_fingerprint)
            if prepared is None:
                with telemetry.span(
                    "stage.prepare",
                    prep_key=config.prep_key,
                    run_key=config.run_key,
                ):
                    prepared = experiment.prepare(splits)
                prepared_cache[pre_fingerprint] = prepared
            else:
                telemetry.counter("executor.prepared_cache_hits").inc()
            with telemetry.span("stage.train", run_key=config.run_key):
                trained = experiment.train_candidates(prepared)
            with telemetry.span("stage.evaluate", run_key=config.run_key):
                result = experiment.evaluate(prepared, trained)
        else:
            with telemetry.span("stage.run", run_key=config.run_key):
                result = experiment.run()
        result.run_key = config.run_key
        yield config, result


def run_config_group(
    plan: ExecutionPlan,
    group: Sequence[RunConfig],
    share_preparation: bool = True,
) -> List[RunResult]:
    """Execute one preparation group and collect the results."""
    return [
        result for _, result in iter_config_group(plan, group, share_preparation)
    ]


def plan_groups(
    pending: Sequence[RunConfig], share_preparation: bool = True
) -> List[List[RunConfig]]:
    """Partition pending configs into shared-preparation groups.

    The scheduling unit every backend distributes: all configs in a group
    share a ``prep_key``, so whoever executes the group (a local process,
    a remote grid worker) prepares its splits exactly once.
    """
    if not share_preparation:
        return [[config] for config in pending]
    grouped: Dict[str, List[RunConfig]] = {}
    for config in pending:
        grouped.setdefault(config.prep_key, []).append(config)
    return list(grouped.values())


class Executor(abc.ABC):
    """One interface for all backends: ``run(plan) -> [RunResult]``.

    Results come back in plan (expansion) order regardless of the
    scheduling a backend chooses, and are identical across backends.
    """

    share_preparation: bool = True

    def run(
        self,
        plan: ExecutionPlan,
        results_store: Optional[ResultsStore] = None,
        resume: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> List[RunResult]:
        configs = list(plan.configs)
        total = len(configs)
        slots: Dict[int, RunResult] = {}
        done = 0

        def finish(config: RunConfig, result: RunResult) -> None:
            nonlocal done
            slots[config.index] = result
            done += 1
            if progress is not None:
                progress(done, total, result)

        pending: List[RunConfig] = []
        if resume and results_store is not None:
            completed: Dict[str, RunResult] = {}
            # tolerate torn lines: an interrupted write is exactly the
            # situation resume recovers from
            for stored in results_store.load(strict=False):
                if stored.run_key and stored.run_key not in completed:
                    completed[stored.run_key] = stored
            for config in configs:
                hit = completed.get(config.run_key)
                if hit is not None:
                    finish(config, hit)
                else:
                    pending.append(config)
        else:
            pending = configs

        def emit_group(group: Sequence[RunConfig], results: List[RunResult]) -> None:
            if results_store is not None:
                results_store.extend(results)
            for config, result in zip(group, results):
                finish(config, result)

        if pending:
            # the run's root span: every stage span — including those in
            # forked workers, which inherit this open span via the
            # thread-local stack — parents under it, so one grid run
            # stitches into one tree
            with telemetry.span(
                "grid.run",
                backend=type(self).__name__,
                total=total,
                pending=len(pending),
            ):
                self._execute(plan, pending, emit_group)
        return [slots[config.index] for config in configs]

    @abc.abstractmethod
    def _execute(
        self,
        plan: ExecutionPlan,
        pending: List[RunConfig],
        emit_group: Callable[[Sequence[RunConfig], List[RunResult]], None],
    ) -> None:
        """Run the pending configs, reporting each completed group."""

    # ------------------------------------------------------------------
    def _groups(self, pending: List[RunConfig]) -> List[List[RunConfig]]:
        """Partition pending configs into shared-preparation groups."""
        return plan_groups(pending, self.share_preparation)


def _run_groups_in_process(plan, groups, share_preparation, emit_group) -> None:
    """Run groups here, persisting a group's completed runs even when a
    later run in it raises (so an interrupted grid resumes where it died)."""
    for group in groups:
        finished_configs: List[RunConfig] = []
        finished_results: List[RunResult] = []
        try:
            for config, result in iter_config_group(plan, group, share_preparation):
                finished_configs.append(config)
                finished_results.append(result)
        except BaseException:
            if finished_results:
                emit_group(finished_configs, finished_results)
            raise
        emit_group(finished_configs, finished_results)


class SerialExecutor(Executor):
    """In-process execution, one run at a time (with preparation reuse)."""

    def __init__(self, share_preparation: bool = True):
        self.share_preparation = share_preparation

    def _execute(self, plan, pending, emit_group) -> None:
        _run_groups_in_process(
            plan, self._groups(pending), self.share_preparation, emit_group
        )


# ----------------------------------------------------------------------
# process-pool backend
#
# Grid factories are often lambdas/closures, which do not pickle. The
# fan-out therefore runs on :mod:`repro.parallel` — the fork-based group
# runner shared with GridSearchCV's ``n_jobs`` — which publishes the plan
# for forked workers to inherit, so only config indices and results cross
# the process boundary.
# ----------------------------------------------------------------------
def _run_plan_group(payload, group: Sequence[RunConfig]) -> List[RunResult]:
    plan, share_preparation = payload
    return run_config_group(plan, group, share_preparation)


class ParallelExecutor(Executor):
    """Process-pool execution of preparation groups.

    ``jobs`` defaults to the machine's CPU count. Preparation groups are
    the unit of distribution (cache sharing never crosses processes); when
    there are fewer groups than workers, the largest groups are split so
    every worker gets something to do — at the cost of re-preparing the
    split halves, which never changes the results.

    On platforms without the ``fork`` start method the executor degrades
    to serial in-process execution with a warning.
    """

    def __init__(self, jobs: Optional[int] = None, share_preparation: bool = True):
        self.jobs = int(jobs) if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.share_preparation = share_preparation

    def _execute(self, plan, pending, emit_group) -> None:
        groups = self._groups(pending)
        workers = min(self.jobs, len(pending))
        if workers <= 1:
            _run_groups_in_process(plan, groups, self.share_preparation, emit_group)
            return
        if not parallel.fork_available():
            warnings.warn(
                "ParallelExecutor needs the 'fork' start method to ship "
                "component factories to workers; running serially instead",
                RuntimeWarning,
                stacklevel=2,
            )
            _run_groups_in_process(plan, groups, self.share_preparation, emit_group)
            return

        groups = parallel.split_for_balance(groups, workers)
        parallel.run_groups(
            (plan, self.share_preparation),
            _run_plan_group,
            groups,
            min(workers, len(groups)),
            lambda index, group, results: emit_group(group, results),
        )


# ----------------------------------------------------------------------
# backend registry
#
# Every executor backend registers here under a short name, so callers
# (the CLI, run_grid) can select one without importing its module —
# :mod:`repro.core.distributed` registers itself on import.
# ----------------------------------------------------------------------
EXECUTOR_BACKENDS: Dict[str, Callable[..., Executor]] = {}


def register_executor(name: str, factory: Callable[..., Executor]) -> None:
    """Register an executor backend under a short selector name."""
    EXECUTOR_BACKENDS[name] = factory


def make_executor(name: str, **kwargs) -> Executor:
    """Instantiate a registered backend: ``make_executor("parallel", jobs=4)``."""
    try:
        factory = EXECUTOR_BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown executor backend {name!r}; "
            f"available: {sorted(EXECUTOR_BACKENDS)}"
        ) from None
    return factory(**kwargs)


register_executor("serial", SerialExecutor)
register_executor("parallel", ParallelExecutor)

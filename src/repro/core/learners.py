"""Learners: the fifth lifecycle stage (baselines + in-processing models).

The two baselines mirror the paper's setup exactly:

* logistic regression = ``SGDClassifier(loss='log')``, tuned over 3 penalty
  types × 4 regularization strengths with 5-fold cross-validation (the
  "60 different settings" of Section 4: 12 candidates × 5 folds);
* decision tree, tuned over 2 split criteria × 3 depths × 4 min-leaf × 3
  min-split values.

Every learner receives the run's seed and propagates it into grid search
and model training (Section 2.5's reproducibility requirement).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..fairness import BinaryLabelDataset
from ..fairness.inprocessing import AdversarialDebiasing as _AdvDebias
from ..fairness.inprocessing import PrejudiceRemover as _PrejudiceRemover
from ..learn import (
    DecisionTreeClassifier,
    GaussianNB,
    GridSearchCV,
    KNeighborsClassifier,
    SGDClassifier,
)
from ..serialize import restore, serializable, state_of
from .components import Learner

LOGISTIC_REGRESSION_GRID: Dict[str, list] = {
    "penalty": ["l2", "l1", "elasticnet"],
    "alpha": [0.00005, 0.0001, 0.005, 0.001],
}

DECISION_TREE_GRID: Dict[str, list] = {
    "criterion": ["gini", "entropy"],
    "max_depth": [3, 5, 10],
    "min_samples_leaf": [1, 5, 10, 20],
    "min_samples_split": [2, 10, 20],
}


@serializable
class _FittedModel:
    """Uniform wrapper: predictions as favorable/unfavorable float labels."""

    def __init__(self, model, favorable: float, unfavorable: float):
        self._model = model
        self._favorable = favorable
        self._unfavorable = unfavorable

    def predict(self, features: np.ndarray) -> np.ndarray:
        raw = self._model.predict(features)
        return np.asarray(raw, dtype=np.float64)

    def predict_scores(self, features: np.ndarray) -> Optional[np.ndarray]:
        """Favorable-class probabilities, or None when unavailable."""
        proba = getattr(self._model, "predict_proba", None)
        if proba is None:
            return None
        try:
            scores = proba(features)
        except AttributeError:
            return None
        classes = np.asarray(self._model.classes_, dtype=np.float64)
        column = int(np.nonzero(classes == self._favorable)[0][0])
        return scores[:, column]

    # models whose predict() is literally classes_[argmax(predict_proba)],
    # so one proba pass reproduces predict byte for byte; linear models
    # threshold the decision function instead (>= 0 keeps the favorable
    # class on a tied margin, argmax would flip it) and stay on two calls
    _ARGMAX_OF_PROBA = (DecisionTreeClassifier, KNeighborsClassifier)

    def predict_with_scores(self, features: np.ndarray):
        """Labels and scores from one model pass where that is exact.

        ``predict`` followed by ``predict_scores`` runs the underlying
        model twice (a decision tree traverses its nodes per call); when
        both are wanted — every scoring-service request — a single
        ``predict_proba`` serves both for argmax-of-proba models.
        """
        if isinstance(self._model, self._ARGMAX_OF_PROBA):
            proba = self._model.predict_proba(features)
            classes = np.asarray(self._model.classes_, dtype=np.float64)
            column = int(np.nonzero(classes == self._favorable)[0][0])
            labels = np.asarray(
                self._model.classes_[np.argmax(proba, axis=1)],
                dtype=np.float64,
            )
            return labels, proba[:, column]
        return self.predict(features), self.predict_scores(features)

    @property
    def inner(self):
        return self._model

    def to_state(self) -> dict:
        inner = self._model
        if isinstance(inner, GridSearchCV):
            # export the winning estimator; the search bookkeeping is an
            # experiment-time artifact with no serving role
            inner = inner.best_estimator_
        return {
            "model": state_of(inner),
            "favorable": float(self._favorable),
            "unfavorable": float(self._unfavorable),
        }

    @classmethod
    def from_state(cls, state: dict) -> "_FittedModel":
        return cls(
            restore(state["model"]),
            favorable=state["favorable"],
            unfavorable=state["unfavorable"],
        )


class LogisticRegression(Learner):
    """SGD logistic-regression baseline, optionally grid-tuned (5-fold CV)."""

    def __init__(
        self,
        tuned: bool = True,
        param_grid: Optional[Dict[str, list]] = None,
        cv: int = 5,
        max_iter: int = 20,
        batch_size: int = 32,
        n_jobs: Optional[int] = None,
    ):
        self.tuned = tuned
        self.param_grid = dict(param_grid) if param_grid else dict(LOGISTIC_REGRESSION_GRID)
        self.cv = cv
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.n_jobs = n_jobs

    def fit_model(self, train_data: BinaryLabelDataset, seed: int) -> _FittedModel:
        base = SGDClassifier(
            loss="log",
            max_iter=self.max_iter,
            batch_size=self.batch_size,
            random_state=seed,
        )
        X, y, w = train_data.features, train_data.labels, train_data.instance_weights
        if self.tuned:
            search = GridSearchCV(
                base, self.param_grid, cv=self.cv, random_state=seed,
                n_jobs=self.n_jobs,
            )
            search.fit(X, y, sample_weight=w)
            model = search.best_estimator_
            self.last_search_ = search
        else:
            model = base.fit(X, y, sample_weight=w)
        return _FittedModel(model, train_data.favorable_label, train_data.unfavorable_label)

    def name(self) -> str:
        return f"LogisticRegression({'tuned' if self.tuned else 'default'})"


class DecisionTree(Learner):
    """CART baseline, optionally grid-tuned (5-fold CV)."""

    def __init__(
        self,
        tuned: bool = True,
        param_grid: Optional[Dict[str, list]] = None,
        cv: int = 5,
        n_jobs: Optional[int] = None,
    ):
        self.tuned = tuned
        self.param_grid = dict(param_grid) if param_grid else dict(DECISION_TREE_GRID)
        self.cv = cv
        self.n_jobs = n_jobs

    def fit_model(self, train_data: BinaryLabelDataset, seed: int) -> _FittedModel:
        base = DecisionTreeClassifier(random_state=seed)
        X, y, w = train_data.features, train_data.labels, train_data.instance_weights
        if self.tuned:
            search = GridSearchCV(
                base, self.param_grid, cv=self.cv, random_state=seed,
                n_jobs=self.n_jobs,
            )
            search.fit(X, y, sample_weight=w)
            model = search.best_estimator_
            self.last_search_ = search
        else:
            model = base.fit(X, y, sample_weight=w)
        return _FittedModel(model, train_data.favorable_label, train_data.unfavorable_label)

    def name(self) -> str:
        return f"DecisionTree({'tuned' if self.tuned else 'default'})"


class NaiveBayes(Learner):
    """Gaussian naive Bayes baseline (no hyperparameters worth tuning)."""

    def fit_model(self, train_data: BinaryLabelDataset, seed: int) -> _FittedModel:
        model = GaussianNB().fit(
            train_data.features,
            train_data.labels,
            sample_weight=train_data.instance_weights,
        )
        return _FittedModel(model, train_data.favorable_label, train_data.unfavorable_label)


class KNearestNeighbors(Learner):
    """k-NN baseline, optionally tuned over the neighbourhood size.

    Included because the comparison study FairPrep builds on (Friedler et
    al.) evaluates nearest-neighbour baselines; note k-NN ignores instance
    weights, so it composes with feature-editing interventions (di-remover)
    but not with reweighing.
    """

    def __init__(
        self,
        tuned: bool = True,
        neighbor_grid: Optional[list] = None,
        cv: int = 5,
        n_jobs: Optional[int] = None,
    ):
        self.tuned = tuned
        self.neighbor_grid = list(neighbor_grid) if neighbor_grid else [3, 5, 11, 21]
        self.cv = cv
        self.n_jobs = n_jobs

    def fit_model(self, train_data: BinaryLabelDataset, seed: int) -> _FittedModel:
        base = KNeighborsClassifier()
        X, y = train_data.features, train_data.labels
        if self.tuned:
            search = GridSearchCV(
                base,
                {"n_neighbors": self.neighbor_grid},
                cv=self.cv,
                random_state=seed,
                n_jobs=self.n_jobs,
            )
            search.fit(X, y)
            model = search.best_estimator_
            self.last_search_ = search
        else:
            model = base.fit(X, y)
        return _FittedModel(model, train_data.favorable_label, train_data.unfavorable_label)

    def name(self) -> str:
        return f"KNearestNeighbors({'tuned' if self.tuned else 'default'})"


class _InProcessingModel:
    """Adapter exposing predict/predict_scores for fairness in-processors."""

    def __init__(self, model, favorable: float, unfavorable: float):
        self._model = model
        self._favorable = favorable
        self._unfavorable = unfavorable

    def predict(self, features: np.ndarray) -> np.ndarray:
        scores = self._model.predict_proba(features)[:, 1]
        return np.where(scores >= 0.5, self._favorable, self._unfavorable)

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        return self._model.predict_proba(features)[:, 1]

    @property
    def inner(self):
        return self._model


class AdversarialDebiasingLearner(Learner):
    """In-processing intervention: Zhang et al. adversarial debiasing."""

    def __init__(
        self,
        adversary_loss_weight: float = 0.1,
        num_epochs: int = 50,
        batch_size: int = 128,
        debias: bool = True,
    ):
        self.adversary_loss_weight = adversary_loss_weight
        self.num_epochs = num_epochs
        self.batch_size = batch_size
        self.debias = debias

    @property
    def needs_annotated_data(self) -> bool:
        return True

    def fit_model(self, train_data: BinaryLabelDataset, seed: int) -> _InProcessingModel:
        attribute = train_data.protected_attribute_names[0]
        model = _AdvDebias(
            unprivileged_groups=[{attribute: 0.0}],
            privileged_groups=[{attribute: 1.0}],
            adversary_loss_weight=self.adversary_loss_weight,
            num_epochs=self.num_epochs,
            batch_size=self.batch_size,
            debias=self.debias,
            seed=seed,
        ).fit(train_data)
        return _InProcessingModel(
            model, train_data.favorable_label, train_data.unfavorable_label
        )

    def name(self) -> str:
        return f"AdversarialDebiasing(w={self.adversary_loss_weight})"


class PrejudiceRemoverLearner(Learner):
    """In-processing intervention: fairness-regularized logistic regression."""

    def __init__(self, eta: float = 1.0, max_iter: int = 300):
        self.eta = eta
        self.max_iter = max_iter

    @property
    def needs_annotated_data(self) -> bool:
        return True

    def fit_model(self, train_data: BinaryLabelDataset, seed: int) -> _InProcessingModel:
        attribute = train_data.protected_attribute_names[0]
        model = _PrejudiceRemover(
            unprivileged_groups=[{attribute: 0.0}],
            privileged_groups=[{attribute: 1.0}],
            eta=self.eta,
            max_iter=self.max_iter,
            seed=seed,
        ).fit(train_data)
        return _InProcessingModel(
            model, train_data.favorable_label, train_data.unfavorable_label
        )

    def name(self) -> str:
        return f"PrejudiceRemover(eta={self.eta})"

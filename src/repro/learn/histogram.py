"""Histogram-based split finding for million-row tree induction.

The exact presorted backend (:mod:`repro.learn.splitter`) is O(d·n) *per
level* just to maintain its sorted-order matrix, with float64 cumsums over
every node's full columns to score candidates — the right trade at paper
scale (≤33k rows), but the per-level gather traffic alone dominates the
fit long before a million rows. This module trades exact thresholds on
high-cardinality features for bounded per-node work:

* :class:`HistogramBinning` discretizes the matrix **once per fit** into
  at most 256 bins per feature (uint8 codes). Features with at most 256
  distinct values keep one bin per value — the split search over them is
  *exact*, byte-identical to the presort backend (one-hot columns and the
  int32-coded categoricals from the frame layer are already in this
  regime). Denser features get an equal-count quantile sketch of the
  sorted values.
* :class:`HistogramSplitter` accumulates per-node class-count histograms
  with ``bincount`` and scores gains only at bin boundaries through the
  same gain kernel the presort backend uses — O(d·n_bins) candidates per
  node instead of O(d·n).
* Sibling histograms come from the **subtraction trick**: only the
  smaller child is ever re-accumulated; the larger child's histogram is
  ``parent − smaller``, exact in the integer unit-weight counts. Per
  level, at most half the node's rows are touched.

Below the bin-degeneracy limit (every feature ≤256 distinct values, unit
sample weights) the induced tree is node-for-node identical to
:class:`~repro.learn.splitter.PresortSplitter`: same candidate set, the
same integer running statistics fed through the same impurity
expressions, the same tie-breaking, and the same boundary-midpoint
thresholds. Beyond it, thresholds move to midpoints between global bin
edges and non-unit weights are summed per bin instead of in sorted row
order, so results are deterministic but not bit-pinned to the exact
backend.
"""

from __future__ import annotations

import numpy as np

from .. import telemetry
from .splitter import (
    _children_gain,
    _impurity,
    _impurity_binary,
    _impurity_from_p,
    _scalar_impurity_binary,
)

MAX_BINS = 256


class HistogramBinning:
    """Per-feature uint8 bin codes of a matrix, built once per fit.

    ``codes`` is feature-major ``(d, n)``. For feature j, ``n_bins[j]``
    bins are described by ``lower[j]`` / ``upper[j]``: the smallest and
    largest raw value falling in each bin (so the threshold between two
    bins is the midpoint of ``upper`` of the left one and ``lower`` of
    the right one — exactly the presort boundary midpoint whenever each
    bin holds a single distinct value).

    Like :class:`~repro.learn.splitter.Presort`, an instance is trusted
    only for the matrix object it was built from (:meth:`is_for`).
    """

    __slots__ = ("matrix", "codes", "n_bins", "lower", "upper")

    def __init__(self, X, max_bins: int = MAX_BINS):
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"HistogramBinning expects a 2-D matrix, got {X.shape}")
        if not 2 <= max_bins <= MAX_BINS:
            raise ValueError(f"max_bins must lie in [2, {MAX_BINS}], got {max_bins}")
        self.matrix = X
        n, d = X.shape
        with telemetry.span("learn.histogram_build", rows=n, features=d):
            self._build(X, n, d, max_bins)

    def _build(self, X, n, d, max_bins):
        self.codes = np.empty((d, n), dtype=np.uint8)
        self.n_bins = np.empty(d, dtype=np.int32)
        self.lower = []
        self.upper = []
        for j in range(d):
            column = X[:, j]
            ordered = np.sort(column)
            # cut points are actual data values; bin b holds values in
            # (cuts[b-1], cuts[b]] with searchsorted 'left' placement
            if n == 0:
                cuts = np.zeros(1)
            else:
                boundary = np.empty(n, dtype=bool)
                boundary[0] = True
                np.not_equal(ordered[1:], ordered[:-1], out=boundary[1:])
                n_distinct = int(boundary.sum())
                if n_distinct <= max_bins:
                    cuts = ordered[boundary]
                else:
                    # equal-count quantile sketch over the sorted copy;
                    # duplicates collapse, so every cut is a distinct value
                    picks = np.linspace(0, n - 1, max_bins).round().astype(np.int64)
                    cuts = np.unique(ordered[picks])
                    if cuts[-1] != ordered[-1]:  # pragma: no cover - linspace ends at n-1
                        cuts = np.append(cuts, ordered[-1])
            codes = np.searchsorted(cuts, column, side="left")
            # non-finite or out-of-range values land in the last bin
            np.minimum(codes, len(cuts) - 1, out=codes)
            self.codes[j] = codes.astype(np.uint8)
            self.n_bins[j] = len(cuts)
            ends = np.searchsorted(ordered, cuts, side="right")
            starts = np.empty_like(ends)
            starts[0] = 0
            starts[1:] = ends[:-1]
            # every cut is a data value, so each bin is globally non-empty
            self.upper.append(cuts)
            self.lower.append(ordered[np.minimum(starts, n - 1)])

    def is_for(self, X) -> bool:
        return X is self.matrix

    @property
    def n_samples(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_features(self) -> int:
        return self.matrix.shape[1]


class HistogramSplitter:
    """Best-split search over per-node class-count histograms.

    Drop-in peer of :class:`~repro.learn.splitter.PresortSplitter` for
    the tree-growing loop: the same ``root_context`` /
    ``node_distribution`` / ``best_split_*`` / ``partition`` surface,
    with the per-node context being class-count histograms instead of a
    sorted-order matrix.
    """

    def __init__(self, X, onehot, criterion, min_samples_leaf, binning=None):
        self.X = X
        self.onehot = onehot
        self.criterion = criterion
        self.min_leaf = int(min_samples_leaf)
        self.n_samples, self.n_features = X.shape
        self.binary = onehot.shape[1] == 2
        if binning is None or not binning.is_for(X):
            binning = HistogramBinning(X)
        self._binning = binning
        self._codes = binning.codes
        self._max_bins = int(binning.n_bins.max()) if self.n_features else 1
        weight = onehot.sum(axis=1)
        self.unit_weight = bool(np.all(weight == 1.0))
        self._weight = None if self.unit_weight else weight
        if self.binary:
            positive = np.ascontiguousarray(onehot[:, 1])
            if self.unit_weight:
                self._positive = positive.astype(np.int8)
            else:
                self._positive = positive

    # ------------------------------------------------------------------
    # node context: histograms
    # ------------------------------------------------------------------
    def root_context(self):
        return self._accumulate(np.arange(self.n_samples))

    def _accumulate(self, indices):
        """Histogram tuple of a node given its sample indices.

        Binary: ``(count, weight_or_None, positive)`` each ``(d, B)``;
        general: ``(count, class_weights)`` with class weights
        ``(d, B, K)``. Unit-weight statistics stay integral (int64), so
        sibling subtraction is exact.
        """
        d, B = self.n_features, self._max_bins
        sub = self._codes[:, indices]
        count = np.empty((d, B), dtype=np.int64)
        if self.binary:
            if self.unit_weight:
                positive = np.empty((d, B), dtype=np.int64)
                pos_rows = np.asarray(self._positive[indices], dtype=bool)
                pos_sub = sub[:, pos_rows]
                for j in range(d):
                    count[j] = np.bincount(sub[j], minlength=B)
                    positive[j] = np.bincount(pos_sub[j], minlength=B)
                return count, None, positive
            positive = np.empty((d, B), dtype=np.float64)
            weight = np.empty((d, B), dtype=np.float64)
            w = self._weight[indices]
            p = self._positive[indices]
            for j in range(d):
                count[j] = np.bincount(sub[j], minlength=B)
                weight[j] = np.bincount(sub[j], weights=w, minlength=B)
                positive[j] = np.bincount(sub[j], weights=p, minlength=B)
            return count, weight, positive
        K = self.onehot.shape[1]
        dtype = np.int64 if self.unit_weight else np.float64
        class_w = np.empty((d, B, K), dtype=dtype)
        sub_onehot = self.onehot[indices]
        for j in range(d):
            count[j] = np.bincount(sub[j], minlength=B)
            for k in range(K):
                column = np.bincount(sub[j], weights=sub_onehot[:, k], minlength=B)
                class_w[j, :, k] = column if dtype is np.float64 else column.astype(np.int64)
        return count, class_w

    def partition(self, context, left_indices, right_indices):
        """Child contexts via the subtraction trick.

        Only the smaller child is re-accumulated; its sibling's
        histograms are the parent's minus the child's — exact for the
        integral unit-weight statistics, and clipped at zero for float
        weights so accumulated rounding can never produce a (tiny)
        negative bin mass.
        """
        left_small = left_indices.size <= right_indices.size
        small = self._accumulate(left_indices if left_small else right_indices)
        big = tuple(
            None
            if part is None
            else (
                parent - part
                if parent.dtype == np.int64
                else np.maximum(parent - part, 0.0)
            )
            for parent, part in zip(context, small)
        )
        return (small, big) if left_small else (big, small)

    def node_distribution(self, indices):
        """Class-weight vector of a node; mirrors the presort backend
        operand for operand (same summation orders)."""
        if self.binary and self.unit_weight:
            node_positive = float(self._positive[indices].sum())
            return np.asarray([len(indices) - node_positive, node_positive]), None
        sub = self.onehot[indices]
        return sub.sum(axis=0), sub

    # ------------------------------------------------------------------
    # split search
    # ------------------------------------------------------------------
    def best_split_binary(self, indices, context, sub, distribution):
        n = len(indices)
        d = self.n_features
        min_leaf = self.min_leaf
        if n < 2 * min_leaf:
            return None
        count, weight, positive = context
        unit = self.unit_weight
        if unit:
            node_weight = float(n)
            node_positive = distribution[1]
        else:
            node_weight = sub.sum(axis=1).sum()
            node_positive = sub[:, 1].sum()
        if node_weight <= 0:
            return None
        node_impurity = _scalar_impurity_binary(
            self.criterion, node_positive / node_weight
        )

        left_n = np.cumsum(count, axis=1)
        # a candidate sits after every non-empty bin with samples on both
        # sides, inside the min-leaf window of split *positions* — the
        # same feasibility rule the presort window encodes
        cand = (count > 0) & (left_n >= min_leaf) & (left_n <= n - min_leaf)
        feat, bins = np.nonzero(cand)
        if feat.size == 0:
            return None
        left_count = left_n[feat, bins]
        left_p = np.cumsum(positive, axis=1, dtype=np.float64)[feat, bins]
        right_p = node_positive - left_p
        if unit:
            left_w = left_count.astype(np.float64)
            right_w = node_weight - left_w
            with np.errstate(divide="ignore", invalid="ignore"):
                left_impurity = _impurity_from_p(self.criterion, left_p / left_w)
                right_impurity = _impurity_from_p(self.criterion, right_p / right_w)
            gains = node_impurity - (
                (left_w * left_impurity + right_w * right_impurity) / node_weight
            )
        else:
            left_w = np.cumsum(weight, axis=1)[feat, bins]
            right_w = node_weight - left_w
            ok = (left_w > 0) & (right_w > 0)
            if not ok.any():
                return None
            left_impurity = _impurity_binary(self.criterion, left_p, left_w)
            right_impurity = _impurity_binary(self.criterion, right_p, right_w)
            gains = _children_gain(
                ok, node_impurity, node_weight,
                left_w, left_impurity, right_w, right_impurity,
            )
        best_gain = gains.max()
        if not np.isfinite(best_gain):
            return None
        # presort tie-break: lowest split position first, then lowest
        # feature; the split position of a boundary is left_count - 1
        tied = np.nonzero(gains == best_gain)[0]
        if tied.size > 1:
            winner = tied[np.argmin((left_count[tied] - 1) * d + feat[tied])]
        else:
            winner = tied[0]
        f = int(feat[winner])
        b = int(bins[winner])
        return f, self._threshold(count, f, b), float(gains[winner])

    def best_split_general(self, indices, context, node_counts):
        node_weight = node_counts.sum()
        if node_weight <= 0:
            return None
        node_impurity = _impurity(self.criterion, node_counts[None, :], node_weight)[0]
        count, class_w = context
        n = len(indices)
        min_leaf = self.min_leaf
        best = None
        best_gain = -np.inf
        for feature in range(self.n_features):
            counts_f = count[feature]
            left_n = np.cumsum(counts_f)
            valid = np.nonzero(
                (counts_f > 0) & (left_n >= min_leaf) & (left_n <= n - min_leaf)
            )[0]
            if valid.size == 0:
                continue
            left_counts = np.cumsum(
                class_w[feature], axis=0, dtype=np.float64
            )[valid]
            right_counts = node_counts[None, :] - left_counts
            left_weight = left_counts.sum(axis=1)
            right_weight = right_counts.sum(axis=1)
            ok = (left_weight > 0) & (right_weight > 0)
            if not ok.any():
                continue
            left_impurity = _impurity(self.criterion, left_counts, left_weight)
            right_impurity = _impurity(self.criterion, right_counts, right_weight)
            gains = _children_gain(
                ok, node_impurity, node_weight,
                left_weight, left_impurity, right_weight, right_impurity,
            )
            pick = int(np.argmax(gains))
            if gains[pick] > best_gain:
                best_gain = float(gains[pick])
                best = (
                    feature,
                    self._threshold(count, feature, int(valid[pick])),
                    best_gain,
                )
        return best

    def _threshold(self, count, feature: int, bin_index: int) -> float:
        """Midpoint between this bin's upper edge and the next *occupied*
        bin's lower edge — in the one-value-per-bin regime, exactly the
        presort midpoint of the boundary pair."""
        counts_f = count[feature]
        following = np.nonzero(counts_f[bin_index + 1 :] > 0)[0]
        next_bin = bin_index + 1 + int(following[0])
        lo = self._binning.upper[feature][bin_index]
        hi = self._binning.lower[feature][next_bin]
        return float(0.5 * (lo + hi))

"""Alternative categorical encoders (the paper's §7 "embeddings" extension).

All encoders share the :class:`~repro.learn.preprocessing.OneHotEncoder`
interface — ``fit`` on a list of per-feature object arrays from the
*training* split, ``transform`` on any split — so the lifecycle's
featurizer can swap them in without changes:

* :class:`FrequencyEncoder` — each category becomes its training-split
  relative frequency (one dimension per feature);
* :class:`TargetEncoder` — each category becomes the smoothed training
  mean of the binary label (needs ``y`` at fit; leak-free by construction
  because statistics come from the training split only);
* :class:`SVDEmbeddingEncoder` — dense low-rank embedding of the one-hot
  matrix via truncated SVD fit on the training split.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..frame.column import sorted_position
from ..serialize import serializable
from .base import BaseEstimator, TransformerMixin
from .preprocessing import MISSING_CATEGORY, OneHotEncoder, _as_categorical_columns


def _key_counts(column, weights=None) -> tuple:
    """Per-key tallies over a coded column, missing bucketed as ``<missing>``.

    Returns ``(keys, totals, counts)``: one ``np.bincount`` over the shifted
    codes (slot 0 = missing) per tally, with zero-occurrence keys dropped to
    preserve the observed-keys-only dict shape. Without ``weights``,
    ``totals`` *are* the occurrence counts. A category that is literally the
    string ``<missing>`` folds into the missing bucket, matching the
    stringify-then-count semantics of the object-array implementation.
    """
    shifted = column.codes + 1
    minlength = len(column.categories) + 1
    counts = np.bincount(shifted, minlength=minlength)
    totals = (
        np.bincount(shifted, weights=weights, minlength=minlength)
        if weights is not None
        else counts
    )
    literal = sorted_position(column.categories, MISSING_CATEGORY)
    if literal >= 0:
        counts = counts.copy()
        counts[0] += counts[literal + 1]
        counts[literal + 1] = 0
        if weights is not None:
            totals = totals.copy()
            totals[0] += totals[literal + 1]
            totals[literal + 1] = 0
        else:
            totals = counts
    keys = np.concatenate(([MISSING_CATEGORY], column.categories))
    present = counts > 0
    return keys[present], totals[present], counts[present]


def _code_lookup(column, table: dict, default: float) -> np.ndarray:
    """Map a coded column through ``{key: value}`` in one fancy index.

    The lookup table has one slot per category plus a trailing slot for
    missing, so indexing with the raw codes (missing = ``-1``) resolves
    every row without touching individual values.
    """
    lut = np.empty(len(column.categories) + 1, dtype=np.float64)
    for i, category in enumerate(column.categories):
        lut[i] = table.get(category, default)
    lut[-1] = table.get(MISSING_CATEGORY, default)
    return lut[column.codes]


@serializable
class FrequencyEncoder(BaseEstimator, TransformerMixin):
    """Encode each categorical value by its training-set frequency."""

    def fit(self, X, y=None) -> "FrequencyEncoder":
        columns = _as_categorical_columns(X)
        self.frequencies_: List[dict] = []
        for column in columns:
            keys, counts, _ = _key_counts(column)
            total = len(column)
            self.frequencies_.append(
                {key: count / total for key, count in zip(keys, counts)}
            )
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("frequencies_")
        columns = _as_categorical_columns(X)
        if len(columns) != len(self.frequencies_):
            raise ValueError(
                f"X has {len(columns)} features, encoder was fit on "
                f"{len(self.frequencies_)}"
            )
        blocks = []
        for column, table in zip(columns, self.frequencies_):
            # unseen categories read as frequency 0 (they were never observed)
            blocks.append(_code_lookup(column, table, 0.0).reshape(-1, 1))
        return np.hstack(blocks)

    def feature_names(self, input_names: Optional[Sequence[str]] = None) -> List[str]:
        self._check_fitted("frequencies_")
        if input_names is None:
            input_names = [f"x{i}" for i in range(len(self.frequencies_))]
        return [f"{name}:frequency" for name in input_names]

    def to_state(self) -> dict:
        self._check_fitted("frequencies_")
        return {
            "frequencies_": [
                {str(k): float(v) for k, v in table.items()}
                for table in self.frequencies_
            ]
        }

    @classmethod
    def from_state(cls, state: dict) -> "FrequencyEncoder":
        encoder = cls()
        encoder.frequencies_ = [dict(table) for table in state["frequencies_"]]
        return encoder


@serializable
class TargetEncoder(BaseEstimator, TransformerMixin):
    """Encode each category by the smoothed training mean of a binary target.

    ``smoothing`` pseudo-counts pull rare categories toward the global
    rate, the standard remedy against overfitting high-cardinality columns.
    """

    def __init__(self, smoothing: float = 10.0):
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.smoothing = smoothing

    def fit(self, X, y=None) -> "TargetEncoder":
        if y is None:
            raise ValueError("TargetEncoder requires the training labels at fit")
        y = np.asarray(y, dtype=np.float64).ravel()
        columns = _as_categorical_columns(X)
        for column in columns:
            if len(column) != len(y):
                raise ValueError("label length does not match feature rows")
        self.global_rate_ = float(y.mean())
        self.tables_: List[dict] = []
        for column in columns:
            keys, sums, counts = _key_counts(column, weights=y)
            table = {
                key: (label_sum + self.smoothing * self.global_rate_)
                / (count + self.smoothing)
                for key, label_sum, count in zip(keys, sums, counts)
            }
            self.tables_.append(table)
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("tables_")
        columns = _as_categorical_columns(X)
        if len(columns) != len(self.tables_):
            raise ValueError(
                f"X has {len(columns)} features, encoder was fit on {len(self.tables_)}"
            )
        blocks = []
        for column, table in zip(columns, self.tables_):
            blocks.append(
                _code_lookup(column, table, self.global_rate_).reshape(-1, 1)
            )
        return np.hstack(blocks)

    def feature_names(self, input_names: Optional[Sequence[str]] = None) -> List[str]:
        self._check_fitted("tables_")
        if input_names is None:
            input_names = [f"x{i}" for i in range(len(self.tables_))]
        return [f"{name}:target_rate" for name in input_names]

    def to_state(self) -> dict:
        self._check_fitted("tables_")
        return {
            "params": {"smoothing": self.smoothing},
            "global_rate_": float(self.global_rate_),
            "tables_": [
                {str(k): float(v) for k, v in table.items()} for table in self.tables_
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "TargetEncoder":
        encoder = cls(**state["params"])
        encoder.global_rate_ = float(state["global_rate_"])
        encoder.tables_ = [dict(table) for table in state["tables_"]]
        return encoder


@serializable
class SVDEmbeddingEncoder(BaseEstimator, TransformerMixin):
    """Low-rank dense embedding of the one-hot representation.

    Fits a one-hot encoding on the training split, centers it, and keeps
    the top ``n_components`` right singular vectors; transform projects any
    split into that space. This is the simplest "embedding of the input
    data" the paper's future-work section sketches.
    """

    def __init__(self, n_components: int = 8):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components

    def fit(self, X, y=None) -> "SVDEmbeddingEncoder":
        self._onehot = OneHotEncoder().fit(X)
        encoded = self._onehot.transform(X)
        self.mean_ = encoded.mean(axis=0)
        centered = encoded - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        k = min(self.n_components, vt.shape[0])
        self.components_ = vt[:k]
        self.singular_values_ = singular_values[:k]
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("components_")
        encoded = self._onehot.transform(X)
        return (encoded - self.mean_) @ self.components_.T

    def feature_names(self, input_names: Optional[Sequence[str]] = None) -> List[str]:
        self._check_fitted("components_")
        return [f"embedding_{i}" for i in range(self.components_.shape[0])]

    def to_state(self) -> dict:
        self._check_fitted("components_")
        return {
            "params": {"n_components": self.n_components},
            "onehot": self._onehot.to_state(),
            "mean_": self.mean_,
            "components_": self.components_,
            "singular_values_": self.singular_values_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "SVDEmbeddingEncoder":
        encoder = cls(**state["params"])
        encoder._onehot = OneHotEncoder.from_state(state["onehot"])
        encoder.mean_ = np.asarray(state["mean_"], dtype=np.float64)
        encoder.components_ = np.asarray(state["components_"], dtype=np.float64)
        encoder.singular_values_ = np.asarray(
            state["singular_values_"], dtype=np.float64
        )
        return encoder

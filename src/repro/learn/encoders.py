"""Alternative categorical encoders (the paper's §7 "embeddings" extension).

All encoders share the :class:`~repro.learn.preprocessing.OneHotEncoder`
interface — ``fit`` on a list of per-feature object arrays from the
*training* split, ``transform`` on any split — so the lifecycle's
featurizer can swap them in without changes:

* :class:`FrequencyEncoder` — each category becomes its training-split
  relative frequency (one dimension per feature);
* :class:`TargetEncoder` — each category becomes the smoothed training
  mean of the binary label (needs ``y`` at fit; leak-free by construction
  because statistics come from the training split only);
* :class:`SVDEmbeddingEncoder` — dense low-rank embedding of the one-hot
  matrix via truncated SVD fit on the training split.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .base import BaseEstimator, TransformerMixin
from .preprocessing import OneHotEncoder, _as_object_columns


class FrequencyEncoder(BaseEstimator, TransformerMixin):
    """Encode each categorical value by its training-set frequency."""

    def fit(self, X, y=None) -> "FrequencyEncoder":
        columns = _as_object_columns(X)
        self.frequencies_: List[dict] = []
        for values in columns:
            keys = [self._key(v) for v in values]
            total = len(keys)
            counts: dict = {}
            for key in keys:
                counts[key] = counts.get(key, 0) + 1
            self.frequencies_.append({k: c / total for k, c in counts.items()})
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("frequencies_")
        columns = _as_object_columns(X)
        if len(columns) != len(self.frequencies_):
            raise ValueError(
                f"X has {len(columns)} features, encoder was fit on "
                f"{len(self.frequencies_)}"
            )
        blocks = []
        for values, table in zip(columns, self.frequencies_):
            # unseen categories read as frequency 0 (they were never observed)
            blocks.append(
                np.asarray(
                    [table.get(self._key(v), 0.0) for v in values], dtype=np.float64
                ).reshape(-1, 1)
            )
        return np.hstack(blocks)

    def feature_names(self, input_names: Optional[Sequence[str]] = None) -> List[str]:
        self._check_fitted("frequencies_")
        if input_names is None:
            input_names = [f"x{i}" for i in range(len(self.frequencies_))]
        return [f"{name}:frequency" for name in input_names]

    @staticmethod
    def _key(value) -> str:
        if value is None or (isinstance(value, float) and np.isnan(value)):
            return "<missing>"
        return str(value)


class TargetEncoder(BaseEstimator, TransformerMixin):
    """Encode each category by the smoothed training mean of a binary target.

    ``smoothing`` pseudo-counts pull rare categories toward the global
    rate, the standard remedy against overfitting high-cardinality columns.
    """

    def __init__(self, smoothing: float = 10.0):
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.smoothing = smoothing

    def fit(self, X, y=None) -> "TargetEncoder":
        if y is None:
            raise ValueError("TargetEncoder requires the training labels at fit")
        y = np.asarray(y, dtype=np.float64).ravel()
        columns = _as_object_columns(X)
        for values in columns:
            if len(values) != len(y):
                raise ValueError("label length does not match feature rows")
        self.global_rate_ = float(y.mean())
        self.tables_: List[dict] = []
        for values in columns:
            sums: dict = {}
            counts: dict = {}
            for value, label in zip(values, y):
                key = FrequencyEncoder._key(value)
                sums[key] = sums.get(key, 0.0) + label
                counts[key] = counts.get(key, 0) + 1
            table = {
                key: (sums[key] + self.smoothing * self.global_rate_)
                / (counts[key] + self.smoothing)
                for key in sums
            }
            self.tables_.append(table)
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("tables_")
        columns = _as_object_columns(X)
        if len(columns) != len(self.tables_):
            raise ValueError(
                f"X has {len(columns)} features, encoder was fit on {len(self.tables_)}"
            )
        blocks = []
        for values, table in zip(columns, self.tables_):
            blocks.append(
                np.asarray(
                    [
                        table.get(FrequencyEncoder._key(v), self.global_rate_)
                        for v in values
                    ],
                    dtype=np.float64,
                ).reshape(-1, 1)
            )
        return np.hstack(blocks)

    def feature_names(self, input_names: Optional[Sequence[str]] = None) -> List[str]:
        self._check_fitted("tables_")
        if input_names is None:
            input_names = [f"x{i}" for i in range(len(self.tables_))]
        return [f"{name}:target_rate" for name in input_names]


class SVDEmbeddingEncoder(BaseEstimator, TransformerMixin):
    """Low-rank dense embedding of the one-hot representation.

    Fits a one-hot encoding on the training split, centers it, and keeps
    the top ``n_components`` right singular vectors; transform projects any
    split into that space. This is the simplest "embedding of the input
    data" the paper's future-work section sketches.
    """

    def __init__(self, n_components: int = 8):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components

    def fit(self, X, y=None) -> "SVDEmbeddingEncoder":
        self._onehot = OneHotEncoder().fit(X)
        encoded = self._onehot.transform(X)
        self.mean_ = encoded.mean(axis=0)
        centered = encoded - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        k = min(self.n_components, vt.shape[0])
        self.components_ = vt[:k]
        self.singular_values_ = singular_values[:k]
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("components_")
        encoded = self._onehot.transform(X)
        return (encoded - self.mean_) @ self.components_.T

    def feature_names(self, input_names: Optional[Sequence[str]] = None) -> List[str]:
        self._check_fitted("components_")
        return [f"embedding_{i}" for i in range(self.components_.shape[0])]

"""Accuracy-oriented classification metrics.

These are the "company standard accuracy metrics" side of the paper; the
fairness-specific metrics live in :mod:`repro.fairness.metrics` and build on
the same confusion-matrix primitives.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def _weights(sample_weight, n: int) -> np.ndarray:
    if sample_weight is None:
        return np.ones(n, dtype=np.float64)
    sample_weight = np.asarray(sample_weight, dtype=np.float64)
    if len(sample_weight) != n:
        raise ValueError("sample_weight length mismatch")
    return sample_weight


def accuracy_score(y_true, y_pred, sample_weight=None) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    w = _weights(sample_weight, len(y_true))
    if w.sum() == 0:
        return float("nan")
    return float(np.average((y_true == y_pred).astype(np.float64), weights=w))


def confusion_matrix(
    y_true, y_pred, labels: Optional[Sequence] = None, sample_weight=None
) -> np.ndarray:
    """Weighted confusion matrix; rows = true label, columns = prediction.

    Runs on the evaluation path of every grid run, so the accumulation is
    vectorized: labels are mapped to codes with a searchsorted lookup and
    the cell sums come from one flat 2-D bincount. Falls back to the
    row-at-a-time dict accumulation only for label sets numpy cannot sort
    or that contain duplicates.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = list(labels)
    w = _weights(sample_weight, len(y_true))
    if not labels:
        return _confusion_matrix_loop(y_true, y_pred, labels, w)
    try:
        label_array = np.asarray(labels)
        if "O" in (label_array.dtype.kind, y_true.dtype.kind, y_pred.dtype.kind):
            # object arrays sort/search element-by-element in Python —
            # the dict accumulation is faster and has the exact semantics
            raise TypeError
        sorter = np.argsort(label_array, kind="mergesort")
        ordered = label_array[sorter]
        if (ordered[:-1] == ordered[1:]).any():
            raise TypeError  # duplicate labels: defer to the dict semantics
        t_codes, t_ok = _label_codes(ordered, sorter, y_true)
        p_codes, p_ok = _label_codes(ordered, sorter, y_pred)
    except TypeError:
        return _confusion_matrix_loop(y_true, y_pred, labels, w)
    bad = ~(t_ok & p_ok)
    if bad.any():
        first = int(np.argmax(bad))
        raise ValueError(
            f"label outside provided label set: {y_true[first]!r}/{y_pred[first]!r}"
        )
    n_labels = len(labels)
    # bincount accumulates in input order — the same order (and therefore
    # the same floating-point sums) as the row-at-a-time loop
    return np.bincount(
        t_codes * n_labels + p_codes, weights=w, minlength=n_labels * n_labels
    ).reshape(n_labels, n_labels)


def _label_codes(ordered, sorter, values):
    """Positions of ``values`` in the original label list, via the sorted
    view; second return marks values actually present."""
    positions = np.searchsorted(ordered, values)
    positions = np.clip(positions, 0, len(ordered) - 1)
    ok = ordered[positions] == values
    return sorter[positions], ok


def _confusion_matrix_loop(y_true, y_pred, labels, w):
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.float64)
    for t, p, weight in zip(y_true, y_pred, w):
        if t not in index or p not in index:
            raise ValueError(f"label outside provided label set: {t!r}/{p!r}")
        matrix[index[t], index[p]] += weight
    return matrix


def binary_counts(y_true, y_pred, positive_label, sample_weight=None) -> dict:
    """Weighted TP/FP/TN/FN for a designated positive label."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    w = _weights(sample_weight, len(y_true))
    true_pos = y_true == positive_label
    pred_pos = y_pred == positive_label
    return {
        "TP": float(w[true_pos & pred_pos].sum()),
        "FP": float(w[~true_pos & pred_pos].sum()),
        "TN": float(w[~true_pos & ~pred_pos].sum()),
        "FN": float(w[true_pos & ~pred_pos].sum()),
    }


def _safe_divide(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator > 0 else float("nan")


def precision_score(y_true, y_pred, positive_label=1, sample_weight=None) -> float:
    c = binary_counts(y_true, y_pred, positive_label, sample_weight)
    return _safe_divide(c["TP"], c["TP"] + c["FP"])


def recall_score(y_true, y_pred, positive_label=1, sample_weight=None) -> float:
    c = binary_counts(y_true, y_pred, positive_label, sample_weight)
    return _safe_divide(c["TP"], c["TP"] + c["FN"])


def f1_score(y_true, y_pred, positive_label=1, sample_weight=None) -> float:
    p = precision_score(y_true, y_pred, positive_label, sample_weight)
    r = recall_score(y_true, y_pred, positive_label, sample_weight)
    if np.isnan(p) or np.isnan(r) or (p + r) == 0:
        return float("nan")
    return 2.0 * p * r / (p + r)


def balanced_accuracy_score(y_true, y_pred, positive_label=1, sample_weight=None) -> float:
    c = binary_counts(y_true, y_pred, positive_label, sample_weight)
    tpr = _safe_divide(c["TP"], c["TP"] + c["FN"])
    tnr = _safe_divide(c["TN"], c["TN"] + c["FP"])
    return 0.5 * (tpr + tnr)


def roc_auc_score(y_true, scores, positive_label=1, sample_weight=None) -> float:
    """Area under the ROC curve via the weighted U statistic (ties averaged)."""
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    w = _weights(sample_weight, len(y_true))
    positive = y_true == positive_label
    if w[positive].sum() == 0 or w[~positive].sum() == 0:
        return float("nan")
    order = np.argsort(scores, kind="mergesort")
    return _weighted_auc(scores[order], positive[order], w[order])


def _weighted_auc(sorted_scores, sorted_pos, sorted_w) -> float:
    """U-statistic AUC on score-sorted data with average tie credit."""
    w_pos_total = sorted_w[sorted_pos].sum()
    w_neg_total = sorted_w[~sorted_pos].sum()
    u = 0.0
    neg_below = 0.0
    i = 0
    n = len(sorted_scores)
    while i < n:
        j = i
        while j + 1 < n and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        block = slice(i, j + 1)
        block_pos_w = sorted_w[block][sorted_pos[block]].sum()
        block_neg_w = sorted_w[block][~sorted_pos[block]].sum()
        u += block_pos_w * (neg_below + block_neg_w / 2.0)
        neg_below += block_neg_w
        i = j + 1
    return float(u / (w_pos_total * w_neg_total))


def log_loss(y_true, proba, positive_label=1, sample_weight=None, eps=1e-15) -> float:
    """Weighted binary cross-entropy on positive-class probabilities."""
    y_true = np.asarray(y_true)
    proba = np.asarray(proba, dtype=np.float64)
    if proba.ndim == 2:
        proba = proba[:, 1]
    proba = np.clip(proba, eps, 1.0 - eps)
    w = _weights(sample_weight, len(y_true))
    t = (y_true == positive_label).astype(np.float64)
    losses = -(t * np.log(proba) + (1.0 - t) * np.log(1.0 - proba))
    return float(np.average(losses, weights=w))


def brier_score(y_true, proba, positive_label=1, sample_weight=None) -> float:
    y_true = np.asarray(y_true)
    proba = np.asarray(proba, dtype=np.float64)
    if proba.ndim == 2:
        proba = proba[:, 1]
    w = _weights(sample_weight, len(y_true))
    t = (y_true == positive_label).astype(np.float64)
    return float(np.average((proba - t) ** 2, weights=w))

"""CART decision-tree classifier.

The paper's second baseline. Decision trees are invariant to monotone
feature rescaling, which is exactly the property Figure 3(b) demonstrates;
our implementation preserves it because split quality depends only on the
ordering of feature values.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_labels,
    check_matrix,
    check_sample_weight,
)

_CRITERIA = ("gini", "entropy")


class _Node:
    """Internal tree node; leaves carry a class distribution."""

    __slots__ = ("feature", "threshold", "left", "right", "distribution", "n_samples")

    def __init__(self, distribution, n_samples):
        self.feature = None
        self.threshold = None
        self.left = None
        self.right = None
        self.distribution = distribution
        self.n_samples = n_samples

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """CART with gini/entropy impurity and sample-weight support.

    Parameters mirror the grid the paper tunes: ``criterion`` (2 choices),
    ``max_depth``, ``min_samples_leaf``, ``min_samples_split``.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        random_state: Optional[int] = None,
    ):
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.random_state = random_state

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        if self.criterion not in _CRITERIA:
            raise ValueError(
                f"criterion must be one of {_CRITERIA}, got {self.criterion!r}"
            )
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        X = check_matrix(X)
        y = check_labels(y, X.shape[0])
        sample_weight = check_sample_weight(sample_weight, X.shape[0])
        self.classes_, y_codes = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        onehot = np.zeros((X.shape[0], len(self.classes_)))
        onehot[np.arange(X.shape[0]), y_codes] = sample_weight
        self.tree_ = self._build(
            X, onehot, np.arange(X.shape[0]), depth=0
        )
        self.depth_ = _tree_depth(self.tree_)
        self.n_leaves_ = _count_leaves(self.tree_)
        return self

    def _build(self, X, onehot, indices, depth) -> _Node:
        class_weights = onehot[indices].sum(axis=0)
        node = _Node(distribution=class_weights, n_samples=len(indices))
        if (
            len(indices) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.count_nonzero(class_weights) <= 1
        ):
            return node
        split = self._best_split(X, onehot, indices)
        if split is None:
            return node
        feature, threshold, gain = split
        if gain < self.min_impurity_decrease:
            return node
        go_left = X[indices, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X, onehot, indices[go_left], depth + 1)
        node.right = self._build(X, onehot, indices[~go_left], depth + 1)
        return node

    def _best_split(self, X, onehot, indices):
        if onehot.shape[1] == 2:
            return self._best_split_binary(X, onehot, indices)
        return self._best_split_general(X, onehot, indices)

    def _best_split_binary(self, X, onehot, indices):
        """Vectorized split search over all features at once (binary labels).

        This is the hot path for the lifecycle's grid searches: one batch of
        matrix operations per node instead of a Python loop over features.
        """
        node = X[indices]
        n, d = node.shape
        weights = onehot[indices].sum(axis=1)
        positives = onehot[indices][:, 1]
        node_weight = weights.sum()
        if node_weight <= 0:
            return None
        node_positive = positives.sum()
        node_impurity = self._impurity_binary(
            np.asarray([node_positive]), np.asarray([node_weight])
        )[0]

        order = np.argsort(node, axis=0, kind="mergesort")
        sorted_values = np.take_along_axis(node, order, axis=0)
        cum_weight = np.cumsum(weights[order], axis=0)
        cum_positive = np.cumsum(positives[order], axis=0)

        # split after row i: left = rows 0..i
        candidate = sorted_values[:-1] < sorted_values[1:]
        positions = np.arange(1, n)
        min_leaf = self.min_samples_leaf
        size_ok = (positions >= min_leaf) & (n - positions >= min_leaf)
        candidate &= size_ok[:, None]
        if not candidate.any():
            return None

        left_w = cum_weight[:-1]
        left_p = cum_positive[:-1]
        right_w = node_weight - left_w
        right_p = node_positive - left_p
        valid = candidate & (left_w > 0) & (right_w > 0)
        if not valid.any():
            return None
        left_impurity = self._impurity_binary(left_p, left_w)
        right_impurity = self._impurity_binary(right_p, right_w)
        children = (left_w * left_impurity + right_w * right_impurity) / node_weight
        gains = np.where(valid, node_impurity - children, -np.inf)
        flat = int(np.argmax(gains))
        row, feature = np.unravel_index(flat, gains.shape)
        if not np.isfinite(gains[row, feature]):
            return None
        threshold = 0.5 * (
            sorted_values[row, feature] + sorted_values[row + 1, feature]
        )
        return int(feature), float(threshold), float(gains[row, feature])

    def _impurity_binary(self, positive_weight, total_weight):
        safe = np.where(total_weight > 0, total_weight, 1.0)
        p = positive_weight / safe
        if self.criterion == "gini":
            return 2.0 * p * (1.0 - p)
        with np.errstate(divide="ignore", invalid="ignore"):
            entropy = -(
                np.where(p > 0, p * np.log2(p), 0.0)
                + np.where(p < 1, (1.0 - p) * np.log2(1.0 - p), 0.0)
            )
        return entropy

    def _best_split_general(self, X, onehot, indices):
        best = None
        best_gain = -np.inf
        node_counts = onehot[indices].sum(axis=0)
        node_weight = node_counts.sum()
        if node_weight <= 0:
            return None
        node_impurity = self._impurity(node_counts[None, :], node_weight)[0]
        min_leaf = self.min_samples_leaf
        n = len(indices)
        for feature in range(X.shape[1]):
            values = X[indices, feature]
            order = np.argsort(values, kind="mergesort")
            sorted_values = values[order]
            if sorted_values[0] == sorted_values[-1]:
                continue
            sorted_onehot = onehot[indices[order]]
            left_cumulative = np.cumsum(sorted_onehot, axis=0)
            # candidate split after position i (left = 0..i)
            boundaries = np.nonzero(sorted_values[:-1] < sorted_values[1:])[0]
            if boundaries.size == 0:
                continue
            valid = boundaries[
                (boundaries + 1 >= min_leaf) & (n - boundaries - 1 >= min_leaf)
            ]
            if valid.size == 0:
                continue
            left_counts = left_cumulative[valid]
            right_counts = node_counts[None, :] - left_counts
            left_weight = left_counts.sum(axis=1)
            right_weight = right_counts.sum(axis=1)
            ok = (left_weight > 0) & (right_weight > 0)
            if not ok.any():
                continue
            left_impurity = self._impurity(left_counts, left_weight)
            right_impurity = self._impurity(right_counts, right_weight)
            children = (
                left_weight * left_impurity + right_weight * right_impurity
            ) / node_weight
            gains = np.where(ok, node_impurity - children, -np.inf)
            pick = int(np.argmax(gains))
            if gains[pick] > best_gain:
                best_gain = float(gains[pick])
                position = valid[pick]
                threshold = 0.5 * (sorted_values[position] + sorted_values[position + 1])
                best = (feature, float(threshold), best_gain)
        return best

    def _impurity(self, counts: np.ndarray, totals) -> np.ndarray:
        totals = np.asarray(totals, dtype=np.float64).reshape(-1, 1)
        safe = np.where(totals > 0, totals, 1.0)
        p = counts / safe
        if self.criterion == "gini":
            return 1.0 - (p**2).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            logp = np.where(p > 0, np.log2(p), 0.0)
        return -(p * logp).sum(axis=1)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("tree_")
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree was fit on {self.n_features_}"
            )
        out = np.empty((X.shape[0], len(self.classes_)))
        # batch traversal: route index blocks through the tree together
        stack = [(self.tree_, np.arange(X.shape[0]))]
        while stack:
            node, rows = stack.pop()
            if rows.size == 0:
                continue
            if node.is_leaf:
                total = node.distribution.sum()
                leaf = (
                    node.distribution / total
                    if total > 0
                    else np.full(len(self.classes_), 1.0 / len(self.classes_))
                )
                out[rows] = leaf
                continue
            go_left = X[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[go_left]))
            stack.append((node.right, rows[~go_left]))
        return out

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


def _tree_depth(node: _Node) -> int:
    if node.is_leaf:
        return 0
    return 1 + max(_tree_depth(node.left), _tree_depth(node.right))


def _count_leaves(node: _Node) -> int:
    if node.is_leaf:
        return 1
    return _count_leaves(node.left) + _count_leaves(node.right)

"""CART decision-tree classifier.

The paper's second baseline. Decision trees are invariant to monotone
feature rescaling, which is exactly the property Figure 3(b) demonstrates;
our implementation preserves it because split quality depends only on the
ordering of feature values.

Split search runs on one of two interchangeable backends selected by the
``fit(..., presort=...)`` hint:

* the exact presorted backend (:mod:`repro.learn.splitter`): per-feature
  sort order computed once per fit — or supplied by the caller, which
  grid search uses to share one presort per cross-validation fold across
  every tuning candidate — and maintained through the recursion by
  stable partition instead of re-argsorting at every node;
* the histogram backend (:mod:`repro.learn.histogram`): features binned
  once per fit into ≤256 uint8 codes, per-node class-count histograms
  accumulated with ``bincount`` and siblings derived by subtraction, so
  per-node candidate scoring is O(n_bins) per feature instead of O(n).

``presort="auto"`` (the default) picks histogram at or above
:data:`HISTOGRAM_AUTO_THRESHOLD` rows and exact presort below it, so
paper-scale fits stay byte-identical to the seed implementation while
million-row fits get the bounded-work path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import telemetry
from ..serialize import labels_from_state, labels_to_state, serializable
from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_labels,
    check_matrix,
    check_sample_weight,
    clone,
)
from .histogram import HistogramBinning, HistogramSplitter
from .splitter import Presort, PresortSplitter

_CRITERIA = ("gini", "entropy")

#: Row count at which ``presort="auto"`` switches from the exact presort
#: backend to the histogram backend. All four paper datasets (≤33k rows)
#: sit far below it, so default fits on them are unchanged node-for-node.
HISTOGRAM_AUTO_THRESHOLD = 65536


def presort_hint(X):
    """Shareable fit-context hint matching what ``presort="auto"`` picks.

    Cross-validation builds this once per fold and passes it to every
    tuning candidate: a :class:`Presort` below the auto threshold, a
    :class:`HistogramBinning` at or above it — so fold-major grid search
    keeps its shared-preparation win on both backends.
    """
    if X.shape[0] >= HISTOGRAM_AUTO_THRESHOLD:
        return HistogramBinning(X)
    return Presort(X)


class _Node:
    """Internal tree node; leaves carry a class distribution."""

    __slots__ = ("feature", "threshold", "left", "right", "distribution", "n_samples")

    def __init__(self, distribution, n_samples):
        self.feature = None
        self.threshold = None
        self.left = None
        self.right = None
        self.distribution = distribution
        self.n_samples = n_samples

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


@serializable
class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """CART with gini/entropy impurity and sample-weight support.

    Parameters mirror the grid the paper tunes: ``criterion`` (2 choices),
    ``max_depth``, ``min_samples_leaf``, ``min_samples_split``.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        random_state: Optional[int] = None,
    ):
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.random_state = random_state

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(
        self, X, y, sample_weight=None, presort="auto"
    ) -> "DecisionTreeClassifier":
        """Fit the tree; ``presort`` selects/hints the split backend.

        Accepted values:

        * ``"auto"`` (default) or ``None`` — exact presort below
          :data:`HISTOGRAM_AUTO_THRESHOLD` rows, histogram at or above;
        * ``"exact"`` / ``"histogram"`` — force a backend;
        * a :class:`~repro.learn.splitter.Presort` built for this exact
          ``X`` — use the exact backend and skip its once-per-fit
          argsort (the grid-search fold hint); a stale hint degrades to
          a fresh argsort, never a wrong tree;
        * a :class:`~repro.learn.histogram.HistogramBinning` for this
          exact ``X`` — use the histogram backend and skip its
          once-per-fit binning.
        """
        if self.criterion not in _CRITERIA:
            raise ValueError(
                f"criterion must be one of {_CRITERIA}, got {self.criterion!r}"
            )
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        X = check_matrix(X)
        y = check_labels(y, X.shape[0])
        sample_weight = check_sample_weight(sample_weight, X.shape[0])
        self.classes_, y_codes = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        onehot = np.zeros((X.shape[0], len(self.classes_)))
        onehot[np.arange(X.shape[0]), y_codes] = sample_weight
        splitter = self._make_splitter(X, onehot, presort)
        with telemetry.span(
            "learn.tree_fit", backend=self.fit_backend_, rows=int(X.shape[0])
        ):
            self.tree_ = self._grow(X, onehot, splitter)
        self.depth_ = _tree_depth(self.tree_)
        self.n_leaves_ = _count_leaves(self.tree_)
        return self

    def _make_splitter(self, X, onehot, presort):
        """Resolve the ``presort`` hint to a split backend (see ``fit``)."""
        mode, hint = presort, None
        if isinstance(presort, Presort):
            mode, hint = "exact", presort
        elif isinstance(presort, HistogramBinning):
            mode, hint = "histogram", presort
        elif presort is None:
            mode = "auto"
        if mode == "auto":
            mode = (
                "histogram" if X.shape[0] >= HISTOGRAM_AUTO_THRESHOLD else "exact"
            )
        if mode in ("exact", "histogram"):
            # the resolved backend, recorded for benches and manifests
            self.fit_backend_ = mode
            telemetry.counter(f"learn.tree_fit.{mode}").inc()
        if mode == "exact":
            return PresortSplitter(
                X, onehot, self.criterion, self.min_samples_leaf, presort=hint
            )
        if mode == "histogram":
            return HistogramSplitter(
                X, onehot, self.criterion, self.min_samples_leaf, binning=hint
            )
        raise ValueError(
            "presort must be 'auto', 'exact', 'histogram', a Presort, or a "
            f"HistogramBinning, got {presort!r}"
        )

    def _grow(self, X, onehot, splitter) -> _Node:
        """Build the tree with an explicit stack (deep trees can exceed
        the interpreter recursion limit on larger resamples).

        ``splitter`` is either backend; the per-node recursion state
        (``context``) is opaque — the presorted order matrix for the
        exact backend, class-count histograms for the histogram one.
        """
        binary = onehot.shape[1] == 2
        root: Optional[_Node] = None
        stack = [(np.arange(X.shape[0]), splitter.root_context(), 0, None, "")]
        while stack:
            indices, context, depth, parent, side = stack.pop()
            class_weights, sub = splitter.node_distribution(indices)
            node = _Node(distribution=class_weights, n_samples=len(indices))
            if parent is None:
                root = node
            else:
                setattr(parent, side, node)
            if (
                len(indices) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.count_nonzero(class_weights) <= 1
            ):
                continue
            if binary:
                split = splitter.best_split_binary(indices, context, sub, class_weights)
            else:
                split = splitter.best_split_general(indices, context, class_weights)
            if split is None:
                continue
            feature, threshold, gain = split
            if gain < self.min_impurity_decrease:
                continue
            go_left = X[indices, feature] <= threshold
            left_indices = indices[go_left]
            right_indices = indices[~go_left]
            left_context, right_context = splitter.partition(
                context, left_indices, right_indices
            )
            node.feature = feature
            node.threshold = threshold
            stack.append((right_indices, right_context, depth + 1, node, "right"))
            stack.append((left_indices, left_context, depth + 1, node, "left"))
        return root

    def fit_candidates(
        self,
        candidates,
        X,
        y,
        sample_weight=None,
        presort="auto",
    ):
        """Fit one tree per parameter dict, sharing work across the family.

        Grid-search hook: candidates that differ only in ``max_depth``
        share a single deep induction, because a split decision depends
        only on the node's samples — ``max_depth`` merely stops the
        recursion, so a depth-limited tree is exactly the depth-truncation
        of the deeper tree fit with the same remaining parameters (node
        distributions are recorded on internal nodes during the deep fit).
        The deepest member of each family is fit once and the shallower
        members are materialized by truncating copies; every returned
        estimator is node-for-node identical to an individual ``fit``.
        """
        families: list = []  # [(params-minus-depth, [candidate indices])]
        for index, params in enumerate(candidates):
            rest = {k: v for k, v in params.items() if k != "max_depth"}
            for key, members in families:
                if key == rest:
                    members.append(index)
                    break
            else:
                families.append((rest, [index]))

        fitted = [None] * len(candidates)
        for _, members in families:
            depths = [
                candidates[i].get("max_depth", self.max_depth) for i in members
            ]
            deepest = None if any(d is None for d in depths) else max(depths)
            deep_model = clone(self).set_params(**candidates[members[0]])
            deep_model.set_params(max_depth=deepest)
            deep_model.fit(X, y, sample_weight=sample_weight, presort=presort)
            for index, depth in zip(members, depths):
                model = clone(self).set_params(**candidates[index])
                model.classes_ = deep_model.classes_
                model.n_features_ = deep_model.n_features_
                if depth == deepest:
                    model.tree_ = deep_model.tree_
                    model.depth_ = deep_model.depth_
                    model.n_leaves_ = deep_model.n_leaves_
                else:
                    model.tree_ = _truncate(deep_model.tree_, depth)
                    model.depth_ = _tree_depth(model.tree_)
                    model.n_leaves_ = _count_leaves(model.tree_)
                fitted[index] = model
        return fitted

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("tree_")
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree was fit on {self.n_features_}"
            )
        out = np.empty((X.shape[0], len(self.classes_)))
        # batch traversal: route index blocks through the tree together
        stack = [(self.tree_, np.arange(X.shape[0]))]
        while stack:
            node, rows = stack.pop()
            if rows.size == 0:
                continue
            if node.is_leaf:
                total = node.distribution.sum()
                leaf = (
                    node.distribution / total
                    if total > 0
                    else np.full(len(self.classes_), 1.0 / len(self.classes_))
                )
                out[rows] = leaf
                continue
            go_left = X[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[go_left]))
            stack.append((node.right, rows[~go_left]))
        return out

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------
    # serialization: the node graph flattened into parallel arrays
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        self._check_fitted("tree_")
        order: list = []
        stack = [self.tree_]
        while stack:
            node = stack.pop()
            order.append(node)
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)
        position = {id(node): i for i, node in enumerate(order)}
        n = len(order)
        feature = np.full(n, -1, dtype=np.int64)
        threshold = np.full(n, np.nan, dtype=np.float64)
        left = np.full(n, -1, dtype=np.int64)
        right = np.full(n, -1, dtype=np.int64)
        n_samples = np.zeros(n, dtype=np.int64)
        distribution = np.zeros((n, len(self.classes_)), dtype=np.float64)
        for i, node in enumerate(order):
            n_samples[i] = node.n_samples
            distribution[i] = node.distribution
            if not node.is_leaf:
                feature[i] = node.feature
                threshold[i] = node.threshold
                left[i] = position[id(node.left)]
                right[i] = position[id(node.right)]
        return {
            "params": self.get_params(),
            "classes_": labels_to_state(self.classes_),
            "n_features_": int(self.n_features_),
            "feature": feature,
            "threshold": threshold,
            "left": left,
            "right": right,
            "n_samples": n_samples,
            "distribution": distribution,
        }

    @classmethod
    def from_state(cls, state: dict) -> "DecisionTreeClassifier":
        model = cls(**state["params"])
        model.classes_ = labels_from_state(state["classes_"])
        model.n_features_ = int(state["n_features_"])
        feature = np.asarray(state["feature"], dtype=np.int64)
        threshold = np.asarray(state["threshold"], dtype=np.float64)
        left = np.asarray(state["left"], dtype=np.int64)
        right = np.asarray(state["right"], dtype=np.int64)
        n_samples = np.asarray(state["n_samples"], dtype=np.int64)
        distribution = np.asarray(state["distribution"], dtype=np.float64)
        nodes = [
            _Node(distribution=distribution[i], n_samples=int(n_samples[i]))
            for i in range(len(feature))
        ]
        for i, node in enumerate(nodes):
            if feature[i] >= 0:
                node.feature = int(feature[i])
                node.threshold = float(threshold[i])
                node.left = nodes[left[i]]
                node.right = nodes[right[i]]
        model.tree_ = nodes[0]
        model.depth_ = _tree_depth(model.tree_)
        model.n_leaves_ = _count_leaves(model.tree_)
        return model


def _truncate(node: _Node, max_depth: int) -> _Node:
    """Copy of the tree cut at ``max_depth``; cut nodes become leaves.

    Internal nodes already carry their class distribution, so the
    truncated copy is exactly the tree a depth-limited fit would build.
    """
    root = _Node(node.distribution, node.n_samples)
    stack = [(node, root, 0)]
    while stack:
        source, copy, depth = stack.pop()
        if source.is_leaf or depth >= max_depth:
            continue
        copy.feature = source.feature
        copy.threshold = source.threshold
        copy.left = _Node(source.left.distribution, source.left.n_samples)
        copy.right = _Node(source.right.distribution, source.right.n_samples)
        stack.append((source.left, copy.left, depth + 1))
        stack.append((source.right, copy.right, depth + 1))
    return root


def _tree_depth(node: _Node) -> int:
    """Depth via explicit stack — safe for trees deeper than the
    interpreter recursion limit."""
    depth = 0
    stack = [(node, 0)]
    while stack:
        current, level = stack.pop()
        if current.is_leaf:
            if level > depth:
                depth = level
        else:
            stack.append((current.left, level + 1))
            stack.append((current.right, level + 1))
    return depth


def _count_leaves(node: _Node) -> int:
    """Leaf count via explicit stack (see :func:`_tree_depth`)."""
    leaves = 0
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            leaves += 1
        else:
            stack.append(current.left)
            stack.append(current.right)
    return leaves

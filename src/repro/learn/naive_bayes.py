"""Gaussian naive Bayes — an additional weighted baseline classifier."""

from __future__ import annotations

import numpy as np

from ..serialize import labels_from_state, labels_to_state, serializable
from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_labels,
    check_matrix,
    check_sample_weight,
)


@serializable
class GaussianNB(BaseEstimator, ClassifierMixin):
    """Naive Bayes with per-class Gaussian feature likelihoods.

    Supports sample weights, so it composes with the reweighing intervention
    like any other FairPrep learner.
    """

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing

    def fit(self, X, y, sample_weight=None) -> "GaussianNB":
        X = check_matrix(X)
        y = check_labels(y, X.shape[0])
        sample_weight = check_sample_weight(sample_weight, X.shape[0])
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes to fit a classifier")
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_prior_ = np.zeros(n_classes)
        global_variance = X.var(axis=0).max()
        epsilon = self.var_smoothing * max(global_variance, 1e-12)
        total_weight = sample_weight.sum()
        for k, klass in enumerate(self.classes_):
            mask = y == klass
            w = sample_weight[mask]
            xk = X[mask]
            wsum = w.sum()
            if wsum == 0:
                raise ValueError(f"class {klass!r} has zero total sample weight")
            mean = np.average(xk, axis=0, weights=w)
            variance = np.average((xk - mean) ** 2, axis=0, weights=w)
            self.theta_[k] = mean
            self.var_[k] = variance + epsilon
            self.class_prior_[k] = wsum / total_weight
        return self

    def _joint_log_likelihood(self, X) -> np.ndarray:
        self._check_fitted("theta_", "var_", "class_prior_")
        X = check_matrix(X)
        if X.shape[1] != self.theta_.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fit on {self.theta_.shape[1]}"
            )
        jll = np.empty((X.shape[0], len(self.classes_)))
        for k in range(len(self.classes_)):
            diff = X - self.theta_[k]
            log_like = -0.5 * (
                np.log(2.0 * np.pi * self.var_[k]) + diff**2 / self.var_[k]
            ).sum(axis=1)
            jll[:, k] = np.log(self.class_prior_[k] + 1e-300) + log_like
        return jll

    def predict_proba(self, X) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        proba = np.exp(jll)
        return proba / proba.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        return self.classes_[np.argmax(jll, axis=1)]

    def to_state(self) -> dict:
        self._check_fitted("theta_", "var_", "class_prior_")
        return {
            "params": {"var_smoothing": self.var_smoothing},
            "classes_": labels_to_state(self.classes_),
            "theta_": self.theta_,
            "var_": self.var_,
            "class_prior_": self.class_prior_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "GaussianNB":
        model = cls(**state["params"])
        model.classes_ = labels_from_state(state["classes_"])
        model.theta_ = np.asarray(state["theta_"], dtype=np.float64)
        model.var_ = np.asarray(state["var_"], dtype=np.float64)
        model.class_prior_ = np.asarray(state["class_prior_"], dtype=np.float64)
        return model

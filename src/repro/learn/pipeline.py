"""Estimator pipeline with ``step__param`` routing for grid search."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .base import BaseEstimator, clone


class Pipeline(BaseEstimator):
    """Chain of (name, transformer) steps ending in an estimator.

    Transformers are fit in sequence on the training data; downstream data
    flows through the already-fitted transformers — preserving the isolation
    property when the pipeline is applied to validation/test splits.
    """

    def __init__(self, steps: List[Tuple[str, BaseEstimator]]):
        if not steps:
            raise ValueError("pipeline needs at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate step names: {names}")
        for name in names:
            if "__" in name:
                raise ValueError(f"step name {name!r} must not contain '__'")
        self.steps = steps

    # -- parameter routing ------------------------------------------------
    def get_params(self):
        params = {"steps": self.steps}
        for name, step in self.steps:
            for key, value in step.get_params().items():
                params[f"{name}__{key}"] = value
        return params

    def set_params(self, **params) -> "Pipeline":
        step_map = dict(self.steps)
        for key, value in params.items():
            if key == "steps":
                self.steps = value
                continue
            if "__" not in key:
                raise ValueError(
                    f"pipeline parameters must be 'step__param', got {key!r}"
                )
            step_name, _, param = key.partition("__")
            if step_name not in step_map:
                raise ValueError(
                    f"unknown pipeline step {step_name!r}; steps: {list(step_map)}"
                )
            step_map[step_name].set_params(**{param: value})
        return self

    def _clone(self) -> "Pipeline":
        return Pipeline([(name, clone(step)) for name, step in self.steps])

    # -- fitting / prediction ---------------------------------------------
    @property
    def _final(self) -> BaseEstimator:
        return self.steps[-1][1]

    def fit(self, X, y=None, sample_weight=None) -> "Pipeline":
        data = X
        for _, transformer in self.steps[:-1]:
            data = transformer.fit_transform(data, y)
        if sample_weight is not None:
            self._final.fit(data, y, sample_weight=sample_weight)
        else:
            self._final.fit(data, y)
        return self

    def _transform_upstream(self, X):
        data = X
        for _, transformer in self.steps[:-1]:
            data = transformer.transform(data)
        return data

    def predict(self, X) -> np.ndarray:
        return self._final.predict(self._transform_upstream(X))

    def predict_proba(self, X) -> np.ndarray:
        return self._final.predict_proba(self._transform_upstream(X))

    def decision_function(self, X) -> np.ndarray:
        return self._final.decision_function(self._transform_upstream(X))

    def transform(self, X) -> np.ndarray:
        data = X
        for _, step in self.steps:
            data = step.transform(data)
        return data

    def score(self, X, y, sample_weight=None) -> float:
        return self._final.score(self._transform_upstream(X), y, sample_weight)

    @property
    def classes_(self):
        return self._final.classes_


def make_pipeline(*estimators: BaseEstimator) -> Pipeline:
    """Pipeline with auto-generated step names (lowercased class names)."""
    names = []
    for estimator in estimators:
        base = type(estimator).__name__.lower()
        name = base
        suffix = 1
        while name in names:
            suffix += 1
            name = f"{base}{suffix}"
        names.append(name)
    return Pipeline(list(zip(names, estimators)))

"""Seeded data splitting, cross-validation and grid search.

These components implement the best practices the paper enforces
(Sections 2.1, 2.2 and 2.5):

* hyperparameters are selected by k-fold cross-validation on *training*
  data, never on the held-out test set;
* every splitter takes an explicit random seed so that evaluation runs are
  reproducible end to end.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..parallel import run_groups, split_for_balance
from .base import BaseEstimator, clone, supports_fit_param
from .metrics import accuracy_score
from .tree import presort_hint


class KFold:
    """Standard k-fold splitter with optional seeded shuffling."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: Optional[int] = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            indices = rng.permutation(n_samples)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_idx, test_idx


class StratifiedKFold:
    """K-fold that preserves per-class proportions in each fold."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: Optional[int] = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, y) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        n_samples = len(y)
        rng = np.random.default_rng(self.random_state)
        fold_of = np.empty(n_samples, dtype=np.int64)
        for klass in np.unique(y):
            members = np.nonzero(y == klass)[0]
            if self.shuffle:
                members = rng.permutation(members)
            if len(members) < self.n_splits:
                raise ValueError(
                    f"class {klass!r} has {len(members)} members, fewer than "
                    f"{self.n_splits} folds"
                )
            fold_of[members] = np.arange(len(members)) % self.n_splits
        indices = np.arange(n_samples)
        for i in range(self.n_splits):
            test_idx = indices[fold_of == i]
            train_idx = indices[fold_of != i]
            yield train_idx, test_idx


def train_test_split(n_samples: int, test_fraction: float, random_state: int):
    """Seeded 2-way index split; returns (train_idx, test_idx)."""
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(random_state)
    order = rng.permutation(n_samples)
    n_test = int(round(test_fraction * n_samples))
    return order[n_test:], order[:n_test]


class ParameterGrid:
    """Cartesian product over a ``{name: [values]}`` grid, in stable order."""

    def __init__(self, grid: Dict[str, Sequence]):
        if not grid:
            raise ValueError("parameter grid must not be empty")
        for name, values in grid.items():
            if not isinstance(values, (list, tuple)):
                raise TypeError(f"grid entry {name!r} must be a list or tuple")
            if len(values) == 0:
                raise ValueError(f"grid entry {name!r} is empty")
        self.grid = grid

    def __iter__(self) -> Iterator[Dict]:
        names = sorted(self.grid)
        for combo in itertools.product(*(self.grid[n] for n in names)):
            yield dict(zip(names, combo))

    def __len__(self) -> int:
        total = 1
        for values in self.grid.values():
            total *= len(values)
        return total


class _SearchContext:
    """Everything a fold worker needs, published once (fork-inherited)."""

    __slots__ = ("estimator", "candidates", "folds", "X", "y", "sample_weight", "score_fn")

    def __init__(self, estimator, candidates, folds, X, y, sample_weight, score_fn):
        self.estimator = estimator
        self.candidates = candidates
        self.folds = folds
        self.X = X
        self.y = y
        self.sample_weight = sample_weight
        self.score_fn = score_fn


def _score_fold_chunk(context: _SearchContext, task) -> List[float]:
    """Fit and score a chunk of candidates on one fold.

    This is the fold-major hot path: the fold's training matrix is sliced
    once, its presort is computed once (when the estimator accepts the
    ``presort`` fit-context hint), and both are shared by every candidate
    in the chunk. Estimators exposing ``fit_candidates`` additionally
    share induction work across the whole parameter family.
    """
    fold_index, candidate_ids = task
    train_idx, valid_idx = context.folds[fold_index]
    X_train = context.X[train_idx]
    y_train = context.y[train_idx]
    X_valid = context.X[valid_idx]
    y_valid = context.y[valid_idx]
    weight = context.sample_weight
    w_train = None if weight is None else weight[train_idx]
    template = context.estimator
    hints = {}
    if supports_fit_param(template, "presort"):
        hints["presort"] = presort_hint(X_train)
    params_list = [context.candidates[i] for i in candidate_ids]
    if hasattr(type(template), "fit_candidates"):
        models = template.fit_candidates(
            params_list, X_train, y_train, sample_weight=w_train, **hints
        )
    else:
        models = []
        for params in params_list:
            model = clone(template).set_params(**params)
            fit_kwargs = dict(hints)
            if w_train is not None:
                fit_kwargs["sample_weight"] = w_train
            model.fit(X_train, y_train, **fit_kwargs)
            models.append(model)
    return [context.score_fn(model, X_valid, y_valid) for model in models]


class GridSearchCV(BaseEstimator):
    """Exhaustive hyperparameter search with k-fold cross-validation.

    The search only ever sees the data passed to :meth:`fit` — in the
    FairPrep lifecycle that is the training split, which is what makes
    hyperparameter selection leak-free. After the search, the best
    configuration is refit on the full training data.

    The search loop is fold-major: each fold's training matrix is sliced
    (and, for estimators that accept the ``presort`` fit-context hint,
    presorted) exactly once and shared across every candidate, instead of
    being recomputed candidates × folds times. Scores are identical to
    the candidate-major loop because every fit is independent.

    Parameters
    ----------
    estimator:
        Template estimator (cloned per candidate and fold).
    param_grid:
        ``{param: [values]}``; nested pipeline params use ``step__param``.
    cv:
        Fold count for :class:`KFold`.
    scoring:
        ``callable(estimator, X, y) -> float``; defaults to accuracy.
    random_state:
        Seeds the fold shuffling (propagated, per Section 2.5).
    n_jobs:
        Fan candidate×fold chunks out over that many forked worker
        processes (``None``/1 = in-process). Results are identical to the
        serial search.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: Dict[str, Sequence],
        cv: int = 5,
        scoring: Optional[Callable] = None,
        random_state: Optional[int] = None,
        refit: bool = True,
        n_jobs: Optional[int] = None,
    ):
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scoring = scoring
        self.random_state = random_state
        self.refit = refit
        self.n_jobs = n_jobs

    def fit(self, X, y, sample_weight=None) -> "GridSearchCV":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        candidates = list(ParameterGrid(self.param_grid))
        folds = list(
            KFold(self.cv, shuffle=True, random_state=self.random_state).split(len(y))
        )
        score_fn = self.scoring or _accuracy_scorer
        weight = None if sample_weight is None else np.asarray(sample_weight)
        context = _SearchContext(
            self.estimator, candidates, folds, X, y, weight, score_fn
        )
        score_table = np.empty((len(candidates), len(folds)), dtype=np.float64)

        tasks = [(fold, list(range(len(candidates)))) for fold in range(len(folds))]
        jobs = 1 if self.n_jobs is None else max(1, int(self.n_jobs))
        if jobs > 1 and len(tasks) < jobs:
            # fewer folds than workers: split candidate chunks so every
            # worker gets something (each chunk re-presorts its fold,
            # which never changes the scores)
            tasks = [
                (fold, chunk)
                for fold, ids in tasks
                for chunk in split_for_balance([ids], (jobs + len(folds) - 1) // len(folds))
            ]

        def on_done(index, task, scores):
            fold_index, candidate_ids = task
            for candidate, score in zip(candidate_ids, scores):
                score_table[candidate, fold_index] = score

        run_groups(context, _score_fold_chunk, tasks, jobs, on_done)

        results: List[Dict] = []
        for index, params in enumerate(candidates):
            fold_scores = score_table[index]
            results.append(
                {
                    "params": params,
                    "mean_score": float(np.nanmean(fold_scores)),
                    "std_score": float(np.nanstd(fold_scores)),
                    "fold_scores": fold_scores.tolist(),
                }
            )
        self.cv_results_ = results
        best = max(
            range(len(results)),
            key=lambda i: (
                -np.inf
                if np.isnan(results[i]["mean_score"])
                else results[i]["mean_score"]
            ),
        )
        self.best_index_ = best
        self.best_params_ = results[best]["params"]
        self.best_score_ = results[best]["mean_score"]
        if self.refit:
            self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
            fit_kwargs = {}
            if sample_weight is not None:
                fit_kwargs["sample_weight"] = np.asarray(sample_weight)
            self.best_estimator_.fit(X, y, **fit_kwargs)
        return self

    # delegate prediction to the refit best estimator
    def predict(self, X):
        self._check_fitted("best_estimator_")
        return self.best_estimator_.predict(X)

    def predict_proba(self, X):
        self._check_fitted("best_estimator_")
        return self.best_estimator_.predict_proba(X)

    def decision_function(self, X):
        self._check_fitted("best_estimator_")
        return self.best_estimator_.decision_function(X)

    @property
    def classes_(self):
        self._check_fitted("best_estimator_")
        return self.best_estimator_.classes_


def cross_val_score(
    estimator: BaseEstimator,
    X,
    y,
    cv: int = 5,
    random_state: Optional[int] = None,
    sample_weight=None,
    scoring: Optional[Callable] = None,
) -> np.ndarray:
    """Per-fold score of a (cloned) estimator under k-fold CV.

    ``scoring`` mirrors :class:`GridSearchCV`: a
    ``callable(estimator, X, y) -> float``, defaulting to accuracy.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    score_fn = scoring or _accuracy_scorer
    use_presort = supports_fit_param(estimator, "presort")
    scores = []
    for train_idx, valid_idx in KFold(cv, shuffle=True, random_state=random_state).split(len(y)):
        model = clone(estimator)
        X_train = X[train_idx]
        fit_kwargs = {}
        if use_presort:
            fit_kwargs["presort"] = presort_hint(X_train)
        if sample_weight is not None:
            fit_kwargs["sample_weight"] = np.asarray(sample_weight)[train_idx]
        model.fit(X_train, y[train_idx], **fit_kwargs)
        scores.append(score_fn(model, X[valid_idx], y[valid_idx]))
    return np.asarray(scores)


def _accuracy_scorer(model, X, y) -> float:
    return accuracy_score(y, model.predict(X))

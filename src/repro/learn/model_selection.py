"""Seeded data splitting, cross-validation and grid search.

These components implement the best practices the paper enforces
(Sections 2.1, 2.2 and 2.5):

* hyperparameters are selected by k-fold cross-validation on *training*
  data, never on the held-out test set;
* every splitter takes an explicit random seed so that evaluation runs are
  reproducible end to end.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .base import BaseEstimator, clone
from .metrics import accuracy_score


class KFold:
    """Standard k-fold splitter with optional seeded shuffling."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: Optional[int] = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            indices = rng.permutation(n_samples)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_idx, test_idx


class StratifiedKFold:
    """K-fold that preserves per-class proportions in each fold."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: Optional[int] = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, y) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        n_samples = len(y)
        rng = np.random.default_rng(self.random_state)
        fold_of = np.empty(n_samples, dtype=np.int64)
        for klass in np.unique(y):
            members = np.nonzero(y == klass)[0]
            if self.shuffle:
                members = rng.permutation(members)
            if len(members) < self.n_splits:
                raise ValueError(
                    f"class {klass!r} has {len(members)} members, fewer than "
                    f"{self.n_splits} folds"
                )
            fold_of[members] = np.arange(len(members)) % self.n_splits
        indices = np.arange(n_samples)
        for i in range(self.n_splits):
            test_idx = indices[fold_of == i]
            train_idx = indices[fold_of != i]
            yield train_idx, test_idx


def train_test_split(n_samples: int, test_fraction: float, random_state: int):
    """Seeded 2-way index split; returns (train_idx, test_idx)."""
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(random_state)
    order = rng.permutation(n_samples)
    n_test = int(round(test_fraction * n_samples))
    return order[n_test:], order[:n_test]


class ParameterGrid:
    """Cartesian product over a ``{name: [values]}`` grid, in stable order."""

    def __init__(self, grid: Dict[str, Sequence]):
        if not grid:
            raise ValueError("parameter grid must not be empty")
        for name, values in grid.items():
            if not isinstance(values, (list, tuple)):
                raise TypeError(f"grid entry {name!r} must be a list or tuple")
            if len(values) == 0:
                raise ValueError(f"grid entry {name!r} is empty")
        self.grid = grid

    def __iter__(self) -> Iterator[Dict]:
        names = sorted(self.grid)
        for combo in itertools.product(*(self.grid[n] for n in names)):
            yield dict(zip(names, combo))

    def __len__(self) -> int:
        total = 1
        for values in self.grid.values():
            total *= len(values)
        return total


class GridSearchCV(BaseEstimator):
    """Exhaustive hyperparameter search with k-fold cross-validation.

    The search only ever sees the data passed to :meth:`fit` — in the
    FairPrep lifecycle that is the training split, which is what makes
    hyperparameter selection leak-free. After the search, the best
    configuration is refit on the full training data.

    Parameters
    ----------
    estimator:
        Template estimator (cloned per candidate and fold).
    param_grid:
        ``{param: [values]}``; nested pipeline params use ``step__param``.
    cv:
        Fold count for :class:`KFold`.
    scoring:
        ``callable(estimator, X, y) -> float``; defaults to accuracy.
    random_state:
        Seeds the fold shuffling (propagated, per Section 2.5).
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: Dict[str, Sequence],
        cv: int = 5,
        scoring: Optional[Callable] = None,
        random_state: Optional[int] = None,
        refit: bool = True,
    ):
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scoring = scoring
        self.random_state = random_state
        self.refit = refit

    def fit(self, X, y, sample_weight=None) -> "GridSearchCV":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        candidates = list(ParameterGrid(self.param_grid))
        folds = list(
            KFold(self.cv, shuffle=True, random_state=self.random_state).split(len(y))
        )
        score_fn = self.scoring or _accuracy_scorer
        results: List[Dict] = []
        for params in candidates:
            fold_scores = []
            for train_idx, valid_idx in folds:
                model = clone(self.estimator).set_params(**params)
                fit_kwargs = {}
                if sample_weight is not None:
                    fit_kwargs["sample_weight"] = np.asarray(sample_weight)[train_idx]
                model.fit(X[train_idx], y[train_idx], **fit_kwargs)
                fold_scores.append(score_fn(model, X[valid_idx], y[valid_idx]))
            fold_scores = np.asarray(fold_scores, dtype=np.float64)
            results.append(
                {
                    "params": params,
                    "mean_score": float(np.nanmean(fold_scores)),
                    "std_score": float(np.nanstd(fold_scores)),
                    "fold_scores": fold_scores.tolist(),
                }
            )
        self.cv_results_ = results
        best = max(
            range(len(results)),
            key=lambda i: (
                -np.inf
                if np.isnan(results[i]["mean_score"])
                else results[i]["mean_score"]
            ),
        )
        self.best_index_ = best
        self.best_params_ = results[best]["params"]
        self.best_score_ = results[best]["mean_score"]
        if self.refit:
            self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
            fit_kwargs = {}
            if sample_weight is not None:
                fit_kwargs["sample_weight"] = np.asarray(sample_weight)
            self.best_estimator_.fit(X, y, **fit_kwargs)
        return self

    # delegate prediction to the refit best estimator
    def predict(self, X):
        self._check_fitted("best_estimator_")
        return self.best_estimator_.predict(X)

    def predict_proba(self, X):
        self._check_fitted("best_estimator_")
        return self.best_estimator_.predict_proba(X)

    def decision_function(self, X):
        self._check_fitted("best_estimator_")
        return self.best_estimator_.decision_function(X)

    @property
    def classes_(self):
        self._check_fitted("best_estimator_")
        return self.best_estimator_.classes_


def cross_val_score(
    estimator: BaseEstimator,
    X,
    y,
    cv: int = 5,
    random_state: Optional[int] = None,
    sample_weight=None,
) -> np.ndarray:
    """Per-fold accuracy of a (cloned) estimator under k-fold CV."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    scores = []
    for train_idx, valid_idx in KFold(cv, shuffle=True, random_state=random_state).split(len(y)):
        model = clone(estimator)
        fit_kwargs = {}
        if sample_weight is not None:
            fit_kwargs["sample_weight"] = np.asarray(sample_weight)[train_idx]
        model.fit(X[train_idx], y[train_idx], **fit_kwargs)
        scores.append(accuracy_score(y[valid_idx], model.predict(X[valid_idx])))
    return np.asarray(scores)


def _accuracy_scorer(model, X, y) -> float:
    return accuracy_score(y, model.predict(X))

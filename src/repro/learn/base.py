"""Estimator contract for :mod:`repro.learn` (the scikit-learn replacement).

Estimators follow the scikit-learn conventions the FairPrep lifecycle relies
on:

* constructor arguments are hyperparameters, stored verbatim on ``self``;
* :meth:`BaseEstimator.get_params` / :meth:`BaseEstimator.set_params`
  expose them for grid search;
* :func:`clone` builds an unfitted copy with identical hyperparameters;
* fitted state lives in attributes with a trailing underscore.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, List

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when predict/transform is called before fit."""


class BaseEstimator:
    """Hyperparameter introspection shared by all estimators."""

    @classmethod
    def _param_names(cls) -> List[str]:
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, parameter in signature.parameters.items()
            if name != "self"
            and parameter.kind
            not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        ]

    def get_params(self) -> Dict[str, Any]:
        """Hyperparameters as a dict, mirroring the constructor signature."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "BaseEstimator":
        """Set hyperparameters in place; unknown names raise."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"

    def _check_fitted(self, *attributes: str) -> None:
        for attribute in attributes:
            if not hasattr(self, attribute):
                raise NotFittedError(
                    f"{type(self).__name__} is not fitted yet; call fit() first"
                )


def supports_fit_param(estimator, name: str) -> bool:
    """Whether the estimator's ``fit`` accepts a keyword argument.

    This is the fit-context hint protocol: callers that hold shared
    per-dataset state (e.g. a precomputed presort for a cross-validation
    fold) offer it to every estimator whose ``fit`` signature declares
    the hint, and simply skip the ones that don't.
    """
    try:
        signature = inspect.signature(type(estimator).fit)
    except (AttributeError, TypeError, ValueError):
        return False
    return name in signature.parameters


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Unfitted copy with the same hyperparameters (deep for nested estimators).

    Composite estimators (e.g. Pipeline) define ``_clone`` to control how
    their children are copied.
    """
    custom = getattr(estimator, "_clone", None)
    if callable(custom):
        return custom()
    params = {}
    for name, value in estimator.get_params().items():
        if isinstance(value, BaseEstimator):
            params[name] = clone(value)
        else:
            params[name] = value
    return type(estimator)(**params)


class ClassifierMixin:
    """Adds ``score`` (accuracy) to classifiers."""

    def score(self, X, y, sample_weight=None) -> float:
        predictions = self.predict(X)
        y = np.asarray(y)
        correct = (predictions == y).astype(np.float64)
        if sample_weight is None:
            return float(correct.mean())
        sample_weight = np.asarray(sample_weight, dtype=np.float64)
        return float(np.average(correct, weights=sample_weight))


class TransformerMixin:
    """Adds ``fit_transform`` to transformers."""

    def fit_transform(self, X, y=None, **fit_params):
        return self.fit(X, y, **fit_params).transform(X)


def check_matrix(X, name: str = "X") -> np.ndarray:
    """Validate and convert a feature matrix to a 2-D float64 array."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ValueError(f"{name} has no rows")
    if np.isnan(X).any():
        raise ValueError(
            f"{name} contains NaN; impute missing values before model fitting"
        )
    if np.isinf(X).any():
        raise ValueError(f"{name} contains infinite values")
    return X


def check_labels(y, n_rows: int) -> np.ndarray:
    """Validate a label vector against the matrix row count."""
    y = np.asarray(y)
    if y.ndim != 1:
        y = y.ravel()
    if len(y) != n_rows:
        raise ValueError(f"y has {len(y)} entries but X has {n_rows} rows")
    return y


def check_sample_weight(sample_weight, n_rows: int) -> np.ndarray:
    """Validate or default (to ones) a sample-weight vector."""
    if sample_weight is None:
        return np.ones(n_rows, dtype=np.float64)
    sample_weight = np.asarray(sample_weight, dtype=np.float64)
    if sample_weight.shape != (n_rows,):
        raise ValueError(
            f"sample_weight shape {sample_weight.shape} does not match {n_rows} rows"
        )
    if (sample_weight < 0).any():
        raise ValueError("sample_weight entries must be non-negative")
    if sample_weight.sum() == 0:
        raise ValueError("sample_weight sums to zero")
    return sample_weight

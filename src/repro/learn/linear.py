"""Linear classifiers trained with stochastic / full-batch gradient descent.

:class:`SGDClassifier` mirrors the scikit-learn estimator the paper uses as
its logistic-regression baseline (``SGDClassifier(loss='log')``): the same
``optimal`` learning-rate schedule (Bottou's heuristic), the same penalty
surface (l2 / l1 / elasticnet over ``alpha``), and per-sample weighting.
Because the schedule is calibrated for standardized features, training on
raw-scale features diverges or stalls exactly as in Figure 3 of the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..serialize import labels_from_state, labels_to_state, serializable
from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_labels,
    check_matrix,
    check_sample_weight,
)

_LOSSES = ("log", "hinge")
_PENALTIES = ("l2", "l1", "elasticnet", "none")

# full-batch one-vs-rest: stack targets into one (targets × samples)
# problem only while the intermediates stay cache-sized; beyond this the
# per-target loop is faster (both paths are byte-identical)
_OVR_STACK_LIMIT = 16384

# minibatch one-vs-rest keeps its per-batch working set small, so its
# stacked signs matrix is capped only by memory (128 MB of float64),
# past which the per-class loop bounds allocation at O(n)
_OVR_SIGNS_LIMIT = 1 << 24


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


@serializable
class SGDClassifier(BaseEstimator, ClassifierMixin):
    """Linear classifier fit by minibatch stochastic gradient descent.

    Parameters
    ----------
    loss:
        ``"log"`` for logistic regression, ``"hinge"`` for a linear SVM.
    penalty, alpha, l1_ratio:
        Regularization: ``l2``, ``l1``, ``elasticnet`` (mixing ``l1_ratio``)
        or ``none``; ``alpha`` is the regularization strength and also feeds
        the ``optimal`` learning-rate schedule.
    max_iter:
        Number of epochs over the training data.
    tol:
        Stop early when the epoch-average loss improves by less than this.
    batch_size:
        Minibatch size (1 recovers classical per-sample SGD).
    random_state:
        Seed for shuffling and multi-class tie-breaking; required for
        reproducible experiment runs.
    """

    def __init__(
        self,
        loss: str = "log",
        penalty: str = "l2",
        alpha: float = 0.0001,
        l1_ratio: float = 0.15,
        max_iter: int = 20,
        tol: float = 1e-4,
        batch_size: int = 32,
        shuffle: bool = True,
        random_state: Optional[int] = None,
    ):
        self.loss = loss
        self.penalty = penalty
        self.alpha = alpha
        self.l1_ratio = l1_ratio
        self.max_iter = max_iter
        self.tol = tol
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.random_state = random_state

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, X, y, sample_weight=None) -> "SGDClassifier":
        if self.loss not in _LOSSES:
            raise ValueError(f"loss must be one of {_LOSSES}, got {self.loss!r}")
        if self.penalty not in _PENALTIES:
            raise ValueError(
                f"penalty must be one of {_PENALTIES}, got {self.penalty!r}"
            )
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        X = check_matrix(X)
        y = check_labels(y, X.shape[0])
        sample_weight = check_sample_weight(sample_weight, X.shape[0])
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes to fit a classifier")
        if len(self.classes_) == 2:
            signs = np.where(y == self.classes_[1], 1.0, -1.0)
            w, b = self._fit_binary(X, signs, sample_weight)
            self.coef_ = w.reshape(1, -1)
            self.intercept_ = np.asarray([b])
        elif len(self.classes_) * X.shape[0] <= _OVR_SIGNS_LIMIT:
            # one-vs-rest for multi-class targets, all classes trained
            # through a single epoch loop (byte-identical to the
            # per-class loop; see _fit_ovr)
            signs = np.where(y[None, :] == self.classes_[:, None], 1.0, -1.0)
            self.coef_, self.intercept_ = self._fit_ovr(X, signs, sample_weight)
        else:
            # stacked signs would not fit comfortably in memory; the
            # per-class loop produces byte-identical coefficients
            coefs, intercepts = [], []
            for klass in self.classes_:
                signs = np.where(y == klass, 1.0, -1.0)
                w, b = self._fit_binary(X, signs, sample_weight)
                coefs.append(w)
                intercepts.append(b)
            self.coef_ = np.vstack(coefs)
            self.intercept_ = np.asarray(intercepts)
        return self

    def _fit_ovr(self, X, signs, sample_weight):
        """Train every one-vs-rest problem through one shared epoch loop.

        The per-class loop seeds an identical RNG stream for every class,
        so all classes see the same permutation at the same epoch — one
        shared draw per epoch reproduces it. All elementwise work
        (activations, penalties, updates, divergence guards) runs on a
        (classes × ...) weight matrix at once; only the two projections
        per batch stay per-class matrix-vector products, because BLAS
        matrix-matrix products round differently and the coefficients are
        required to be byte-identical to independent binary fits.
        """
        n_samples, n_features = X.shape
        n_classes = signs.shape[0]
        rng = np.random.default_rng(self.random_state)
        coef = np.zeros((n_classes, n_features))
        intercept = np.zeros(n_classes)
        t = self._optimal_init()
        previous = np.full(n_classes, np.inf)
        active = np.arange(n_classes)
        batch = max(1, int(self.batch_size))
        for _ in range(int(self.max_iter)):
            if active.size == 0:
                break
            order = rng.permutation(n_samples) if self.shuffle else np.arange(n_samples)
            w = coef[active]
            b = intercept[active]
            active_signs = signs[active]
            k = active.size
            for start in range(0, n_samples, batch):
                idx = order[start : start + batch]
                xb, sb, wb = X[idx], active_signs[:, idx], sample_weight[idx]
                eta = self._eta(t)
                t += len(idx)
                grad_w, grad_b = self._ovr_gradient(xb, sb, wb, w, b, k)
                w = self._apply_penalty(w, eta)
                w -= eta * grad_w
                b = b - eta * grad_b
                finite = np.isfinite(w).all(axis=1)
                if not finite.all():
                    # diverged (typically unscaled features): freeze the
                    # affected classes at the last finite state
                    bad = ~finite
                    w[bad] = np.nan_to_num(w[bad], nan=0.0, posinf=1e12, neginf=-1e12)
                    b[bad] = np.nan_to_num(b[bad], nan=0.0, posinf=1e12, neginf=-1e12)
            epoch_loss = np.empty(k)
            for row in range(k):
                epoch_loss[row] = self._mean_loss(
                    X, active_signs[row], sample_weight, w[row], b[row]
                )
            done = np.isfinite(epoch_loss) & (previous[active] - epoch_loss < self.tol)
            coef[active] = w
            intercept[active] = b
            previous[active] = epoch_loss
            active = active[~done]
        return coef, intercept

    def _ovr_gradient(self, xb, sb, wb, w, b, k):
        """Per-class loss gradients; the per-class matvec mirrors
        :meth:`_loss_gradient` operand for operand."""
        margins = np.empty((k, len(xb)))
        for row in range(k):
            margins[row] = xb @ w[row]
        margins += b[:, None]
        if self.loss == "log":
            coeff = -sb * _sigmoid(-sb * margins) * wb
        else:  # hinge
            active = (sb * margins) < 1.0
            coeff = np.where(active, -sb, 0.0) * wb
        total = wb.sum()
        if total == 0:
            return np.zeros_like(w), np.zeros(k)
        grad_w = np.empty_like(w)
        for row in range(k):
            grad_w[row] = xb.T @ coeff[row]
        grad_w /= total
        grad_b = coeff.sum(axis=1) / total
        return grad_w, grad_b

    def _fit_binary(self, X, signs, sample_weight):
        n_samples, n_features = X.shape
        rng = np.random.default_rng(self.random_state)
        w = np.zeros(n_features)
        b = 0.0
        t = self._optimal_init()
        previous_loss = np.inf
        batch = max(1, int(self.batch_size))
        for _ in range(int(self.max_iter)):
            order = rng.permutation(n_samples) if self.shuffle else np.arange(n_samples)
            for start in range(0, n_samples, batch):
                idx = order[start : start + batch]
                xb, sb, wb = X[idx], signs[idx], sample_weight[idx]
                eta = self._eta(t)
                t += len(idx)
                grad_w, grad_b = self._loss_gradient(xb, sb, wb, w, b)
                w = self._apply_penalty(w, eta)
                w -= eta * grad_w
                b -= eta * grad_b
                if not np.all(np.isfinite(w)):
                    # diverged (typically unscaled features): freeze at the
                    # last finite state, mirroring a failed real-world run
                    w = np.nan_to_num(w, nan=0.0, posinf=1e12, neginf=-1e12)
                    b = float(np.nan_to_num(b, nan=0.0, posinf=1e12, neginf=-1e12))
            epoch_loss = self._mean_loss(X, signs, sample_weight, w, b)
            if np.isfinite(epoch_loss) and previous_loss - epoch_loss < self.tol:
                break
            previous_loss = epoch_loss
        return w, b

    def _loss_gradient(self, xb, sb, wb, w, b):
        margin = xb @ w + b
        if self.loss == "log":
            # d/dz log(1 + exp(-s z)) = -s * sigmoid(-s z)
            coeff = -sb * _sigmoid(-sb * margin) * wb
        else:  # hinge
            active = (sb * margin) < 1.0
            coeff = np.where(active, -sb, 0.0) * wb
        total = wb.sum()
        if total == 0:
            return np.zeros_like(w), 0.0
        grad_w = xb.T @ coeff / total
        grad_b = coeff.sum() / total
        return grad_w, grad_b

    def _apply_penalty(self, w, eta):
        if self.penalty == "none" or self.alpha == 0.0:
            return w
        if self.penalty == "l2":
            return w * (1.0 - eta * self.alpha)
        if self.penalty == "l1":
            return _soft_threshold(w, eta * self.alpha)
        # elasticnet
        w = w * (1.0 - eta * self.alpha * (1.0 - self.l1_ratio))
        return _soft_threshold(w, eta * self.alpha * self.l1_ratio)

    def _mean_loss(self, X, signs, sample_weight, w, b):
        margin = signs * (X @ w + b)
        if self.loss == "log":
            losses = np.logaddexp(0.0, -margin)
        else:
            losses = np.maximum(0.0, 1.0 - margin)
        return float(np.average(losses, weights=sample_weight))

    def _optimal_init(self) -> float:
        """Bottou's t0 heuristic used by scikit-learn's 'optimal' schedule."""
        alpha = max(self.alpha, 1e-10)
        typw = np.sqrt(1.0 / np.sqrt(alpha))
        if self.loss == "log":
            initial_eta0 = typw / max(1.0, _sigmoid(typw))
        else:
            initial_eta0 = typw / max(1.0, 1.0 + typw)
        return 1.0 / (initial_eta0 * alpha)

    def _eta(self, t: float) -> float:
        return 1.0 / (max(self.alpha, 1e-10) * t)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def decision_function(self, X) -> np.ndarray:
        self._check_fitted("coef_", "intercept_")
        X = check_matrix(X)
        if X.shape[1] != self.coef_.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fit on {self.coef_.shape[1]}"
            )
        scores = X @ self.coef_.T + self.intercept_
        if scores.shape[1] == 1:
            return scores.ravel()
        return scores

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        if scores.ndim == 1:
            return np.where(scores >= 0.0, self.classes_[1], self.classes_[0])
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities (log loss only)."""
        if self.loss != "log":
            raise AttributeError("predict_proba is only available for loss='log'")
        scores = self.decision_function(X)
        if scores.ndim == 1:
            p1 = _sigmoid(scores)
            return np.column_stack([1.0 - p1, p1])
        raw = _sigmoid(scores)
        totals = raw.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return raw / totals

    def to_state(self) -> dict:
        self._check_fitted("coef_", "intercept_")
        return {
            "params": self.get_params(),
            "classes_": labels_to_state(self.classes_),
            "coef_": self.coef_,
            "intercept_": self.intercept_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "SGDClassifier":
        model = cls(**state["params"])
        model.classes_ = labels_from_state(state["classes_"])
        model.coef_ = np.asarray(state["coef_"], dtype=np.float64)
        model.intercept_ = np.asarray(state["intercept_"], dtype=np.float64)
        return model


@serializable
class LogisticRegressionGD(BaseEstimator, ClassifierMixin):
    """Full-batch gradient-descent logistic regression (binary or OvR).

    A deliberately stable optimizer with a fixed step size; used where the
    framework itself needs a dependable model (e.g. the learned missing-value
    imputer) as opposed to studying optimizer pathologies.
    """

    def __init__(
        self,
        alpha: float = 1e-4,
        learning_rate: float = 0.5,
        max_iter: int = 200,
        tol: float = 1e-6,
        random_state: Optional[int] = None,
    ):
        self.alpha = alpha
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state

    def fit(self, X, y, sample_weight=None) -> "LogisticRegressionGD":
        X = check_matrix(X)
        y = check_labels(y, X.shape[0])
        sample_weight = check_sample_weight(sample_weight, X.shape[0])
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes to fit a classifier")
        targets = (
            [self.classes_[1]] if len(self.classes_) == 2 else list(self.classes_)
        )
        onehot = np.empty((len(targets), X.shape[0]))
        for row, klass in enumerate(targets):
            onehot[row] = (y == klass).astype(np.float64)
        if onehot.size <= _OVR_STACK_LIMIT:
            self.coef_, self.intercept_ = self._fit_ovr(X, onehot, sample_weight)
        else:
            # the stacked (targets × samples) intermediates would fall
            # out of cache; per-target vectors are faster there and the
            # two paths produce byte-identical coefficients
            coefs, intercepts = [], []
            for row in range(onehot.shape[0]):
                w, b = self._fit_one(X, onehot[row], sample_weight)
                coefs.append(w)
                intercepts.append(b)
            self.coef_ = np.vstack(coefs)
            self.intercept_ = np.asarray(intercepts)
        return self

    def _fit_one(self, X, t, sample_weight):
        n_samples, n_features = X.shape
        w = np.zeros(n_features)
        b = 0.0
        weights = sample_weight / sample_weight.sum()
        previous = np.inf
        for _ in range(int(self.max_iter)):
            p = _sigmoid(X @ w + b)
            error = (p - t) * weights
            grad_w = X.T @ error + self.alpha * w
            grad_b = error.sum()
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
            loss = float(
                -(
                    weights
                    * (t * np.log(p + 1e-12) + (1 - t) * np.log(1 - p + 1e-12))
                ).sum()
            )
            if previous - loss < self.tol:
                break
            previous = loss
        return w, b

    def _fit_ovr(self, X, targets, sample_weight):
        """Full-batch gradient descent over all targets at once.

        All elementwise work runs on a (targets × ...) weight matrix;
        the two projections per iteration stay per-target matrix-vector
        products so the coefficients are byte-identical to independent
        per-target fits (BLAS matrix-matrix products round differently).
        Targets converge independently: a finished target drops out of
        the active set while the others keep iterating.
        """
        n_samples, n_features = X.shape
        n_targets = targets.shape[0]
        coef = np.zeros((n_targets, n_features))
        intercept = np.zeros(n_targets)
        weights = sample_weight / sample_weight.sum()
        previous = np.full(n_targets, np.inf)
        active = np.arange(n_targets)
        for _ in range(int(self.max_iter)):
            if active.size == 0:
                break
            w = coef[active]
            b = intercept[active]
            t = targets[active]
            k = active.size
            margins = np.empty((k, n_samples))
            for row in range(k):
                margins[row] = X @ w[row]
            margins += b[:, None]
            p = _sigmoid(margins)
            error = (p - t) * weights
            grad_b = error.sum(axis=1)
            grad_w = np.empty_like(w)
            for row in range(k):
                grad_w[row] = X.T @ error[row]
            grad_w += self.alpha * w
            w = w - self.learning_rate * grad_w
            b = b - self.learning_rate * grad_b
            loss = -(
                weights
                * (t * np.log(p + 1e-12) + (1 - t) * np.log(1 - p + 1e-12))
            ).sum(axis=1)
            done = previous[active] - loss < self.tol
            coef[active] = w
            intercept[active] = b
            previous[active] = loss
            active = active[~done]
        return coef, intercept

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted("coef_", "intercept_")
        X = check_matrix(X)
        scores = X @ self.coef_.T + self.intercept_
        return scores.ravel() if scores.shape[1] == 1 else scores

    def predict_proba(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        if scores.ndim == 1:
            p1 = _sigmoid(scores)
            return np.column_stack([1.0 - p1, p1])
        raw = _sigmoid(scores)
        totals = raw.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return raw / totals

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def to_state(self) -> dict:
        self._check_fitted("coef_", "intercept_")
        return {
            "params": self.get_params(),
            "classes_": labels_to_state(self.classes_),
            "coef_": self.coef_,
            "intercept_": self.intercept_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "LogisticRegressionGD":
        model = cls(**state["params"])
        model.classes_ = labels_from_state(state["classes_"])
        model.coef_ = np.asarray(state["coef_"], dtype=np.float64)
        model.intercept_ = np.asarray(state["intercept_"], dtype=np.float64)
        return model


def _soft_threshold(w: np.ndarray, threshold: float) -> np.ndarray:
    return np.sign(w) * np.maximum(np.abs(w) - threshold, 0.0)

"""Feature transformations: scalers, one-hot and label encoding.

The scalers implement the paper's three numeric-feature treatments: keep the
original scale (:class:`NoOpScaler`, "which might be dangerous"),
standardisation (:class:`StandardScaler`) and min-max scaling
(:class:`MinMaxScaler`). All of them follow the fit/transform contract so
that aggregate statistics are computed on training data only — the core
isolation requirement of Section 2.1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..frame.column import Column, remap_table, sorted_position
from ..serialize import serializable
from .base import BaseEstimator, TransformerMixin, check_matrix

MISSING_CATEGORY = "<missing>"
UNSEEN_CATEGORY = "<unseen>"


@serializable
class StandardScaler(BaseEstimator, TransformerMixin):
    """Standardize features to zero mean and unit variance.

    Constant features are left centered but not divided (scale of 1), the
    scikit-learn behaviour.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None) -> "StandardScaler":
        X = check_matrix(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            # treat numerically-constant columns as constant: dividing by a
            # float-noise std would amplify rounding error into garbage
            tiny = scale <= 1e-12 * np.maximum(1.0, np.abs(X).max(axis=0))
            scale[tiny] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("mean_", "scale_")
        X = check_matrix(X)
        self._check_width(X)
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted("mean_", "scale_")
        X = check_matrix(X)
        self._check_width(X)
        return X * self.scale_ + self.mean_

    def _check_width(self, X) -> None:
        if X.shape[1] != len(self.mean_):
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fit on {len(self.mean_)}"
            )

    def to_state(self) -> dict:
        self._check_fitted("mean_", "scale_")
        return {
            "params": {"with_mean": self.with_mean, "with_std": self.with_std},
            "mean_": self.mean_,
            "scale_": self.scale_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StandardScaler":
        scaler = cls(**state["params"])
        scaler.mean_ = np.asarray(state["mean_"], dtype=np.float64)
        scaler.scale_ = np.asarray(state["scale_"], dtype=np.float64)
        return scaler


@serializable
class MinMaxScaler(BaseEstimator, TransformerMixin):
    """Scale features into ``feature_range`` based on the training min/max."""

    def __init__(self, feature_range: tuple = (0.0, 1.0)):
        self.feature_range = feature_range

    def fit(self, X, y=None) -> "MinMaxScaler":
        low, high = self.feature_range
        if low >= high:
            raise ValueError(f"invalid feature_range {self.feature_range}")
        X = check_matrix(X)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        span = self.data_max_ - self.data_min_
        tiny = span <= 1e-12 * np.maximum(1.0, np.abs(X).max(axis=0))
        span[tiny] = 1.0
        self.scale_ = (high - low) / span
        self.min_ = low - self.data_min_ * self.scale_
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("scale_", "min_")
        X = check_matrix(X)
        if X.shape[1] != len(self.scale_):
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fit on {len(self.scale_)}"
            )
        return X * self.scale_ + self.min_

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted("scale_", "min_")
        X = check_matrix(X)
        return (X - self.min_) / self.scale_

    def to_state(self) -> dict:
        self._check_fitted("scale_", "min_")
        return {
            "params": {"feature_range": list(self.feature_range)},
            "data_min_": self.data_min_,
            "data_max_": self.data_max_,
            "scale_": self.scale_,
            "min_": self.min_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "MinMaxScaler":
        scaler = cls(feature_range=tuple(state["params"]["feature_range"]))
        for attr in ("data_min_", "data_max_", "scale_", "min_"):
            setattr(scaler, attr, np.asarray(state[attr], dtype=np.float64))
        return scaler


@serializable
class NoOpScaler(BaseEstimator, TransformerMixin):
    """Keep numeric features on their original scale.

    Exists so that the Figure 3 study ("what happens without scaling") is an
    explicit, selectable component rather than an accidental omission.
    """

    def fit(self, X, y=None) -> "NoOpScaler":
        X = check_matrix(X)
        self.n_features_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("n_features_")
        X = check_matrix(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fit on {self.n_features_}"
            )
        return X.copy()

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted("n_features_")
        return check_matrix(X).copy()

    def to_state(self) -> dict:
        self._check_fitted("n_features_")
        return {"n_features_": int(self.n_features_)}

    @classmethod
    def from_state(cls, state: dict) -> "NoOpScaler":
        scaler = cls()
        scaler.n_features_ = int(state["n_features_"])
        return scaler


@serializable
class OneHotEncoder(BaseEstimator, TransformerMixin):
    """One-hot encode categorical feature columns.

    Categories are learned on the training data only. Following the paper's
    dataset abstraction ("adding feature dimensions for unseen categorical
    values"), every feature reserves one extra dimension that captures values
    never observed during fit, so transform never fails on new data and the
    output width is stable across splits.

    Parameters
    ----------
    handle_missing:
        ``"category"`` (default) encodes missing entries (None) as their own
        ``<missing>`` category; ``"error"`` raises instead.
    """

    def __init__(self, handle_missing: str = "category"):
        if handle_missing not in ("category", "error"):
            raise ValueError("handle_missing must be 'category' or 'error'")
        self.handle_missing = handle_missing

    def fit(self, X, y=None) -> "OneHotEncoder":
        columns = _as_categorical_columns(X)
        self.categories_: List[List[str]] = []
        for column in columns:
            codes = column.codes
            used = np.unique(codes)
            has_missing = used.size > 0 and used[0] == -1
            if has_missing and self.handle_missing == "error":
                raise ValueError(
                    "missing value encountered during one-hot encoding; "
                    "impute first or use handle_missing='category'"
                )
            categories = list(column.categories[used[used >= 0]])
            if has_missing and MISSING_CATEGORY not in categories:
                # a literal "<missing>" category already covers the bucket
                categories.append(MISSING_CATEGORY)
            self.categories_.append(sorted(categories))
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("categories_")
        columns = _as_categorical_columns(X)
        if len(columns) != len(self.categories_):
            raise ValueError(
                f"X has {len(columns)} features, encoder was fit on "
                f"{len(self.categories_)}"
            )
        blocks = []
        for column, categories in zip(columns, self.categories_):
            codes = column.codes
            if self.handle_missing == "error" and (codes < 0).any():
                raise ValueError(
                    "missing value encountered during one-hot encoding; "
                    "impute first or use handle_missing='category'"
                )
            width = len(categories) + 1  # final slot: unseen values
            # remap the column's codes onto the fitted category order; the
            # lookup table's last entry routes missing (-1) to its category
            # (or to the unseen slot when fit never saw a missing value)
            fitted = np.asarray(categories, dtype=object)
            lut = remap_table(column.categories, fitted, default=width - 1)
            missing_slot = sorted_position(fitted, MISSING_CATEGORY)
            lut[-1] = missing_slot if missing_slot >= 0 else width - 1
            target = lut[codes]
            block = np.zeros((len(codes), width), dtype=np.float64)
            block[np.arange(len(codes)), target] = 1.0
            blocks.append(block)
        if not blocks:
            return np.empty((0, 0))
        return np.hstack(blocks)

    def feature_names(self, input_names: Optional[Sequence[str]] = None) -> List[str]:
        """Names of the output dimensions, for metric reporting."""
        self._check_fitted("categories_")
        if input_names is None:
            input_names = [f"x{i}" for i in range(len(self.categories_))]
        if len(input_names) != len(self.categories_):
            raise ValueError("input_names length mismatch")
        names = []
        for feature, categories in zip(input_names, self.categories_):
            names.extend(f"{feature}={c}" for c in categories)
            names.append(f"{feature}={UNSEEN_CATEGORY}")
        return names

    def to_state(self) -> dict:
        self._check_fitted("categories_")
        return {
            "params": {"handle_missing": self.handle_missing},
            "categories_": [[str(c) for c in cats] for cats in self.categories_],
        }

    @classmethod
    def from_state(cls, state: dict) -> "OneHotEncoder":
        encoder = cls(**state["params"])
        encoder.categories_ = [list(cats) for cats in state["categories_"]]
        return encoder


@serializable
class LabelEncoder(BaseEstimator):
    """Map class labels to integers 0..k-1 (sorted lexicographically)."""

    def fit(self, y) -> "LabelEncoder":
        values = _as_label_strings(y)
        self._classes = np.unique(values)
        self.classes_ = self._classes.tolist()
        self._index = {c: i for i, c in enumerate(self.classes_)}
        return self

    def transform(self, y) -> np.ndarray:
        self._check_fitted("classes_")
        values = _as_label_strings(y)
        positions = np.searchsorted(self._classes, values)
        clipped = np.minimum(positions, len(self._classes) - 1)
        known = self._classes[clipped] == values
        if not known.all():
            unknown = sorted(set(values[~known].tolist()))
            raise ValueError(f"unseen labels at transform time: {unknown}")
        return positions.astype(np.int64)

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, codes) -> np.ndarray:
        self._check_fitted("classes_")
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.classes_)):
            raise ValueError("codes outside the fitted label range")
        return self._classes.astype(object)[codes]

    def to_state(self) -> dict:
        self._check_fitted("classes_")
        return {"classes_": [str(c) for c in self.classes_]}

    @classmethod
    def from_state(cls, state: dict) -> "LabelEncoder":
        encoder = cls()
        encoder._classes = np.asarray(state["classes_"], dtype=str)
        encoder.classes_ = encoder._classes.tolist()
        encoder._index = {c: i for i, c in enumerate(encoder.classes_)}
        return encoder


def _as_label_strings(y) -> np.ndarray:
    """Normalize labels to a string array (one C-level str() pass)."""
    if isinstance(y, Column):
        y = y.values
    arr = np.asarray(y)
    if arr.dtype.kind in "US":
        return arr
    return np.asarray(arr, dtype=object).astype(str)


def _as_object_columns(X) -> List[np.ndarray]:
    """Normalize input to a list of per-feature object arrays."""
    if isinstance(X, (list, tuple)) and X and isinstance(X[0], np.ndarray):
        return [np.asarray(col, dtype=object) for col in X]
    X = np.asarray(X, dtype=object)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"expected 2-D categorical input, got shape {X.shape}")
    return [X[:, j] for j in range(X.shape[1])]


def _as_categorical_columns(X) -> List[Column]:
    """Normalize encoder input to a list of dictionary-encoded columns.

    :class:`~repro.frame.Column` inputs (the featurizer's fast path) pass
    through untouched — their codes are used directly. Raw object arrays /
    2-D matrices are dictionary-encoded on the way in, so every encoder
    operates on codes regardless of how it was called.
    """
    if isinstance(X, Column):
        return [_ensure_categorical(X)]
    if isinstance(X, (list, tuple)) and X and all(isinstance(c, Column) for c in X):
        return [_ensure_categorical(c) for c in X]
    return [
        Column.categorical(f"x{j}", values)
        for j, values in enumerate(_as_object_columns(X))
    ]


def _ensure_categorical(column: Column) -> Column:
    """Dictionary-encode a numeric column on the way into an encoder.

    Mirrors the object-array era, where a numeric column handed to a
    categorical encoder was stringified per value ('0.0', '1.0', ...) and
    NaN became the missing bucket.
    """
    if column.is_categorical:
        return column
    return Column.categorical(column.name, column.values)

"""Presorted split finding for decision-tree induction.

The original tree re-argsorted every feature at every node, making each
node O(d·n·log n). This module removes that redundancy in three steps:

* :class:`Presort` computes the per-feature stable sort order of the
  training matrix **once per fit** — or once per cross-validation fold,
  shared by every tuning candidate through the ``fit(..., presort=...)``
  hint — together with the per-sample value *ranks* (order-isomorphic to
  the raw values, so every comparison on them is exact);
* :class:`PresortSplitter` maintains the per-feature order through the
  recursion by **stable boolean partition** (each child's order is the
  parent's order filtered by membership), turning per-node work into
  O(d·n); the order matrix is the only state threaded down — ranks and
  class payloads are re-gathered from per-sample tables;
* both the binary and the general multi-class criterion run through one
  weighted-cumsum gain kernel that evaluates impurity only at candidate
  boundaries (where consecutive sorted ranks differ) inside the
  min-leaf-feasible column window, instead of at every sorted position.

Every floating-point result mirrors the per-node argsort implementation
operand for operand — same cumsum partial sums, same impurity
expressions, same tie-breaking — so the induced trees are structurally
identical (feature / threshold / gain sequence) to the seed splitter.
The one intentional representation change: when every sample weight is
exactly 1.0, all running statistics are exact small integers, so they are
carried in narrow dtypes and summed in any convenient order — the floats
they produce are identical bit patterns.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np


class Presort:
    """Per-feature sort order and value ranks of a matrix, built once.

    ``order`` is feature-major ``(d, n)``: row j holds the sample ids of
    feature j's values in ascending order (mergesort-stable, ties in row
    order — exactly like the per-node argsort it replaces). ``ranks`` is
    ``(d, n)`` indexed by sample id: ``ranks[j, s]`` is the rank of
    ``X[s, j]`` among feature j's distinct values.

    The hint is trusted only for the exact matrix object it was built
    from (:meth:`is_for`), so a stale hint degrades to a fresh argsort
    inside the estimator, never to a wrong tree.
    """

    __slots__ = ("matrix", "order", "ranks")

    def __init__(self, X):
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"Presort expects a 2-D matrix, got shape {X.shape}")
        self.matrix = X
        self.order = np.argsort(X.T, axis=1, kind="mergesort").astype(np.int32)
        sorted_values = np.take_along_axis(X.T, self.order, axis=1)
        sorted_ranks = np.zeros(self.order.shape, dtype=np.int32)
        if X.shape[0] > 1:
            np.cumsum(
                sorted_values[:, 1:] != sorted_values[:, :-1],
                axis=1,
                dtype=np.int32,
                out=sorted_ranks[:, 1:],
            )
        self.ranks = np.empty_like(sorted_ranks)
        np.put_along_axis(self.ranks, self.order, sorted_ranks, axis=1)

    def is_for(self, X) -> bool:
        return X is self.matrix

    @property
    def n_samples(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_features(self) -> int:
        return self.matrix.shape[1]


class PresortSplitter:
    """Best-split search over presorted per-feature orders.

    One instance serves one ``fit``: it owns the presort tables, the
    membership scratch buffer used by :meth:`partition`, and the
    criterion/minimum-leaf configuration shared by every node.
    """

    def __init__(self, X, onehot, criterion, min_samples_leaf, presort=None):
        self.X = X
        self.onehot = onehot
        self.criterion = criterion
        self.min_leaf = int(min_samples_leaf)
        self.n_samples, self.n_features = X.shape
        self.binary = onehot.shape[1] == 2
        if presort is None or not presort.is_for(X):
            presort = Presort(X)
        self._ranks = presort.ranks
        self._root_order = presort.order
        # per-sample total weight; rows equal onehot[indices].sum(axis=1)
        weight = onehot.sum(axis=1)
        self.unit_weight = bool(np.all(weight == 1.0))
        if self.binary:
            positive = np.ascontiguousarray(onehot[:, 1])
            if self.unit_weight:
                # exact 0/1 payload: int8 keeps the per-node gather and
                # cumsum traffic small; the partial sums are exact
                # integers in any dtype
                self._positive = positive.astype(np.int8)
            else:
                self._positive = positive
                self._weight = weight
        self._member = np.zeros(self.n_samples, dtype=bool)

    def root_order(self) -> np.ndarray:
        return self._root_order

    def root_context(self) -> np.ndarray:
        """Recursion state of the root node (the full order matrix).

        Both split backends expose ``root_context``/``partition`` with
        an opaque per-node context; here the context is the presorted
        ``(d, n)`` order matrix.
        """
        return self._root_order

    def node_distribution(self, indices):
        """Class-weight vector of a node (the leaf distribution).

        For unit-weight binary labels the counts are exact integers read
        off the positive column; otherwise the seed's summation order is
        reproduced verbatim. Returns ``(distribution, onehot[indices] or
        None)`` so the binary split search can reuse the gather.
        """
        if self.binary and self.unit_weight:
            node_positive = float(self._positive[indices].sum())
            return np.asarray([len(indices) - node_positive, node_positive]), None
        sub = self.onehot[indices]
        return sub.sum(axis=0), sub

    # ------------------------------------------------------------------
    # split search
    # ------------------------------------------------------------------
    def best_split_binary(self, indices, order, sub, distribution):
        """Vectorized all-feature search for binary labels.

        ``order`` is the node's ``(d, n)`` presorted sample ids; ``sub``
        is the node's ``onehot[indices]`` gather when the distribution
        needed one, reused so the node totals accumulate in exactly the
        seed's summation order.
        """
        n = len(indices)
        d = self.n_features
        min_leaf = self.min_leaf
        if n < 2 * min_leaf:
            return None  # no split position can satisfy both leaves
        unit = self.unit_weight
        if unit:
            node_weight = float(n)  # sum of n exact unit weights
            node_positive = distribution[1]
        else:
            node_weight = sub.sum(axis=1).sum()
            node_positive = sub[:, 1].sum()
        if node_weight <= 0:
            return None
        node_impurity = _scalar_impurity_binary(
            self.criterion, node_positive / node_weight
        )

        # candidate boundaries, restricted to the min-leaf-feasible
        # window of split positions p in [min_leaf, n - min_leaf]
        lo = min_leaf - 1
        window = np.take_along_axis(
            self._ranks, order[:, lo : n - min_leaf + 1], axis=1
        )
        feat, pos = np.nonzero(window[:, :-1] < window[:, 1:])
        if feat.size == 0:
            return None
        if lo:
            pos = pos + lo

        # impurity only at the boundaries — for one-hot-heavy matrices a
        # tiny fraction of the d*(n-1) positions the argsort splitter
        # scored at every node
        cum_positive = np.cumsum(self._positive[order], axis=1, dtype=np.float64)
        left_p = cum_positive[feat, pos]
        right_p = node_positive - left_p
        if unit:
            left_w = pos + 1.0  # cumsum of exact 1.0s is the position
            right_w = node_weight - left_w
            # both sides hold >= min_leaf unit weights, so the seed's
            # left_w > 0 / right_w > 0 gate is vacuous here
            with np.errstate(divide="ignore", invalid="ignore"):
                left_impurity = _impurity_from_p(self.criterion, left_p / left_w)
                right_impurity = _impurity_from_p(self.criterion, right_p / right_w)
            gains = node_impurity - (
                (left_w * left_impurity + right_w * right_impurity) / node_weight
            )
        else:
            left_w = np.cumsum(self._weight[order], axis=1)[feat, pos]
            right_w = node_weight - left_w
            ok = (left_w > 0) & (right_w > 0)
            if not ok.any():
                return None
            left_impurity = _impurity_binary(self.criterion, left_p, left_w)
            right_impurity = _impurity_binary(self.criterion, right_p, right_w)
            gains = _children_gain(
                ok, node_impurity, node_weight,
                left_w, left_impurity, right_w, right_impurity,
            )
        best_gain = gains.max()
        if not np.isfinite(best_gain):
            return None
        # seed tie-break: argmax over the (positions, features) matrix in
        # row-major order — lowest split position first, then lowest feature
        tied = np.nonzero(gains == best_gain)[0]
        if tied.size > 1:
            winner = tied[np.argmin(pos[tied] * d + feat[tied])]
        else:
            winner = tied[0]
        f = int(feat[winner])
        p = int(pos[winner])
        return f, self._threshold(order, f, p), float(gains[winner])

    def best_split_general(self, indices, order, node_counts):
        """Per-feature search for multi-class labels (presorted orders).

        ``node_counts`` is the node's class-weight vector (the seed
        computed the identical ``onehot[indices].sum(axis=0)`` twice).
        """
        node_weight = node_counts.sum()
        if node_weight <= 0:
            return None
        node_impurity = _impurity(self.criterion, node_counts[None, :], node_weight)[0]
        best = None
        best_gain = -np.inf
        min_leaf = self.min_leaf
        n = len(indices)
        onehot = self.onehot
        ranks = self._ranks
        for feature in range(self.n_features):
            feature_order = order[feature]
            sorted_ranks = ranks[feature, feature_order]
            if sorted_ranks[0] == sorted_ranks[-1]:
                continue
            sorted_onehot = onehot[feature_order]
            left_cumulative = np.cumsum(sorted_onehot, axis=0)
            # candidate split after position i (left = 0..i)
            boundaries = np.nonzero(sorted_ranks[:-1] < sorted_ranks[1:])[0]
            valid = boundaries[
                (boundaries + 1 >= min_leaf) & (n - boundaries - 1 >= min_leaf)
            ]
            if valid.size == 0:
                continue
            left_counts = left_cumulative[valid]
            right_counts = node_counts[None, :] - left_counts
            left_weight = left_counts.sum(axis=1)
            right_weight = right_counts.sum(axis=1)
            ok = (left_weight > 0) & (right_weight > 0)
            if not ok.any():
                continue
            left_impurity = _impurity(self.criterion, left_counts, left_weight)
            right_impurity = _impurity(self.criterion, right_counts, right_weight)
            gains = _children_gain(
                ok, node_impurity, node_weight,
                left_weight, left_impurity, right_weight, right_impurity,
            )
            pick = int(np.argmax(gains))
            if gains[pick] > best_gain:
                best_gain = float(gains[pick])
                best = (feature, self._threshold(order, feature, int(valid[pick])), best_gain)
        return best

    def _threshold(self, order, feature: int, position: int) -> float:
        """Midpoint of the boundary pair, read back from the raw matrix
        (identical floats to averaging the node's sorted values)."""
        lo = self.X[order[feature, position], feature]
        hi = self.X[order[feature, position + 1], feature]
        return float(0.5 * (lo + hi))

    # ------------------------------------------------------------------
    # recursion state
    # ------------------------------------------------------------------
    def partition(self, order, left_indices, right_indices=None):
        """Split a node's sorted order by membership, preserving order.

        Boolean compression is stable, so each child's per-feature order
        is exactly what re-argsorting the child would produce (mergesort
        ties resolve to ascending row ids in both). ``right_indices`` is
        part of the shared backend signature but unused here — the right
        order falls out of the same membership mask.
        """
        member = self._member
        member[left_indices] = True
        keep = member[order]
        member[left_indices] = False
        d = order.shape[0]
        n_right = order.shape[1] - left_indices.size
        left = order[keep].reshape(d, left_indices.size)
        right = order[~keep].reshape(d, n_right)
        return left, right


# ----------------------------------------------------------------------
# the shared gain kernel and impurity functions
# ----------------------------------------------------------------------
def _children_gain(
    ok, node_impurity, node_weight, left_w, left_impurity, right_w, right_impurity
):
    """Impurity decrease of each candidate; ``-inf`` where not allowed.

    This is the single weighted-cumsum gain kernel both criterion paths
    feed: the binary path with two running statistics (total and
    positive weight), the general path with full class-count vectors.
    """
    children = (left_w * left_impurity + right_w * right_impurity) / node_weight
    return np.where(ok, node_impurity - children, -np.inf)


def _impurity_from_p(criterion, p):
    """Binary impurity from positive-class fractions (no zero guards)."""
    if criterion == "gini":
        return 2.0 * p * (1.0 - p)
    entropy = -(
        np.where(p > 0, p * np.log2(p), 0.0)
        + np.where(p < 1, (1.0 - p) * np.log2(1.0 - p), 0.0)
    )
    return entropy


def _scalar_impurity_binary(criterion, p) -> float:
    """Node-level binary impurity on a scalar fraction; identical
    floating-point ops to the array kernel, without the array overhead."""
    if criterion == "gini":
        return 2.0 * p * (1.0 - p)
    left = p * np.log2(p) if p > 0 else 0.0
    right = (1.0 - p) * np.log2(1.0 - p) if p < 1 else 0.0
    return -(left + right)


def _impurity_binary(criterion, positive_weight, total_weight):
    safe = np.where(total_weight > 0, total_weight, 1.0)
    p = positive_weight / safe
    if criterion == "gini":
        return 2.0 * p * (1.0 - p)
    with np.errstate(divide="ignore", invalid="ignore"):
        return _impurity_from_p("entropy", p)


def _impurity(criterion, counts, totals):
    totals = np.asarray(totals, dtype=np.float64).reshape(-1, 1)
    safe = np.where(totals > 0, totals, 1.0)
    p = counts / safe
    if criterion == "gini":
        return 1.0 - (p**2).sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        logp = np.where(p > 0, np.log2(p), 0.0)
    return -(p * logp).sum(axis=1)

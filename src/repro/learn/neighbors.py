"""Brute-force k-nearest-neighbours classifier.

Besides serving as an extra baseline, the fairness substrate uses nearest
neighbours for the *consistency* individual-fairness metric (Zemel et al.),
which AIF360 also exposes.
"""

from __future__ import annotations

import numpy as np

from ..serialize import labels_from_state, labels_to_state, serializable
from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_labels,
    check_matrix,
)


def nearest_neighbor_indices(
    X_train: np.ndarray,
    X_query: np.ndarray,
    n_neighbors: int,
    train_sq: np.ndarray = None,
) -> np.ndarray:
    """Indices (into ``X_train``) of each query row's nearest neighbours.

    Euclidean distance, computed blockwise to bound memory. Callers that
    query the same training matrix repeatedly (e.g. per-target imputation)
    can pass ``train_sq = (X_train**2).sum(axis=1)`` to skip recomputing the
    training-row norms on every call.
    """
    X_train = check_matrix(X_train, "X_train")
    X_query = check_matrix(X_query, "X_query")
    if X_train.shape[1] != X_query.shape[1]:
        raise ValueError("train and query dimensionality differ")
    k = min(n_neighbors, X_train.shape[0])
    if train_sq is None:
        train_sq = (X_train**2).sum(axis=1)
    out = np.empty((X_query.shape[0], k), dtype=np.int64)
    block = 512
    for start in range(0, X_query.shape[0], block):
        q = X_query[start : start + block]
        distances = (q**2).sum(axis=1)[:, None] - 2.0 * q @ X_train.T + train_sq
        part = np.argpartition(distances, kth=k - 1, axis=1)[:, :k]
        # order the k candidates by actual distance for deterministic output
        rows = np.arange(part.shape[0])[:, None]
        order = np.argsort(distances[rows, part], axis=1, kind="mergesort")
        out[start : start + block] = part[rows, order]
    return out


@serializable
class KNeighborsClassifier(BaseEstimator, ClassifierMixin):
    """Majority-vote classification over the k nearest training points."""

    def __init__(self, n_neighbors: int = 5):
        self.n_neighbors = n_neighbors

    def fit(self, X, y, sample_weight=None) -> "KNeighborsClassifier":
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        X = check_matrix(X)
        y = check_labels(y, X.shape[0])
        self.classes_, self._y_codes = np.unique(y, return_inverse=True)
        self._X = X
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("_X")
        neighbors = nearest_neighbor_indices(self._X, X, self.n_neighbors)
        votes = self._y_codes[neighbors]
        proba = np.zeros((votes.shape[0], len(self.classes_)))
        for k in range(len(self.classes_)):
            proba[:, k] = (votes == k).mean(axis=1)
        return proba

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def to_state(self) -> dict:
        self._check_fitted("_X")
        return {
            "params": {"n_neighbors": self.n_neighbors},
            "classes_": labels_to_state(self.classes_),
            "X": self._X,
            "y_codes": self._y_codes,
        }

    @classmethod
    def from_state(cls, state: dict) -> "KNeighborsClassifier":
        model = cls(**state["params"])
        model.classes_ = labels_from_state(state["classes_"])
        model._X = np.asarray(state["X"], dtype=np.float64)
        model._y_codes = np.asarray(state["y_codes"], dtype=np.int64)
        return model

"""Matrix-level imputation (mean / median / most-frequent).

This is the scikit-learn-style primitive; the lifecycle-level
missing-value handlers (complete-case, mode, learned imputation on raw
frames) live in :mod:`repro.core.missing_values` and operate *before*
featurization, as the paper's data lifecycle prescribes.
"""

from __future__ import annotations

import numpy as np

from ..serialize import serializable
from .base import BaseEstimator, TransformerMixin

_STRATEGIES = ("mean", "median", "most_frequent", "constant")


@serializable
class SimpleImputer(BaseEstimator, TransformerMixin):
    """Fill NaNs in a numeric matrix with a per-column statistic.

    Statistics are computed during :meth:`fit` (training data only) and then
    applied to any split, matching the isolation requirement.
    """

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0):
        if strategy not in _STRATEGIES:
            raise ValueError(f"strategy must be one of {_STRATEGIES}")
        self.strategy = strategy
        self.fill_value = fill_value

    def fit(self, X, y=None) -> "SimpleImputer":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("SimpleImputer expects a 2-D matrix")
        statistics = np.empty(X.shape[1])
        for j in range(X.shape[1]):
            column = X[:, j]
            present = column[~np.isnan(column)]
            if self.strategy == "constant":
                statistics[j] = self.fill_value
            elif present.size == 0:
                statistics[j] = self.fill_value
            elif self.strategy == "mean":
                statistics[j] = present.mean()
            elif self.strategy == "median":
                statistics[j] = float(np.median(present))
            else:  # most_frequent
                values, counts = np.unique(present, return_counts=True)
                statistics[j] = values[np.argmax(counts)]
        self.statistics_ = statistics
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("statistics_")
        X = np.asarray(X, dtype=np.float64).copy()
        if X.ndim != 2 or X.shape[1] != len(self.statistics_):
            raise ValueError(
                f"X shape {X.shape} incompatible with {len(self.statistics_)} fitted columns"
            )
        for j in range(X.shape[1]):
            mask = np.isnan(X[:, j])
            X[mask, j] = self.statistics_[j]
        return X

    def to_state(self) -> dict:
        self._check_fitted("statistics_")
        return {"params": self.get_params(), "statistics_": self.statistics_}

    @classmethod
    def from_state(cls, state: dict) -> "SimpleImputer":
        imputer = cls(**state["params"])
        imputer.statistics_ = np.asarray(state["statistics_"], dtype=np.float64)
        return imputer

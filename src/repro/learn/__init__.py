"""ML substrate with the scikit-learn estimator contract.

Provides everything the FairPrep lifecycle consumes: linear models and
decision trees (the paper's baselines), feature scalers and encoders,
pipelines, seeded cross-validation / grid search, and accuracy metrics.
"""

from .base import (
    BaseEstimator,
    ClassifierMixin,
    NotFittedError,
    TransformerMixin,
    check_labels,
    check_matrix,
    check_sample_weight,
    clone,
)
from .encoders import FrequencyEncoder, SVDEmbeddingEncoder, TargetEncoder
from .impute import SimpleImputer
from .linear import LogisticRegressionGD, SGDClassifier
from .metrics import (
    accuracy_score,
    balanced_accuracy_score,
    binary_counts,
    brier_score,
    confusion_matrix,
    f1_score,
    log_loss,
    precision_score,
    recall_score,
    roc_auc_score,
)
from .model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)
from .histogram import HistogramBinning, HistogramSplitter
from .naive_bayes import GaussianNB
from .neighbors import KNeighborsClassifier, nearest_neighbor_indices
from .pipeline import Pipeline, make_pipeline
from .splitter import Presort
from .preprocessing import (
    MISSING_CATEGORY,
    UNSEEN_CATEGORY,
    LabelEncoder,
    MinMaxScaler,
    NoOpScaler,
    OneHotEncoder,
    StandardScaler,
)
from .tree import DecisionTreeClassifier

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "DecisionTreeClassifier",
    "FrequencyEncoder",
    "GaussianNB",
    "GridSearchCV",
    "HistogramBinning",
    "HistogramSplitter",
    "KFold",
    "KNeighborsClassifier",
    "LabelEncoder",
    "LogisticRegressionGD",
    "MISSING_CATEGORY",
    "MinMaxScaler",
    "NoOpScaler",
    "NotFittedError",
    "OneHotEncoder",
    "ParameterGrid",
    "Pipeline",
    "Presort",
    "SGDClassifier",
    "SVDEmbeddingEncoder",
    "SimpleImputer",
    "StandardScaler",
    "TargetEncoder",
    "StratifiedKFold",
    "TransformerMixin",
    "UNSEEN_CATEGORY",
    "accuracy_score",
    "balanced_accuracy_score",
    "binary_counts",
    "brier_score",
    "check_labels",
    "check_matrix",
    "check_sample_weight",
    "clone",
    "confusion_matrix",
    "cross_val_score",
    "f1_score",
    "log_loss",
    "make_pipeline",
    "nearest_neighbor_indices",
    "precision_score",
    "recall_score",
    "roc_auc_score",
    "train_test_split",
]

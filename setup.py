"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build an editable
wheel. ``python setup.py develop`` provides the equivalent editable install
using only setuptools. All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

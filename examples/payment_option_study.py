"""Ann's payment-option study (the paper's Sections 1.1 and 4).

A data scientist investigates how different fairness-enhancing
interventions affect her payment-option classifier, on customer data where
the self-reported ``age`` attribute is missing far more often for women.
Mirrors the paper's example code: fixed seeds, a learned (Datawig-style)
imputer for age, standardized features, logistic regression, and a set of
pre-processing interventions — each run writes its metrics to disk.

Run with:  python examples/payment_option_study.py
"""

import os
import tempfile

from repro.analysis import format_table
from repro.core import (
    DIRemover,
    DatawigImputer,
    LogisticRegression,
    NoIntervention,
    PaymentOptionGenderExperiment,
    ResultsStore,
    ReweighingPreProcessor,
)
from repro.learn import StandardScaler


def main() -> None:
    # Fixed random seeds for reproducibility (paper §4 example)
    seeds = [46947, 71735, 94246]
    interventions = [
        ("no intervention", NoIntervention),
        ("reweighing", ReweighingPreProcessor),
        ("di-remover (0.5)", lambda: DIRemover(0.5)),
    ]

    output = os.path.join(tempfile.gettempdir(), "payment_option_runs.jsonl")
    if os.path.exists(output):
        os.remove(output)
    store = ResultsStore(output)

    rows = []
    for seed in seeds:
        for label, intervention in interventions:
            experiment = PaymentOptionGenderExperiment(
                random_seed=seed,
                dataset_size=3000,
                missing_value_handler=DatawigImputer(target_columns=["age"]),
                numeric_attribute_scaler=StandardScaler(),
                learner=LogisticRegression(tuned=True),
                pre_processor=intervention(),
                results_store=store,
            )
            result = experiment.run()
            rows.append([
                seed,
                label,
                result.test_metrics["overall__accuracy"],
                result.test_metrics["group__disparate_impact"],
                result.test_metrics_incomplete.get("overall__accuracy", float("nan")),
                result.test_metrics_complete.get("overall__accuracy", float("nan")),
            ])

    print(format_table(
        ["seed", "intervention", "accuracy", "DI", "acc(age imputed)", "acc(age present)"],
        rows,
    ))
    print(f"\nper-run metric records written to {output}")
    print(f"({len(ResultsStore(output).load())} records; load them with ResultsStore)")


if __name__ == "__main__":
    main()

"""In-processing interventions on the COMPAS recidivism data.

The paper integrates adversarial debiasing (Zhang et al.) as a learner
(Section 4); this study compares the in-processing family against the
plain baseline on the propublica dataset:

* plain logistic regression;
* adversarial debiasing at two adversary weights;
* prejudice remover at two fairness-regularizer strengths.

Recidivism prediction uses race as the protected attribute; the favorable
outcome is *not* being rearrested.

Run with:  python examples/propublica_inprocessing_study.py
"""

from repro.analysis import format_table, summary
from repro.core import (
    AdversarialDebiasingLearner,
    Experiment,
    LogisticRegression,
    PrejudiceRemoverLearner,
)
from repro.datasets import load_dataset


def main() -> None:
    frame, spec = load_dataset("propublica", n=3000)
    seeds = [46947, 71735, 94246]
    learners = [
        ("logistic regression", lambda: LogisticRegression(tuned=False)),
        ("adv. debiasing (w=0.1)", lambda: AdversarialDebiasingLearner(0.1, num_epochs=25)),
        ("adv. debiasing (w=0.5)", lambda: AdversarialDebiasingLearner(0.5, num_epochs=25)),
        ("prejudice remover (eta=1)", lambda: PrejudiceRemoverLearner(eta=1.0)),
        ("prejudice remover (eta=25)", lambda: PrejudiceRemoverLearner(eta=25.0)),
    ]

    rows = []
    for label, factory in learners:
        accuracies, dis, eods = [], [], []
        for seed in seeds:
            result = Experiment(
                frame, spec, random_seed=seed, learner=factory()
            ).run()
            accuracies.append(result.test_metrics["overall__accuracy"])
            dis.append(result.test_metrics["group__disparate_impact"])
            eods.append(result.test_metrics["group__equal_opportunity_difference"])
        rows.append([
            label,
            summary(accuracies)["mean"],
            summary(dis)["mean"],
            summary(eods)["mean"],
        ])

    print(f"propublica (n={frame.num_rows}), protected={spec.default_protected}, "
          f"{len(seeds)} seeds\n")
    print(format_table(["learner", "accuracy", "DI", "EOD"], rows))
    print(
        "\nreading: DI closer to 1 and EOD closer to 0 = fairer; the"
        " in-processing knobs trade accuracy for group parity."
    )


if __name__ == "__main__":
    main()

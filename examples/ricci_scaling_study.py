"""Mini Figure 3: feature scaling makes or breaks SGD logistic regression.

The ricci exam scores live on a raw 0-100 scale. Trained on them directly,
the SGD-based logistic regression frequently fails to learn a usable model
(accuracy below 0.5), while the decision tree does not care — the paper's
Figure 3. This example runs both learners with and without standardization.

Run with:  python examples/ricci_scaling_study.py
"""

from repro.analysis import figure3_series, figure3_shape_checks, render_figure3
from repro.core import DecisionTree, GridSpec, LogisticRegression, run_grid
from repro.learn import NoOpScaler, StandardScaler


def main() -> None:
    grid = GridSpec(
        seeds=[46947, 71735, 94246, 27182, 31415, 16180],
        learners=[
            lambda: LogisticRegression(tuned=True),
            lambda: DecisionTree(tuned=True, param_grid={"max_depth": [3, 5, 10]}),
        ],
        scalers=[lambda: StandardScaler(), lambda: NoOpScaler()],
    )
    print(f"executing {grid.size()} ricci runs ...")
    results = run_grid(
        "ricci",
        grid,
        progress=lambda done, total, _: print(f"  {done}/{total}", end="\r"),
    )
    panels = figure3_series(results)
    print("\n" + render_figure3(panels))
    checks = figure3_shape_checks(panels)
    print(
        f"\nshape check: unscaled LR failure rate = "
        f"{checks['lr_mean_unscaled_failure_rate']:.0%}; decision-tree "
        f"scaled-vs-unscaled KS distance = {checks['dt_mean_scaling_ks_distance']:.2f}"
    )


if __name__ == "__main__":
    main()

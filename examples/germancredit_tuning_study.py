"""Mini Figure 2: impact of hyperparameter tuning on outcome variability.

Runs tuned and untuned logistic-regression baselines on germancredit under
several interventions and a handful of seeds, then prints the per-panel
summary: mean accuracy and the variance of the disparate-impact outcome,
tuned vs untuned. The full-scale version lives in
benchmarks/bench_fig2_tuning.py.

Run with:  python examples/germancredit_tuning_study.py
"""

from repro.analysis import figure2_series, figure2_shape_checks, render_figure2
from repro.core import (
    DIRemover,
    GridSpec,
    LogisticRegression,
    NoIntervention,
    ReweighingPreProcessor,
    run_grid,
)


def main() -> None:
    grid = GridSpec(
        seeds=[46947, 71735, 94246, 27182],
        learners=[
            lambda: LogisticRegression(tuned=False),
            lambda: LogisticRegression(tuned=True),
        ],
        interventions=[
            NoIntervention,
            ReweighingPreProcessor,
            lambda: DIRemover(0.5),
        ],
    )
    print(f"executing {grid.size()} germancredit runs ...")
    results = run_grid(
        "germancredit",
        grid,
        progress=lambda done, total, _: print(f"  {done}/{total}", end="\r"),
    )
    panels = figure2_series(results)
    print("\n" + render_figure2(panels))
    checks = figure2_shape_checks(panels)
    print(
        f"\nshape check: tuning reduced fairness-outcome variance in "
        f"{checks['variance_reduced_fraction']:.0%} of panels and did not "
        f"hurt accuracy in {checks['accuracy_not_hurt_fraction']:.0%}"
    )


if __name__ == "__main__":
    main()

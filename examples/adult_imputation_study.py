"""Mini Figures 4 and 5: missing-value imputation on the adult dataset.

Compares three treatments of incomplete records — complete-case analysis,
mode imputation, and learned (Datawig-style) imputation — and reports:

* accuracy on originally-incomplete vs complete test records (Figure 4);
* accuracy and disparate impact of complete-case analysis vs inclusion of
  imputed records (Figure 5).

Run with:  python examples/adult_imputation_study.py
"""

from repro.analysis import (
    figure4_series,
    figure4_strategy_comparison,
    figure5_series,
    render_figure4,
    render_figure5,
)
from repro.core import (
    CompleteCaseAnalysis,
    DatawigImputer,
    GridSpec,
    LogisticRegression,
    ModeImputer,
    run_grid,
)


def main() -> None:
    grid = GridSpec(
        seeds=[46947, 71735, 94246],
        learners=[lambda: LogisticRegression(tuned=False)],
        missing_value_handlers=[
            lambda: CompleteCaseAnalysis(),
            lambda: ModeImputer(),
            lambda: DatawigImputer(),
        ],
    )
    print(f"executing {grid.size()} adult runs (subsampled dataset) ...")
    results = run_grid(
        "adult",
        grid,
        dataset_size=6000,
        progress=lambda done, total, _: print(f"  {done}/{total}", end="\r"),
    )

    print("\nFigure 4 — accuracy on imputed vs complete test records:")
    fig4 = figure4_series(results)
    print(render_figure4(fig4))
    comparison = figure4_strategy_comparison(fig4, "ModeImputer", "LearnedImputer(all)")
    print(
        f"\nmode vs learned imputation on imputed records: "
        f"mode mean={comparison['ModeImputer']['mean']:.3f}, "
        f"learned mean={comparison['LearnedImputer(all)']['mean']:.3f}, "
        f"no significant difference={comparison['no_significant_difference']}"
    )

    print("\nFigure 5 — complete-case analysis vs inclusion of imputed records:")
    print(render_figure5(figure5_series(results)))


if __name__ == "__main__":
    main()

"""Serving demo: train → export to a registry → reload → score → monitor.

Trains the adult-dataset tuned decision-tree pipeline with mode imputation,
publishes the fitted pipeline into a file-backed model registry, reloads it
the way a serving process would, scores the held-out batch through the
batch engine and the single-record fast path, and prints the sliding-window
fairness metrics (with four-fifths-rule alerting) the runtime monitor
collects along the way.

Run with:  python examples/serving_demo.py
"""

import tempfile

from repro.core import DecisionTree, Experiment, ModeImputer
from repro.datasets import load_dataset
from repro.frame import train_validation_test_masks
from repro.serve import FairnessMonitor, ModelRegistry, ScoringEngine

ADULT_ROWS = 4000  # scaled down so the tuned grid finishes in seconds
SEED = 42


def main() -> None:
    frame, spec = load_dataset("adult", n=ADULT_ROWS)
    print(f"dataset: {spec.name}  rows={frame.num_rows}  "
          f"protected={spec.default_protected}")

    # ---- 1. train the tuned pipeline -------------------------------------
    experiment = Experiment(
        frame=frame,
        spec=spec,
        random_seed=SEED,
        learner=DecisionTree(tuned=True),
        missing_value_handler=ModeImputer(),
    )
    prepared = experiment.prepare()
    trained = experiment.train_candidates(prepared)
    result = experiment.evaluate(prepared, trained)
    print(f"trained: {result.best_candidate.learner}  "
          f"params={result.best_candidate.best_params}")
    print(f"test accuracy (in-process): "
          f"{result.test_metrics['overall__accuracy']:.4f}")

    with tempfile.TemporaryDirectory() as root:
        # ---- 2. export into the registry and tag it production -----------
        registry = ModelRegistry(root)
        record = experiment.export_pipeline(
            prepared, trained, result, registry=registry, tags=["production"]
        )
        print(f"\npublished model {record['model_id']} "
              f"(schema {record['schema_fingerprint']})")

        # ---- 3. reload as a serving process would ------------------------
        pipeline = ModelRegistry(root).load_pipeline("production")
        monitor = FairnessMonitor(
            pipeline.protected_attribute,
            window_size=2000,
            min_observations=50,
        )
        engine = ScoringEngine(pipeline, monitor=monitor)

        # ---- 4. score the held-out batch ---------------------------------
        _, _, test_mask = train_validation_test_masks(
            frame.num_rows, 0.7, 0.1, SEED
        )
        raw_test = frame.mask(test_mask)
        batch = engine.score_frame(raw_test)
        favorable = float((batch.labels == 1.0).mean())
        print(f"\nscored {batch.num_scored} held-out rows; "
              f"favorable rate {favorable:.4f}")
        metrics = engine.evaluate_frame(raw_test)
        assert metrics["overall__accuracy"] == result.test_metrics["overall__accuracy"]
        print("reloaded accuracy matches the in-process run exactly: "
              f"{metrics['overall__accuracy']:.4f}")

        # ---- 5. single-record fast path ----------------------------------
        record_row = {c: raw_test.col(c).values[0] for c in raw_test.columns}
        out = engine.score_record(record_row)
        print(f"\nsingle-record fast path: label={out['label']} "
              f"score={out['score']:.4f} decision={out['decision']!r}")

        # ---- 6. monitored fairness metrics -------------------------------
        print("\nmonitored window (last "
              f"{int(monitor.snapshot()['window'])} records):")
        for name, value in sorted(monitor.snapshot().items()):
            print(f"  {name:32s} {value: .4f}")
        alerts = monitor.check()
        if alerts:
            print("\nALERTS:")
            for alert in alerts:
                print(f"  ! {alert.describe()}")
        else:
            print("\nno fairness alerts in the current window")


if __name__ == "__main__":
    main()

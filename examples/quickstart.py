"""Quickstart: one FairPrep evaluation run, end to end.

Configures the lifecycle on the germancredit dataset — standardized
features, a grid-tuned logistic regression, the reweighing intervention —
runs it under a fixed seed, and prints the key fairness/accuracy metrics
from the held-out test set.

Run with:  python examples/quickstart.py
"""

from repro.core import Experiment, LogisticRegression, ReweighingPreProcessor
from repro.datasets import load_dataset
from repro.learn import StandardScaler


def main() -> None:
    frame, spec = load_dataset("germancredit")
    print(f"dataset: {spec.name}  rows={frame.num_rows}  "
          f"protected={spec.default_protected}")

    experiment = Experiment(
        frame=frame,
        spec=spec,
        random_seed=46947,  # fixed seed -> byte-identical reruns
        learner=LogisticRegression(tuned=True),
        numeric_attribute_scaler=StandardScaler(),
        pre_processor=ReweighingPreProcessor(),
    )
    result = experiment.run()

    print(f"\nsplit sizes: {result.sizes}")
    print(f"chosen model: {result.best_candidate.learner}")
    print(f"tuned hyperparameters: {result.best_candidate.best_params}")

    metrics = result.test_metrics
    print("\nheld-out test set:")
    for name in (
        "overall__accuracy",
        "privileged__accuracy",
        "unprivileged__accuracy",
        "group__disparate_impact",
        "group__statistical_parity_difference",
        "group__false_negative_rate_difference",
        "group__theil_index",
    ):
        print(f"  {name:45s} {metrics[name]: .4f}")


if __name__ == "__main__":
    main()

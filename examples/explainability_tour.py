"""Human-in-the-loop tour: explanations, threshold sweeps, terminal plots.

The paper's §7 aims FairPrep at less technical users. This example shows
the affordances built for that: after one germancredit run it

1. prints a plain-language fairness report (MetricTextExplainer);
2. sweeps the decision threshold and shows the accuracy/parity trade-off;
3. renders a terminal scatter plot comparing two interventions.

Run with:  python examples/explainability_tour.py
"""

import numpy as np

from repro.analysis import (
    ascii_scatter,
    best_threshold,
    format_table,
    threshold_sweep,
)
from repro.core import (
    Experiment,
    Featurizer,
    LogisticRegression,
    ReweighingPreProcessor,
)
from repro.datasets import GERMANCREDIT_SPEC, load_dataset
from repro.fairness import ClassificationMetric, MetricTextExplainer
from repro.learn import StandardScaler


def main() -> None:
    frame, spec = load_dataset("germancredit")

    # ---- 1. plain-language report on one run -------------------------
    featurizer = Featurizer(spec, StandardScaler()).fit(frame)
    data = featurizer.transform(frame)
    model = LogisticRegression(tuned=True).fit_model(data, seed=46947)
    scores = model.predict_scores(data.features)
    pred = data.with_predictions(labels=model.predict(data.features), scores=scores)
    metric = ClassificationMetric(
        data, pred, featurizer.unprivileged_groups, featurizer.privileged_groups
    )
    print("=== plain-language fairness report ===")
    print(MetricTextExplainer(metric).report())

    # ---- 2. threshold sweep ------------------------------------------
    print("\n=== decision-threshold sweep ===")
    sweep = threshold_sweep(
        data, scores, featurizer.unprivileged_groups, featurizer.privileged_groups,
        num_thresholds=11,
    )
    print(format_table(
        ["threshold", "accuracy", "selection_rate", "parity_diff"],
        [[r["threshold"], r["accuracy"], r["selection_rate"],
          r["statistical_parity_difference"]] for r in sweep],
    ))
    chosen = best_threshold(sweep, fairness_bound=0.05)
    print(f"\nbest threshold with |parity| <= 0.05: {chosen['threshold']:.2f} "
          f"(accuracy {chosen['accuracy']:.3f})")

    # ---- 3. terminal scatter of two interventions --------------------
    print("\n=== accuracy vs DI: baseline vs reweighing (8 seeds) ===")
    conditions = {"no intervention": ([], []), "reweighing": ([], [])}
    for seed in range(8):
        for label, pre in (
            ("no intervention", None),
            ("reweighing", ReweighingPreProcessor()),
        ):
            result = Experiment(
                frame, spec, random_seed=seed,
                learner=LogisticRegression(tuned=False),
                pre_processor=pre,
            ).run()
            conditions[label][0].append(result.test_metrics["group__disparate_impact"])
            conditions[label][1].append(result.test_metrics["overall__accuracy"])
    print(ascii_scatter(conditions, x_label="DI", y_label="accuracy"))


if __name__ == "__main__":
    main()

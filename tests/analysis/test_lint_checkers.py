"""Paired good/bad fixtures for every ``repro lint`` rule.

Each test asserts the rule fires exactly where intended — the bad
variant produces the finding, the good variant (the idiom the rule
prescribes) stays clean. Scoped rules (strict-json) are additionally
checked to stay silent outside their scope.
"""

from repro.analysis.lint import CHECKER_NAMES, lint_paths, registered_checkers


def run(tmp_path, files, select):
    pkg = tmp_path / "pkg"
    for rel, source in files.items():
        target = pkg / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return lint_paths(str(pkg), select=[select], rel_prefix="")


def rules(report):
    return [finding.rule for finding in report.findings]


def test_registry_has_all_advertised_checkers():
    names = {checker.name for checker in registered_checkers()}
    assert set(CHECKER_NAMES) <= names
    assert len(CHECKER_NAMES) >= 8
    for checker in registered_checkers():
        assert checker.description  # every rule explains itself


class TestNoPickle:
    def test_import_flagged(self, tmp_path):
        report = run(tmp_path, {"m.py": "import pickle\n"}, "no-pickle")
        assert rules(report) == ["no-pickle"]

    def test_from_import_flagged(self, tmp_path):
        report = run(
            tmp_path, {"m.py": "from marshal import loads\n"}, "no-pickle"
        )
        assert rules(report) == ["no-pickle"]

    def test_allow_pickle_true_flagged(self, tmp_path):
        src = "import numpy as np\nd = np.load(p, allow_pickle=True)\n"
        report = run(tmp_path, {"m.py": src}, "no-pickle")
        assert rules(report) == ["no-pickle"]

    def test_good_json_and_allow_pickle_false(self, tmp_path):
        src = (
            "import json\nimport numpy as np\n"
            "d = np.load(p, allow_pickle=False)\n"
        )
        report = run(tmp_path, {"m.py": src}, "no-pickle")
        assert report.findings == []


class TestStrictJson:
    BAD = "import json\ndef reply(x):\n    return json.dumps(x)\n"
    GOOD = (
        "import json\ndef reply(x):\n"
        "    return json.dumps(x, allow_nan=False)\n"
    )

    def test_raw_dumps_in_serve_flagged(self, tmp_path):
        report = run(tmp_path, {"serve/m.py": self.BAD}, "strict-json")
        assert rules(report) == ["strict-json"]

    def test_allow_nan_false_is_clean(self, tmp_path):
        report = run(tmp_path, {"serve/m.py": self.GOOD}, "strict-json")
        assert report.findings == []

    def test_outside_serve_is_out_of_scope(self, tmp_path):
        report = run(tmp_path, {"core/m.py": self.BAD}, "strict-json")
        assert report.findings == []


class TestFingerprintDeterminism:
    def test_clock_in_fingerprint_flagged(self, tmp_path):
        src = (
            "import hashlib, json, time\n"
            "def fingerprint(payload):\n"
            "    payload['at'] = time.time()\n"
            "    blob = json.dumps(payload, sort_keys=True)\n"
            "    return hashlib.sha256(blob.encode()).hexdigest()\n"
        )
        report = run(tmp_path, {"m.py": src}, "fingerprint-determinism")
        assert rules(report) == ["fingerprint-determinism"]

    def test_unsorted_dumps_flagged_even_unnamed(self, tmp_path):
        # the hashlib+json.dumps shape marks a fingerprint derivation even
        # when the function name does not say so
        src = (
            "import hashlib, json\n"
            "def derive_key(payload):\n"
            "    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()\n"
        )
        report = run(tmp_path, {"m.py": src}, "fingerprint-determinism")
        assert rules(report) == ["fingerprint-determinism"]

    def test_canonical_form_is_clean(self, tmp_path):
        src = (
            "import hashlib, json\n"
            "def fingerprint(payload):\n"
            "    blob = json.dumps(payload, sort_keys=True,\n"
            "                      separators=(',', ':'))\n"
            "    return hashlib.sha256(blob.encode()).hexdigest()\n"
        )
        report = run(tmp_path, {"m.py": src}, "fingerprint-determinism")
        assert report.findings == []

    def test_clock_outside_fingerprints_is_fine(self, tmp_path):
        src = "import time\ndef now():\n    return time.time()\n"
        report = run(tmp_path, {"m.py": src}, "fingerprint-determinism")
        assert report.findings == []


class TestCrashSafeWrite:
    def test_rename_without_fsync_flagged(self, tmp_path):
        src = (
            "import os\n"
            "def save(path, blob):\n"
            "    with open(path + '.tmp', 'w') as h:\n"
            "        h.write(blob)\n"
            "    os.replace(path + '.tmp', path)\n"
        )
        report = run(tmp_path, {"m.py": src}, "crash-safe-write")
        assert rules(report) == ["crash-safe-write"]

    def test_direct_manifest_overwrite_flagged(self, tmp_path):
        src = (
            "def save(blob):\n"
            "    with open('manifest.json', 'w') as h:\n"
            "        h.write(blob)\n"
        )
        report = run(tmp_path, {"m.py": src}, "crash-safe-write")
        assert rules(report) == ["crash-safe-write"]

    def test_full_idiom_is_clean(self, tmp_path):
        src = (
            "import os\n"
            "def save(path, blob):\n"
            "    with open(path + '.tmp', 'w') as h:\n"
            "        h.write(blob)\n"
            "        h.flush()\n"
            "        os.fsync(h.fileno())\n"
            "    os.replace(path + '.tmp', path)\n"
        )
        report = run(tmp_path, {"m.py": src}, "crash-safe-write")
        assert report.findings == []

    def test_scratch_files_are_out_of_scope(self, tmp_path):
        src = (
            "def save(blob):\n"
            "    with open('notes.txt', 'w') as h:\n"
            "        h.write(blob)\n"
        )
        report = run(tmp_path, {"m.py": src}, "crash-safe-write")
        assert report.findings == []


class TestForkSafety:
    def test_import_time_lock_flagged(self, tmp_path):
        src = "import threading\n_LOCK = threading.Lock()\n"
        report = run(tmp_path, {"m.py": src}, "fork-safety")
        assert rules(report) == ["fork-safety"]

    def test_rearm_hook_makes_it_clean(self, tmp_path):
        src = (
            "import os, threading\n"
            "_LOCK = threading.Lock()\n"
            "def _rearm():\n"
            "    global _LOCK\n"
            "    _LOCK = threading.Lock()\n"
            "os.register_at_fork(after_in_child=_rearm)\n"
        )
        report = run(tmp_path, {"m.py": src}, "fork-safety")
        assert report.findings == []

    def test_lock_inside_function_is_fine(self, tmp_path):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
        )
        report = run(tmp_path, {"m.py": src}, "fork-safety")
        assert report.findings == []


GUARDED_CLASS = (
    "import threading\n"
    "class C:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._count = 0  # guarded-by: _lock\n"
    "        self._items = []  # guarded-by: _lock\n"
    "{body}"
)


class TestGuardedBy:
    def test_unguarded_mutation_flagged(self, tmp_path):
        src = GUARDED_CLASS.format(
            body="    def bump(self):\n        self._count += 1\n"
        )
        report = run(tmp_path, {"m.py": src}, "guarded-by")
        assert rules(report) == ["guarded-by"]
        assert "C.bump" in report.findings[0].message

    def test_unguarded_mutator_method_flagged(self, tmp_path):
        src = GUARDED_CLASS.format(
            body="    def push(self, x):\n        self._items.append(x)\n"
        )
        report = run(tmp_path, {"m.py": src}, "guarded-by")
        assert rules(report) == ["guarded-by"]

    def test_mutation_under_lock_is_clean(self, tmp_path):
        src = GUARDED_CLASS.format(
            body=(
                "    def bump(self):\n"
                "        with self._lock:\n"
                "            self._count += 1\n"
                "            self._items.append(self._count)\n"
            )
        )
        report = run(tmp_path, {"m.py": src}, "guarded-by")
        assert report.findings == []

    def test_caller_held_annotation_is_clean(self, tmp_path):
        src = GUARDED_CLASS.format(
            body=(
                "    def _bump_locked(self):  # guarded-by: _lock\n"
                "        self._count += 1\n"
            )
        )
        report = run(tmp_path, {"m.py": src}, "guarded-by")
        assert report.findings == []

    def test_unannotated_attributes_are_free(self, tmp_path):
        src = (
            "class C:\n"
            "    def bump(self):\n"
            "        self.anything = 1\n"
        )
        report = run(tmp_path, {"m.py": src}, "guarded-by")
        assert report.findings == []


class TestSilentExcept:
    def test_continue_only_body_flagged(self, tmp_path):
        src = (
            "def f(items):\n"
            "    for item in items:\n"
            "        try:\n"
            "            item()\n"
            "        except ValueError:\n"
            "            continue\n"
        )
        report = run(tmp_path, {"m.py": src}, "silent-except")
        assert rules(report) == ["silent-except"]

    def test_handled_except_is_clean(self, tmp_path):
        src = (
            "import logging\n"
            "def f(g):\n"
            "    try:\n"
            "        g()\n"
            "    except OSError as err:\n"
            "        logging.warning('g failed: %s', err)\n"
        )
        report = run(tmp_path, {"m.py": src}, "silent-except")
        assert report.findings == []


class TestWireCompat:
    def test_frames_without_protocol_version_flagged(self, tmp_path):
        src = (
            "from proto import send_frame\n"
            "def hello(sock):\n"
            "    send_frame(sock, {'type': 'hello'})\n"
        )
        report = run(tmp_path, {"m.py": src}, "wire-compat")
        assert rules(report) == ["wire-compat"]

    def test_literal_version_field_flagged(self, tmp_path):
        src = "MANIFEST = {'manifest_version': 1}\n"
        report = run(tmp_path, {"m.py": src}, "wire-compat")
        assert rules(report) == ["wire-compat"]

    def test_versioned_frames_are_clean(self, tmp_path):
        src = (
            "from proto import PROTOCOL_VERSION, send_frame\n"
            "def hello(sock):\n"
            "    send_frame(sock, {'type': 'hello',\n"
            "                      'protocol': PROTOCOL_VERSION})\n"
        )
        report = run(tmp_path, {"m.py": src}, "wire-compat")
        assert report.findings == []


class TestNoPrint:
    def test_print_in_library_flagged(self, tmp_path):
        report = run(
            tmp_path, {"serve/m.py": "print('ready')\n"}, "no-print"
        )
        assert rules(report) == ["no-print"]

    def test_cli_module_is_exempt(self, tmp_path):
        report = run(tmp_path, {"cli.py": "print('ready')\n"}, "no-print")
        assert report.findings == []

    def test_log_line_is_the_blessed_path(self, tmp_path):
        src = (
            "from repro import telemetry\n"
            "telemetry.log_line('ready')\n"
        )
        report = run(tmp_path, {"serve/m.py": src}, "no-print")
        assert report.findings == []

"""Self-application: the shipped tree must satisfy its own linter.

This is the acceptance gate the CI ``lint`` job enforces; keeping it in
the test suite too means a plain ``pytest`` run catches an invariant
regression (or an undocumented waiver) without needing the CLI.
"""

import json
import os

import pytest

import repro
from repro.analysis.lint import apply_baseline, lint_paths, load_baseline

# repro is a namespace package (no src/repro/__init__.py), so the package
# directory comes from __path__, not __file__
PACKAGE_ROOT = os.path.abspath(list(repro.__path__)[0])
REPO_ROOT = os.path.dirname(os.path.dirname(PACKAGE_ROOT))
BASELINE = os.path.join(REPO_ROOT, ".lint-baseline.json")


@pytest.fixture(scope="module")
def report():
    return lint_paths(PACKAGE_ROOT)

def test_whole_package_is_lint_clean(report):
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"lint findings in src/repro:\n{rendered}"


def test_run_covers_the_codebase(report):
    assert report.checkers_run >= 8
    assert report.files_checked >= 50


def test_analysis_package_lints_itself_clean():
    lint_root = os.path.join(PACKAGE_ROOT, "analysis", "lint")
    sub = lint_paths(lint_root, rel_prefix="repro/analysis/lint")
    rendered = "\n".join(f.render() for f in sub.findings)
    assert sub.findings == [], f"the linter fails its own rules:\n{rendered}"


def test_committed_baseline_is_empty_and_not_stale(report):
    entries = load_baseline(BASELINE)
    assert entries == [], (
        "the committed baseline must stay empty: fix or waive findings "
        "instead of baselining them"
    )
    split = apply_baseline(report.findings, entries)
    assert split.new == [] and split.stale == []


def test_every_waiver_in_tree_carries_a_reason():
    # _apply_waivers turns reasonless waivers into waiver-syntax findings,
    # so a clean run already implies this; assert it directly anyway so
    # the guarantee survives engine refactors
    from repro.analysis.lint.engine import _WAIVER_RE

    violations = []
    for dirpath, _, filenames in os.walk(PACKAGE_ROOT):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, encoding="utf-8") as handle:
                for lineno, line in enumerate(handle, 1):
                    match = _WAIVER_RE.search(line)
                    if match and "#" in line.split("lint:")[0]:
                        if not match.group("reason"):
                            violations.append(f"{path}:{lineno}")
    assert violations == [], f"reasonless waivers: {violations}"


def test_baseline_file_is_valid_json_with_version():
    with open(BASELINE, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["version"] == 1
    assert isinstance(payload["findings"], list)

"""Unit tests for the analysis layer."""

import numpy as np
import pytest

from repro.analysis import (
    failure_rate,
    figure2_series,
    figure2_shape_checks,
    figure3_series,
    figure3_shape_checks,
    figure4_series,
    figure4_strategy_comparison,
    figure5_series,
    format_table,
    ks_distance,
    no_significant_difference,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    summary,
    variance_ratio,
)
from repro.core import CandidateResult, RunResult


def _run(
    learner="LogisticRegression(tuned)",
    pre="NoIntervention",
    post="NoIntervention",
    scaler="StandardScaler",
    handler="ModeImputer",
    seed=0,
    accuracy=0.8,
    di=0.9,
    fnrd=-0.05,
    fprd=0.02,
    imputed_accuracy=None,
    complete_accuracy=None,
):
    test_metrics = {
        "overall__accuracy": accuracy,
        "group__disparate_impact": di,
        "group__false_negative_rate_difference": fnrd,
        "group__false_positive_rate_difference": fprd,
    }
    return RunResult(
        dataset="demo",
        random_seed=seed,
        components={
            "pre_processor": pre,
            "post_processor": post,
            "scaler": scaler,
            "missing_value_handler": handler,
        },
        candidates=[CandidateResult(learner=learner, validation_metrics={})],
        best_index=0,
        test_metrics=test_metrics,
        test_metrics_incomplete=(
            {"overall__accuracy": imputed_accuracy} if imputed_accuracy is not None else {}
        ),
        test_metrics_complete=(
            {"overall__accuracy": complete_accuracy} if complete_accuracy is not None else {}
        ),
    )


class TestStats:
    def test_summary_ignores_nan(self):
        s = summary([1.0, float("nan"), 3.0])
        assert s["count"] == 2
        assert s["mean"] == 2.0

    def test_summary_empty(self):
        assert summary([])["count"] == 0

    def test_variance_ratio_below_one_for_tighter_sample(self):
        control = [0.1, 0.9, 0.2, 0.8, 0.15, 0.85]
        treated = [0.48, 0.52, 0.49, 0.51, 0.50, 0.50]
        assert variance_ratio(treated, control) < 0.1

    def test_variance_ratio_degenerate(self):
        assert np.isnan(variance_ratio([1.0], [1.0, 2.0]))
        assert np.isnan(variance_ratio([1.0, 2.0], [3.0, 3.0]))

    def test_ks_distance_identical_zero(self):
        a = [0.1, 0.2, 0.3, 0.4]
        assert ks_distance(a, a) == 0.0

    def test_ks_distance_disjoint_one(self):
        assert ks_distance([0.0, 0.1], [5.0, 6.0]) == 1.0

    def test_no_significant_difference_same_distribution(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.85, 0.01, 30)
        b = rng.normal(0.85, 0.01, 30)
        assert no_significant_difference(a, b)

    def test_significant_difference_detected(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.6, 0.01, 30)
        b = rng.normal(0.9, 0.01, 30)
        assert not no_significant_difference(a, b)

    def test_no_significant_difference_needs_samples(self):
        with pytest.raises(ValueError):
            no_significant_difference([1.0], [2.0])

    def test_failure_rate(self):
        assert failure_rate([0.4, 0.6, 0.45, 0.9]) == 0.5


class TestFigure2:
    def _results(self):
        rng = np.random.default_rng(0)
        results = []
        for seed in range(8):
            # untuned: noisy and less accurate; tuned: tight and accurate
            results.append(_run(
                learner="LogisticRegression(default)", seed=seed,
                accuracy=0.65 + rng.normal(0, 0.05),
                di=0.7 + rng.normal(0, 0.25),
            ))
            results.append(_run(
                learner="LogisticRegression(tuned)", seed=seed,
                accuracy=0.78 + rng.normal(0, 0.01),
                di=0.85 + rng.normal(0, 0.05),
            ))
        return results

    def test_panels_keyed_by_learner_intervention_metric(self):
        panels = figure2_series(self._results())
        assert ("LogisticRegression", "no intervention", "DI") in panels
        assert len(panels) == 3  # DI, FNRD, FPRD

    def test_variance_ratio_below_one(self):
        panels = figure2_series(self._results())
        s = panels[("LogisticRegression", "no intervention", "DI")]["summary"]
        assert s["fairness_variance_ratio"] < 1.0
        assert s["accuracy_gain"] > 0.05

    def test_shape_checks(self):
        checks = figure2_shape_checks(figure2_series(self._results()))
        assert checks["panels"] == 3
        assert checks["variance_reduced_fraction"] == 1.0
        assert checks["accuracy_not_hurt_fraction"] == 1.0

    def test_render(self):
        text = render_figure2(figure2_series(self._results()))
        assert "var_ratio" in text
        assert "LogisticRegression" in text


class TestFigure3:
    def _results(self):
        rng = np.random.default_rng(1)
        results = []
        for seed in range(16):
            results.append(_run(
                learner="LogisticRegression(tuned)", scaler="StandardScaler",
                seed=seed, accuracy=0.85 + rng.normal(0, 0.02)))
            results.append(_run(
                learner="LogisticRegression(tuned)", scaler="NoOpScaler",
                seed=seed, accuracy=0.35 + rng.normal(0, 0.05)))
            results.append(_run(
                learner="DecisionTree(tuned)", scaler="StandardScaler",
                seed=seed, accuracy=0.86 + rng.normal(0, 0.02)))
            results.append(_run(
                learner="DecisionTree(tuned)", scaler="NoOpScaler",
                seed=seed, accuracy=0.86 + rng.normal(0, 0.02)))
        return results

    def test_panels(self):
        panels = figure3_series(self._results())
        assert ("LogisticRegression", "no intervention") in panels
        assert ("DecisionTree", "no intervention") in panels

    def test_lr_fails_without_scaling(self):
        panels = figure3_series(self._results())
        s = panels[("LogisticRegression", "no intervention")]["summary"]
        assert s["unscaled_failure_rate"] == 1.0
        assert s["scaled_failure_rate"] == 0.0

    def test_shape_checks(self):
        checks = figure3_shape_checks(figure3_series(self._results()))
        assert checks["lr_mean_unscaled_failure_rate"] > 0.9
        assert checks["dt_mean_scaling_ks_distance"] < 0.5

    def test_render(self):
        assert "fail_rate" in render_figure3(figure3_series(self._results()))


class TestFigure4:
    def _results(self):
        rng = np.random.default_rng(2)
        results = []
        for handler in ("ModeImputer", "LearnedImputer(all)"):
            for seed in range(6):
                results.append(_run(
                    handler=handler, seed=seed,
                    accuracy=0.85,
                    imputed_accuracy=0.88 + rng.normal(0, 0.01),
                    complete_accuracy=0.84 + rng.normal(0, 0.01),
                ))
        return results

    def test_panels_keyed_with_strategy(self):
        panels = figure4_series(self._results())
        assert ("LogisticRegression", "no intervention", "ModeImputer") in panels

    def test_imputed_records_more_accurate(self):
        panels = figure4_series(self._results())
        s = panels[("LogisticRegression", "no intervention", "ModeImputer")]["summary"]
        assert s["imputed_minus_complete"] > 0

    def test_runs_without_strata_skipped(self):
        panels = figure4_series([_run()])  # no imputed metrics
        assert panels == {}

    def test_strategy_comparison(self):
        comparison = figure4_strategy_comparison(
            figure4_series(self._results()), "ModeImputer", "LearnedImputer(all)"
        )
        assert comparison["no_significant_difference"] is True

    def test_render(self):
        assert "imputation" in render_figure4(figure4_series(self._results()))


class TestFigure5:
    def _results(self):
        rng = np.random.default_rng(3)
        results = []
        for handler in ("CompleteCaseAnalysis", "LearnedImputer(all)"):
            for seed in range(6):
                results.append(_run(
                    handler=handler, seed=seed,
                    accuracy=0.85 + rng.normal(0, 0.01),
                    di=0.75 + rng.normal(0, 0.03),
                ))
        return results

    def test_conditions_split(self):
        panels = figure5_series(self._results())
        panel = panels[("LogisticRegression", "no intervention")]
        assert len(panel["complete case"]["accuracy"]) == 6
        assert len(panel["imputed"]["accuracy"]) == 6

    def test_di_no_significant_difference(self):
        panels = figure5_series(self._results())
        s = panels[("LogisticRegression", "no intervention")]["summary"]
        assert s["di_no_significant_difference"] is True

    def test_render(self):
        assert "DI_same?" in render_figure5(figure5_series(self._results()))


class TestFormatTable:
    def test_alignment_and_float_formatting(self):
        text = format_table(["a", "metric"], [["x", 0.12345], ["longer", float("nan")]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "0.123" in text and "nan" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

"""Lint engine mechanics: waivers, the baseline ratchet, reporting.

The checkers themselves are covered in ``test_lint_checkers.py``; these
tests pin down the engine contracts every checker relies on — a waiver
without a reason suppresses nothing, an unused waiver is itself a
finding, and the committed baseline may only shrink.
"""

import json

import pytest

from repro.analysis.lint import (
    BASELINE_VERSION,
    apply_baseline,
    lint_paths,
    load_baseline,
    write_baseline,
)

SILENT = (
    "def f(g):\n"
    "    try:\n"
    "        g()\n"
    "    except OSError:\n"
    "        pass\n"
)


def run_lint(tmp_path, files, select=("silent-except",)):
    pkg = tmp_path / "pkg"
    for rel, source in files.items():
        target = pkg / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return lint_paths(
        str(pkg), select=list(select) if select else None, rel_prefix=""
    )


class TestWaivers:
    def test_unwaived_finding_fires(self, tmp_path):
        report = run_lint(tmp_path, {"mod.py": SILENT})
        assert [f.rule for f in report.findings] == ["silent-except"]
        finding = report.findings[0]
        assert finding.path == "mod.py"
        assert finding.line == 4
        assert finding.render().startswith("mod.py:4:")
        assert "error[silent-except]" in finding.render()

    def test_trailing_waiver_suppresses(self, tmp_path):
        src = SILENT.replace(
            "except OSError:",
            "except OSError:  # lint: allow(silent-except) -- fine here",
        )
        report = run_lint(tmp_path, {"mod.py": src})
        assert report.findings == []

    def test_standalone_waiver_targets_next_code_line(self, tmp_path):
        src = SILENT.replace(
            "    except OSError:",
            "    # lint: allow(silent-except) -- reason starts here\n"
            "    # and flows over a continuation comment line\n"
            "    except OSError:",
        )
        report = run_lint(tmp_path, {"mod.py": src})
        assert report.findings == []

    def test_reasonless_waiver_reports_and_does_not_suppress(self, tmp_path):
        src = SILENT.replace(
            "except OSError:",
            "except OSError:  # lint: allow(silent-except)",
        )
        report = run_lint(tmp_path, {"mod.py": src})
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["silent-except", "waiver-syntax"]

    def test_unused_waiver_is_a_finding(self, tmp_path):
        src = "x = 1  # lint: allow(silent-except) -- nothing to waive\n"
        report = run_lint(tmp_path, {"mod.py": src})
        assert [f.rule for f in report.findings] == ["unused-waiver"]

    def test_waiver_for_other_rule_does_not_suppress(self, tmp_path):
        src = SILENT.replace(
            "except OSError:",
            "except OSError:  # lint: allow(no-pickle) -- wrong rule",
        )
        report = run_lint(tmp_path, {"mod.py": src})
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["silent-except", "unused-waiver"]

    def test_multi_rule_waiver(self, tmp_path):
        src = SILENT.replace(
            "except OSError:",
            "except OSError:  "
            "# lint: allow(silent-except, no-print) -- both intended",
        )
        report = run_lint(
            tmp_path, {"mod.py": src}, select=("silent-except", "no-print")
        )
        assert report.findings == []

    def test_waiver_inside_string_literal_is_ignored(self, tmp_path):
        src = SILENT.replace(
            "        g()\n",
            '        g("# lint: allow(silent-except) -- not a comment")\n',
        )
        report = run_lint(tmp_path, {"mod.py": src})
        assert [f.rule for f in report.findings] == ["silent-except"]


class TestEngine:
    def test_parse_error_is_a_finding(self, tmp_path):
        report = run_lint(tmp_path, {"mod.py": "def broken(:\n"})
        assert [f.rule for f in report.findings] == ["parse-error"]

    def test_unknown_checker_selection_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no-such-rule"):
            run_lint(tmp_path, {"mod.py": "x = 1\n"}, select=("no-such-rule",))

    def test_findings_sorted_by_location(self, tmp_path):
        report = run_lint(
            tmp_path, {"b.py": SILENT, "a.py": SILENT, "sub/c.py": SILENT}
        )
        assert [f.path for f in report.findings] == [
            "a.py", "b.py", "sub/c.py",
        ]
        assert report.files_checked == 3


class TestBaselineRatchet:
    def test_known_findings_are_absorbed(self, tmp_path):
        report = run_lint(tmp_path, {"mod.py": SILENT})
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), report.findings)
        entries = load_baseline(str(baseline_path))
        split = apply_baseline(report.findings, entries)
        assert split.new == [] and split.stale == []
        assert len(split.known) == 1

    def test_baseline_survives_line_drift(self, tmp_path):
        report = run_lint(tmp_path, {"mod.py": SILENT})
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), report.findings)
        # the same offending line, pushed down by unrelated edits above
        drifted = run_lint(tmp_path, {"mod.py": "import os\n\n\n" + SILENT})
        split = apply_baseline(
            drifted.findings, load_baseline(str(baseline_path))
        )
        assert split.new == [] and split.stale == []

    def test_growth_is_rejected(self, tmp_path):
        report = run_lint(tmp_path, {"mod.py": SILENT})
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), report.findings)
        # duplicating the known-bad pattern must NOT ride on its baseline
        # slot: each entry absorbs at most one finding
        grown = run_lint(tmp_path, {"mod.py": SILENT + "\n\n" + SILENT})
        split = apply_baseline(grown.findings, load_baseline(str(baseline_path)))
        assert len(split.known) == 1
        assert len(split.new) == 1

    def test_fixed_findings_go_stale(self, tmp_path):
        report = run_lint(tmp_path, {"mod.py": SILENT})
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), report.findings)
        clean = run_lint(tmp_path, {"mod.py": "x = 1\n"})
        split = apply_baseline(clean.findings, load_baseline(str(baseline_path)))
        assert split.new == [] and split.known == []
        assert len(split.stale) == 1
        assert split.stale[0]["rule"] == "silent-except"

    def test_baseline_version_is_checked(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": BASELINE_VERSION + 1}))
        with pytest.raises(ValueError, match="not a lint baseline"):
            load_baseline(str(bad))

"""Unit tests for the threshold sweep."""

import numpy as np
import pytest

from repro.analysis import best_threshold, threshold_sweep
from repro.fairness import BinaryLabelDataset

PRIV = [{"sex": 1.0}]
UNPRIV = [{"sex": 0.0}]


@pytest.fixture
def scored():
    rng = np.random.default_rng(0)
    n = 500
    sex = (rng.random(n) < 0.5).astype(float)
    labels = (rng.random(n) < 0.4 + 0.2 * sex).astype(float)
    scores = np.clip(0.5 * labels + 0.2 * sex + rng.normal(0, 0.18, n), 0, 1)
    ds = BinaryLabelDataset(
        features=rng.normal(size=(n, 2)),
        labels=labels,
        protected_attributes=sex,
        protected_attribute_names=["sex"],
    )
    return ds, scores


class TestSweep:
    def test_row_count_and_fields(self, scored):
        ds, scores = scored
        rows = threshold_sweep(ds, scores, UNPRIV, PRIV, num_thresholds=11)
        assert len(rows) == 11
        assert set(rows[0]) == {
            "threshold", "accuracy", "balanced_accuracy", "selection_rate",
            "statistical_parity_difference", "disparate_impact",
        }

    def test_selection_rate_monotone_decreasing(self, scored):
        ds, scores = scored
        rows = threshold_sweep(ds, scores, UNPRIV, PRIV, num_thresholds=11)
        rates = [row["selection_rate"] for row in rows]
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))

    def test_extreme_thresholds(self, scored):
        ds, scores = scored
        rows = threshold_sweep(ds, scores, UNPRIV, PRIV, num_thresholds=5)
        assert rows[0]["selection_rate"] == 1.0  # threshold 0 selects everyone

    def test_length_mismatch(self, scored):
        ds, scores = scored
        with pytest.raises(ValueError, match="length"):
            threshold_sweep(ds, scores[:-1], UNPRIV, PRIV)

    def test_min_thresholds(self, scored):
        ds, scores = scored
        with pytest.raises(ValueError):
            threshold_sweep(ds, scores, UNPRIV, PRIV, num_thresholds=1)


class TestBestThreshold:
    def test_unconstrained_maximizes_objective(self, scored):
        ds, scores = scored
        rows = threshold_sweep(ds, scores, UNPRIV, PRIV, num_thresholds=21)
        best = best_threshold(rows, objective="balanced_accuracy")
        assert best["balanced_accuracy"] == max(
            r["balanced_accuracy"] for r in rows if not np.isnan(r["balanced_accuracy"])
        )

    def test_constrained_respects_bound(self, scored):
        ds, scores = scored
        rows = threshold_sweep(ds, scores, UNPRIV, PRIV, num_thresholds=21)
        best = best_threshold(rows, fairness_bound=0.1)
        assert abs(best["statistical_parity_difference"]) <= 0.1

    def test_infeasible_bound_falls_back_to_least_violation(self, scored):
        ds, scores = scored
        rows = threshold_sweep(ds, scores, UNPRIV, PRIV, num_thresholds=21)
        best = best_threshold(rows, fairness_bound=0.0)
        least = min(
            abs(r["statistical_parity_difference"])
            for r in rows
            if not np.isnan(r["statistical_parity_difference"])
        )
        assert abs(best["statistical_parity_difference"]) == pytest.approx(least)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            best_threshold([])

"""Unit tests for the terminal scatter plots."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_scatter,
    figure2_series,
    figure3_series,
    figure5_series,
    plot_figure2_panel,
    plot_figure3_panel,
    plot_figure5_panel,
)

from .test_stats_figures import _run


class TestAsciiScatter:
    def test_basic_structure(self):
        text = ascii_scatter(
            {"a": ([1.0, 2.0], [1.0, 2.0])}, width=20, height=5, title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("+") and lines[1].endswith("+")
        assert len([l for l in lines if l.startswith("|")]) == 5
        assert "legend: o = a" in text

    def test_points_rendered_in_extremes(self):
        text = ascii_scatter(
            {"a": ([0.0, 1.0], [0.0, 1.0])}, width=10, height=5
        )
        body = [l for l in text.splitlines() if l.startswith("|")]
        # lowest-left point on the bottom row, highest-right on the top row
        assert "o" in body[0]
        assert "o" in body[-1]

    def test_two_conditions_two_glyphs(self):
        text = ascii_scatter(
            {"a": ([0.0], [0.0]), "b": ([1.0], [1.0])}, width=10, height=5
        )
        assert "o = a" in text and "x = b" in text
        body = "\n".join(l for l in text.splitlines() if l.startswith("|"))
        assert "o" in body and "x" in body

    def test_nan_points_dropped(self):
        text = ascii_scatter(
            {"a": ([0.0, float("nan")], [0.0, 1.0])}, width=10, height=4
        )
        body = "".join(l for l in text.splitlines() if l.startswith("|"))
        assert body.count("o") == 1

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            ascii_scatter({"a": ([float("nan")], [float("nan")])})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter({})

    def test_too_many_conditions_rejected(self):
        series = {str(i): ([0.0], [0.0]) for i in range(5)}
        with pytest.raises(ValueError, match="at most"):
            ascii_scatter(series)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="lengths"):
            ascii_scatter({"a": ([1.0], [1.0, 2.0])})

    def test_constant_values_do_not_crash(self):
        text = ascii_scatter({"a": ([1.0, 1.0], [2.0, 2.0])}, width=8, height=4)
        assert "o" in text

    def test_explicit_ranges(self):
        text = ascii_scatter(
            {"a": ([0.5], [0.5])}, x_range=(0.0, 1.0), y_range=(0.0, 1.0)
        )
        assert "[0.000, 1.000]" in text


class TestFigurePanelPlots:
    def test_figure2_panel_plot(self):
        results = [
            _run(learner="LogisticRegression(default)", seed=s, accuracy=0.6 + s / 100, di=0.7)
            for s in range(4)
        ] + [
            _run(learner="LogisticRegression(tuned)", seed=s, accuracy=0.8, di=0.9)
            for s in range(4)
        ]
        panels = figure2_series(results)
        text = plot_figure2_panel(panels, "LogisticRegression", "no intervention", "DI")
        assert "no tuning" in text and "tuning" in text

    def test_figure3_panel_plot(self):
        results = [
            _run(scaler="StandardScaler", seed=s, accuracy=0.9) for s in range(3)
        ] + [_run(scaler="NoOpScaler", seed=s, accuracy=0.4) for s in range(3)]
        panels = figure3_series(results)
        text = plot_figure3_panel(panels, "LogisticRegression", "no intervention")
        assert "scaling" in text

    def test_figure5_panel_plot(self):
        results = [
            _run(handler="CompleteCaseAnalysis", seed=s, accuracy=0.85, di=0.8)
            for s in range(3)
        ] + [
            _run(handler="LearnedImputer(all)", seed=s, accuracy=0.86, di=0.82)
            for s in range(3)
        ]
        panels = figure5_series(results)
        text = plot_figure5_panel(panels, "LogisticRegression", "no intervention")
        assert "complete case" in text and "imputed" in text

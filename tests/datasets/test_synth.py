"""Scaled synthetic inflation: determinism and preserved fairness joints.

``inflate`` promises that a stratified bootstrap to any target size keeps
exactly the statistics the fairness metrics read — per-protected-group
fractions, group base rates, and the label marginal — within the ±1-row
rounding of largest-remainder allocation, and that the same
``(name, n_rows, seed)`` always yields the identical frame.
"""

import os

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import (
    group_label_marginals,
    inflate,
    load_dataset,
    synthesize,
)
from repro.datasets.synth import _cell_ids, _largest_remainder
from repro.frame import read_csv


def flatten_marginals(report):
    out = {}
    for group, stats in report.items():
        for key, value in stats.items():
            out[f"{group}.{key}"] = value
    return out


class TestInflate:
    @pytest.mark.parametrize("name", ["propublica", "ricci"])
    def test_marginals_preserved_within_half_percent(self, name):
        frame, spec = load_dataset(name)
        synthetic = inflate(frame, spec, 50_000, seed=3)
        assert synthetic.num_rows == 50_000
        source = flatten_marginals(group_label_marginals(frame, spec))
        scaled = flatten_marginals(group_label_marginals(synthetic, spec))
        for key, value in source.items():
            assert scaled[key] == pytest.approx(value, abs=0.005), key

    def test_joint_cells_preserved_not_just_marginals(self):
        # stronger than the acceptance criterion: the full joint of
        # (protected bits x label) matches the source distribution
        frame, spec = load_dataset("propublica", n=800)
        synthetic = inflate(frame, spec, 40_000, seed=1)
        source_cells = _cell_ids(frame, spec)
        synth_cells = _cell_ids(synthetic, spec)
        n_cells = int(source_cells.max()) + 1
        source_p = np.bincount(source_cells, minlength=n_cells) / frame.num_rows
        synth_p = np.bincount(synth_cells, minlength=n_cells) / 40_000
        np.testing.assert_allclose(synth_p, source_p, atol=0.005)

    def test_same_seed_same_frame(self):
        a, _ = synthesize("ricci", 5_000, seed=7)
        b, _ = synthesize("ricci", 5_000, seed=7)
        assert a.equals(b)

    def test_different_seed_different_frame(self):
        a, _ = synthesize("ricci", 5_000, seed=7)
        b, _ = synthesize("ricci", 5_000, seed=8)
        assert not a.equals(b)

    def test_rows_are_real_source_rows(self):
        # every synthetic row is a bootstrap copy of a source row, so
        # categorical tables and numeric supports cannot grow
        frame, spec = load_dataset("ricci")
        synthetic = inflate(frame, spec, 2_000, seed=0)
        for name in frame.columns:
            a, b = frame.col(name), synthetic.col(name)
            if a.is_numeric:
                source_values = set(a.values[~np.isnan(a.values)])
                synth_values = set(b.values[~np.isnan(b.values)])
                assert synth_values <= source_values
            else:
                assert set(b.decoded()) <= set(a.decoded())

    def test_validation_errors(self):
        frame, spec = load_dataset("ricci")
        with pytest.raises(ValueError, match="n_rows"):
            inflate(frame, spec, 0)
        with pytest.raises(ValueError, match="empty"):
            inflate(frame.take(np.array([], dtype=np.int64)), spec, 10)

    def test_deflation_also_works(self):
        # target smaller than the source: still proportional, still exact
        frame, spec = load_dataset("propublica", n=2_000)
        small = inflate(frame, spec, 200, seed=5)
        assert small.num_rows == 200


class TestLargestRemainder:
    def test_sums_to_total_exactly(self):
        counts = np.array([3, 1, 7, 2, 0, 11])
        for total in (1, 13, 100, 999_983):
            allocated = _largest_remainder(counts, total)
            assert int(allocated.sum()) == total

    def test_empty_cells_get_nothing(self):
        counts = np.array([5, 0, 5, 0])
        allocated = _largest_remainder(counts, 1_000_001)
        assert allocated[1] == 0 and allocated[3] == 0

    def test_proportionality_within_one(self):
        counts = np.array([10, 20, 30, 40])
        allocated = _largest_remainder(counts, 1_000)
        np.testing.assert_array_equal(allocated, [100, 200, 300, 400])
        skewed = _largest_remainder(counts, 7)
        quotas = counts * (7 / counts.sum())
        assert np.all(np.abs(allocated - counts * 10) <= 1)
        assert np.all(np.abs(skewed - quotas) <= 1)

    def test_deterministic_tie_break(self):
        counts = np.array([1, 1, 1, 1])
        np.testing.assert_array_equal(
            _largest_remainder(counts, 6), [2, 2, 1, 1]
        )


class TestSynthCli:
    def test_cli_writes_deterministic_csv(self, tmp_path, capsys):
        out_a = os.path.join(tmp_path, "a.csv")
        out_b = os.path.join(tmp_path, "b.csv")
        argv = ["datasets", "synth", "--dataset", "ricci", "--rows", "3000",
                "--seed", "7"]
        assert main(argv + ["--out", out_a]) == 0
        assert main(argv + ["--out", out_b]) == 0
        with open(out_a, "rb") as a, open(out_b, "rb") as b:
            assert a.read() == b.read()
        printed = capsys.readouterr().out
        assert "ricci" in printed and "3000 rows" in printed

    def test_cli_spills_a_loadable_store(self, tmp_path):
        from repro.frame import FrameStore

        store_root = os.path.join(tmp_path, "store")
        csv_path = os.path.join(tmp_path, "synth.csv")
        assert main([
            "datasets", "synth", "--dataset", "ricci", "--rows", "2000",
            "--seed", "1", "--out", csv_path, "--store", store_root,
        ]) == 0
        store = FrameStore.open(store_root)
        assert store.n_rows == 2_000
        assert store.frame().equals(read_csv(csv_path))

    def test_bare_datasets_command_still_lists(self, capsys):
        assert main(["datasets"]) == 0
        printed = capsys.readouterr().out
        assert "adult" in printed and "ricci" in printed

    def test_datasets_list_subcommand(self, capsys):
        assert main(["datasets", "list"]) == 0
        assert "germancredit" in capsys.readouterr().out

"""Unit tests for the synthetic dataset generators.

These assert the paper-documented statistics that the experiments depend
on, so regressions in the generators surface as test failures rather than
silently changing the figures.
"""

import numpy as np
import pytest

from repro.datasets import (
    ADULT_SPEC,
    GERMANCREDIT_SPEC,
    PAYMENT_SPEC,
    PROPUBLICA_SPEC,
    RICCI_SPEC,
    dataset_names,
    generate_adult,
    generate_germancredit,
    generate_payment,
    generate_propublica,
    generate_ricci,
    load_dataset,
)
from repro.frame import group_missing_rates, value_counts


class TestRegistry:
    def test_names(self):
        assert dataset_names() == [
            "adult",
            "germancredit",
            "payment",
            "propublica",
            "ricci",
        ]

    def test_load_dataset_roundtrip(self):
        frame, spec = load_dataset("ricci")
        assert spec is RICCI_SPEC
        spec.validate(frame)

    def test_load_dataset_size_override(self):
        frame, _ = load_dataset("adult", n=500)
        assert frame.num_rows == 500

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            load_dataset("compas")

    def test_all_specs_validate_their_frames(self):
        for name in dataset_names():
            n = 800 if name == "adult" else None
            frame, spec = load_dataset(name, n=n)
            spec.validate(frame)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["germancredit", "ricci", "payment", "propublica"])
    def test_same_seed_same_frame(self, name):
        a, _ = load_dataset(name, seed=7)
        b, _ = load_dataset(name, seed=7)
        assert a.equals(b)

    def test_different_seed_different_frame(self):
        a, _ = load_dataset("germancredit", seed=1)
        b, _ = load_dataset("germancredit", seed=2)
        assert not a.equals(b)

    def test_adult_deterministic(self):
        a = generate_adult(n=2000, seed=3)
        b = generate_adult(n=2000, seed=3)
        assert a.equals(b)


class TestGermanCredit:
    def test_shape(self):
        frame = generate_germancredit()
        assert frame.num_rows == 1000
        # 20 attributes + derived sex + label
        assert frame.num_columns == 22

    def test_label_split_70_30(self):
        frame = generate_germancredit()
        counts = value_counts(frame, "credit_risk")
        assert counts["good"] == pytest.approx(700, abs=15)

    def test_no_missing_values(self):
        assert generate_germancredit().num_incomplete_rows() == 0

    def test_sex_derived_from_personal_status(self):
        frame = generate_germancredit()
        status = frame["personal_status_sex"]
        sex = frame["sex"]
        for s, x in zip(status, sex):
            assert s.startswith(x)

    def test_sex_disparity_present_but_modest(self):
        frame = generate_germancredit(seed=1)
        good = frame["credit_risk"] == "good"
        male = frame["sex"] == "male"
        male_rate = good[male].mean()
        female_rate = good[~male].mean()
        assert 0.6 < female_rate / male_rate < 1.0

    def test_numeric_ranges(self):
        frame = generate_germancredit()
        assert frame.col("age").min() >= 19
        assert frame.col("duration_months").max() <= 72
        assert frame.col("installment_rate").max() <= 4


class TestAdult:
    @pytest.fixture(scope="class")
    def adult(self):
        return generate_adult(seed=0)

    def test_default_size(self, adult):
        assert adult.num_rows == 32561
        assert adult.num_columns == 15

    def test_incomplete_fraction_near_paper_value(self, adult):
        # paper: 2,399 of 32,561 instances have missing values (~7.4%)
        fraction = adult.num_incomplete_rows() / adult.num_rows
        assert fraction == pytest.approx(0.074, abs=0.02)

    def test_missing_only_in_documented_columns(self, adult):
        for column in adult.columns:
            if column in ("workclass", "occupation", "native_country"):
                assert adult.col(column).num_missing() > 0
            else:
                assert adult.col(column).num_missing() == 0

    def test_native_country_missing_4x_for_nonwhite(self, adult):
        white_mask = np.asarray([r == "White" for r in adult["race"]])
        missing = adult.col("native_country").missing_mask()
        rate_white = missing[white_mask].mean()
        rate_nonwhite = missing[~white_mask].mean()
        assert rate_nonwhite / rate_white == pytest.approx(4.0, rel=0.5)

    def test_positive_rate_complete_vs_incomplete(self, adult):
        incomplete = adult.missing_mask()
        positive = np.asarray([v == ">50K" for v in adult["income"]])
        assert positive[~incomplete].mean() == pytest.approx(0.24, abs=0.03)
        assert positive[incomplete].mean() == pytest.approx(0.14, abs=0.04)

    def test_marital_status_flip_among_incomplete(self, adult):
        incomplete = adult.missing_mask()
        complete_frame = adult.mask(~incomplete)
        incomplete_frame = adult.mask(incomplete)
        assert complete_frame.col("marital_status").mode() == "Married-civ-spouse"
        assert incomplete_frame.col("marital_status").mode() == "Never-married"

    def test_race_distribution(self, adult):
        counts = value_counts(adult, "race", normalize=True)
        assert counts["White"] == pytest.approx(0.85, abs=0.02)

    def test_missing_rate_helper_agrees(self, adult):
        rates = group_missing_rates(adult, "race", "native_country")
        assert rates["White"] < rates["Black"]


class TestRicci:
    def test_shape(self):
        frame = generate_ricci()
        assert frame.num_rows == 118
        assert set(frame.columns) == {
            "position", "race", "written", "oral", "combine", "promoted"
        }

    def test_combine_formula(self):
        frame = generate_ricci()
        expected = 0.6 * frame["written"] + 0.4 * frame["oral"]
        assert np.allclose(frame["combine"], expected, atol=0.02)

    def test_promotion_rule_threshold_70(self):
        frame = generate_ricci()
        promoted = frame["promoted"] == "yes"
        assert (frame["combine"][promoted] >= 70.0).all()
        assert (frame["combine"][~promoted] < 70.0).all()

    def test_racial_score_gap(self):
        frame = generate_ricci(seed=2)
        white = frame["race"] == "White"
        assert frame["written"][white].mean() > frame["written"][~white].mean() + 3.0

    def test_scores_on_raw_scale(self):
        # the Figure 3 stress test depends on unscaled 0-100 features
        frame = generate_ricci()
        assert frame.col("written").max() > 60.0
        assert frame.col("written").min() > 20.0


class TestPropublica:
    def test_shape(self):
        frame = generate_propublica()
        assert frame.num_rows == 6172

    def test_recidivism_base_rate(self):
        frame = generate_propublica()
        counts = value_counts(frame, "two_year_recid", normalize=True)
        assert counts["yes"] == pytest.approx(0.451, abs=0.02)

    def test_decile_scores_skewed_by_race(self):
        frame = generate_propublica(seed=1)
        black = frame["race"] == "African-American"
        assert frame["decile_score"][black].mean() > frame["decile_score"][~black].mean() + 0.5

    def test_age_categories_consistent(self):
        frame = generate_propublica()
        for age, cat in zip(frame["age"], frame["age_cat"]):
            if age < 25:
                assert cat == "Less than 25"
            elif age <= 45:
                assert cat == "25 - 45"
            else:
                assert cat == "Greater than 45"

    def test_decile_range(self):
        frame = generate_propublica()
        assert frame.col("decile_score").min() >= 1
        assert frame.col("decile_score").max() <= 10


class TestPayment:
    def test_age_missing_more_for_women(self):
        frame = generate_payment(seed=0)
        rates = group_missing_rates(frame, "gender", "age")
        assert rates["female"] > 2.0 * rates["male"]

    def test_only_age_missing(self):
        frame = generate_payment()
        for column in frame.columns:
            if column == "age":
                assert frame.col(column).num_missing() > 0
            else:
                assert frame.col(column).num_missing() == 0

    def test_label_balance(self):
        frame = generate_payment()
        counts = value_counts(frame, "offer_invoice", normalize=True)
        assert counts["yes"] == pytest.approx(0.55, abs=0.03)

    def test_spec_validates(self):
        PAYMENT_SPEC.validate(generate_payment())


class TestSpecs:
    def test_adult_protected_attributes(self):
        assert [p.column for p in ADULT_SPEC.protected_attributes] == ["race", "sex"]
        assert ADULT_SPEC.default_protected == "race"

    def test_group_dicts(self):
        assert GERMANCREDIT_SPEC.privileged_groups() == [{"sex": 1.0}]
        assert GERMANCREDIT_SPEC.unprivileged_groups() == [{"sex": 0.0}]

    def test_label_binary(self):
        frame = generate_ricci()
        y = RICCI_SPEC.label_binary(frame)
        assert set(np.unique(y)) == {0.0, 1.0}
        assert y.sum() == (frame["promoted"] == "yes").sum()

    def test_protected_binary(self):
        frame = generate_ricci()
        z = RICCI_SPEC.protected("race").binary_column(frame)
        assert z.sum() == (frame["race"] == "White").sum()

    def test_validate_catches_missing_column(self):
        frame = generate_ricci().drop(["oral"])
        with pytest.raises(ValueError, match="lacks feature"):
            RICCI_SPEC.validate(frame)

    def test_validate_catches_wrong_kind(self):
        frame = generate_ricci().with_values("written", ["a"] * 118, kind="categorical")
        with pytest.raises(ValueError, match="numeric"):
            RICCI_SPEC.validate(frame)

"""Control-socket dumps must be strict JSON even with NaN in the window.

Regression test for the fleet control channel: a FairnessMonitor whose
window makes a metric undefined (all observations in one group leaves
disparate impact with an empty denominator) used to reach the control
socket through raw ``json.dumps`` and emit a bare ``NaN`` token, which
strict peers reject and which broke fleet ``/metrics`` aggregation.
"""

import json
import math
import os
import socket

import pytest

from repro.serve.fleet import _ControlServer, _read_control_state
from repro.serve.monitor import FairnessMonitor

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="needs unix domain sockets"
)


def strict_loads(data):
    def refuse(token):
        raise ValueError(f"non-JSON constant {token!r}")

    return json.loads(data, parse_constant=refuse)


def nan_bearing_state():
    """A realistic worker state whose monitor window yields NaN metrics."""
    monitor = FairnessMonitor(
        protected_attribute="group", window_size=32, min_observations=1
    )
    # privileged group never favored: disparate impact divides by a zero
    # selection rate, so the windowed metric is genuinely NaN
    for _ in range(8):
        monitor.observe(group=1.0, prediction=0.0, true_label=0.0)
    for _ in range(8):
        monitor.observe(group=0.0, prediction=1.0, true_label=1.0)
    snapshot = monitor.snapshot()
    blob = json.dumps(snapshot)  # the non-strict encoding used to leak out
    assert "NaN" in blob, "fixture must actually contain a NaN metric"
    return {
        "pid": os.getpid(),
        "requests": 16,
        "monitor": monitor.state(),
        "fairness": snapshot,
    }


def read_raw(path):
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(5.0)
        sock.connect(path)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


@pytest.fixture
def control(tmp_path):
    server = _ControlServer(str(tmp_path / "control.sock"), nan_bearing_state)
    server.start()
    try:
        yield server
    finally:
        server.stop()
        server.join(timeout=5.0)


def test_nan_window_serializes_strictly(control):
    payload = read_raw(control.path)
    assert b"NaN" not in payload
    state = strict_loads(payload.decode("utf-8"))
    assert state["requests"] == 16
    # the undefined metric arrives as null, not as a parse error
    assert state["fairness"]["disparate_impact"] is None
    assert state["fairness"]["selection_rate"] == 0.5


def test_read_control_state_round_trip(control):
    state = _read_control_state(control.path)
    assert state is not None
    assert state["requests"] == 16

    def no_nan(tree):
        if isinstance(tree, float):
            assert not math.isnan(tree)
        elif isinstance(tree, dict):
            for value in tree.values():
                no_nan(value)
        elif isinstance(tree, list):
            for value in tree:
                no_nan(value)

    no_nan(state)
    # the raw monitor window still merges: a sibling can rebuild one
    # fleet-wide monitor from the strict-JSON state
    merged = FairnessMonitor.from_states([state["monitor"]])
    assert merged.snapshot()["window"] == 16.0

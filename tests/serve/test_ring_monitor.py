"""Ring-buffer FairnessMonitor: equivalence with the frozen deque
implementation, and the observe_batch input-validation regression."""

import numpy as np
import pytest

from repro.serve import FairnessMonitor

from .reference_monitor import ReferenceFairnessMonitor


def _assert_snapshots_equal(got, want, context=""):
    assert set(got) == set(want), f"{context}: keys {set(got) ^ set(want)}"
    for key in want:
        a, b = got[key], want[key]
        assert a == b or (a != a and b != b), f"{context}: {key}: {a} != {b}"


def _pair(**kwargs):
    return (
        FairnessMonitor("sex", **kwargs),
        ReferenceFairnessMonitor("sex", **kwargs),
    )


class TestRingMatchesDeque:
    def test_randomized_batches_across_eviction_boundaries(self):
        """Random batch sizes force every wrap alignment of the ring."""
        rng = np.random.default_rng(11)
        ring, deque_ref = _pair(window_size=64, min_observations=5)
        for step in range(60):
            k = int(rng.integers(1, 40))
            groups = (rng.random(k) < 0.5).astype(float)
            predictions = (rng.random(k) < 0.4).astype(float)
            scores = rng.random(k) if rng.random() < 0.7 else None
            if rng.random() < 0.7:
                truths = (rng.random(k) < 0.5).astype(float)
                truths[rng.random(k) < 0.3] = np.nan  # partially labeled
            else:
                truths = None
            for monitor in (ring, deque_ref):
                monitor.observe_batch(groups, predictions, scores, truths)
            _assert_snapshots_equal(
                ring.snapshot(), deque_ref.snapshot(), f"step {step}"
            )
            got = [a.describe() for a in ring.check()]
            want = [a.describe() for a in deque_ref.check()]
            assert got == want, f"step {step}"

    def test_exact_window_wrap_boundary(self):
        """Batches that land exactly on the window edge (k == window)."""
        ring, deque_ref = _pair(window_size=10)
        groups = np.asarray([1.0, 0.0] * 5)
        for monitor in (ring, deque_ref):
            monitor.observe_batch(groups, 1.0 - groups)
            monitor.observe_batch(groups[:3], groups[:3])  # partial wrap
            monitor.observe_batch(groups, groups)  # full wrap again
        _assert_snapshots_equal(ring.snapshot(), deque_ref.snapshot())

    def test_oversized_batch_keeps_only_window_tail(self):
        ring, deque_ref = _pair(window_size=10)
        rng = np.random.default_rng(3)
        groups = (rng.random(35) < 0.5).astype(float)
        predictions = (rng.random(35) < 0.5).astype(float)
        for monitor in (ring, deque_ref):
            monitor.observe_batch(groups, predictions)
        snap = ring.snapshot()
        _assert_snapshots_equal(snap, deque_ref.snapshot())
        assert snap["window"] == 10.0
        assert snap["total_observed"] == 35.0

    def test_single_group_window(self):
        ring, deque_ref = _pair(window_size=100)
        for monitor in (ring, deque_ref):
            monitor.observe_batch(np.ones(60), np.ones(60))
        snap = ring.snapshot()
        _assert_snapshots_equal(snap, deque_ref.snapshot())
        assert "disparate_impact" not in snap

    def test_singles_and_batches_interleaved(self):
        ring, deque_ref = _pair(window_size=16)
        rng = np.random.default_rng(9)
        for step in range(30):
            if step % 3 == 0:
                score = float(rng.random()) if step % 2 else None
                truth = float(step % 2) if step % 5 else None
                for monitor in (ring, deque_ref):
                    monitor.observe(
                        float(step % 2),
                        float((step // 2) % 2),
                        score=score,
                        true_label=truth,
                    )
            else:
                k = int(rng.integers(1, 8))
                groups = (rng.random(k) < 0.5).astype(float)
                predictions = (rng.random(k) < 0.5).astype(float)
                for monitor in (ring, deque_ref):
                    monitor.observe_batch(groups, predictions)
            _assert_snapshots_equal(
                ring.snapshot(), deque_ref.snapshot(), f"step {step}"
            )

    def test_reset_empties_window(self):
        ring, _ = _pair(window_size=8)
        ring.observe_batch(np.ones(20), np.ones(20))
        ring.reset()
        snap = ring.snapshot()
        assert snap["window"] == 0.0
        ring.observe_batch(np.zeros(3), np.zeros(3))
        assert ring.snapshot()["window"] == 3.0


class TestObserveBatchValidation:
    """Regression: malformed inputs must be rejected before any mutation.

    The deque implementation raveled groups/predictions but indexed
    scores[i]/true_labels[i] raw, so a 2-D score array or a mismatched
    label vector blew up mid-loop after partially mutating the window.
    """

    def test_column_vector_scores_are_raveled(self):
        monitor = FairnessMonitor("sex", window_size=100)
        groups = np.asarray([1.0, 0.0, 1.0, 0.0])
        monitor.observe_batch(
            groups, groups.copy(), scores=np.linspace(0, 1, 4).reshape(-1, 1)
        )
        snap = monitor.snapshot()
        assert snap["window"] == 4.0
        assert snap["mean_score"] == np.linspace(0, 1, 4).mean()

    @pytest.mark.parametrize(
        "bad",
        [
            {"scores": np.zeros(3)},
            {"scores": np.zeros((4, 2))},  # ravels to 8 != 4
            {"true_labels": np.zeros(5)},
            {"true_labels": np.zeros((2, 4))},
        ],
    )
    def test_length_mismatch_rejected_without_mutation(self, bad):
        monitor = FairnessMonitor("sex", window_size=100)
        monitor.observe_batch(np.ones(2), np.ones(2))
        before = monitor.snapshot()
        with pytest.raises(ValueError, match="length"):
            monitor.observe_batch(
                np.asarray([1.0, 0.0, 1.0, 0.0]), np.ones(4), **bad
            )
        _assert_snapshots_equal(monitor.snapshot(), before)

    def test_prediction_length_mismatch_rejected(self):
        monitor = FairnessMonitor("sex", window_size=100)
        with pytest.raises(ValueError, match="length"):
            monitor.observe_batch(np.ones(4), np.ones(3))
        assert monitor.snapshot()["window"] == 0.0

"""Scoring engine: batch replay identity, fast path, edge cases."""

import numpy as np
import pytest

from repro.core import (
    CompleteCaseAnalysis,
    DecisionTree,
    Experiment,
    ModeImputer,
    NaiveBayes,
    RejectOptionPostProcessor,
)
from repro.datasets import load_dataset
from repro.frame import DataFrame, train_validation_test_masks
from repro.serve import FairnessMonitor, ModelRegistry, ScoringEngine


def _exported_engine(tmp_path, experiment, monitor=None):
    prepared = experiment.prepare()
    trained = experiment.train_candidates(prepared)
    result = experiment.evaluate(prepared, trained)
    registry = ModelRegistry(str(tmp_path / "registry"))
    experiment.export_pipeline(prepared, trained, result, registry=registry)
    model_id = registry.list_models()[0]["model_id"]
    pipeline = ModelRegistry(registry.root).load_pipeline(model_id)
    engine = ScoringEngine(pipeline, monitor=monitor)
    return engine, prepared, trained, result


def _raw_test(frame, seed):
    _, _, test_mask = train_validation_test_masks(frame.num_rows, 0.7, 0.1, seed)
    return frame.mask(test_mask)


@pytest.fixture(scope="module")
def germancredit():
    return load_dataset("germancredit")


class TestBatchIdentity:
    def test_reloaded_engine_matches_in_process(self, tmp_path, germancredit):
        frame, spec = germancredit
        experiment = Experiment(
            frame=frame,
            spec=spec,
            random_seed=7,
            learner=DecisionTree(tuned=False),
            post_processor=RejectOptionPostProcessor(
                num_class_thresh=10, num_ROC_margin=5
            ),
        )
        engine, prepared, trained, result = _exported_engine(tmp_path, experiment)
        batch = engine.score_frame(_raw_test(frame, 7))
        model, post = trained.models[result.best_index]
        expected = post.apply(
            experiment._predict(model, prepared.test_data_eval, prepared.test_data)
        )
        assert np.array_equal(batch.labels, expected.labels)
        assert np.array_equal(batch.scores, expected.scores)

    def test_evaluate_frame_reproduces_test_metrics(self, tmp_path, germancredit):
        frame, spec = germancredit
        experiment = Experiment(
            frame=frame, spec=spec, random_seed=3, learner=NaiveBayes()
        )
        engine, _, _, result = _exported_engine(tmp_path, experiment)
        metrics = engine.evaluate_frame(_raw_test(frame, 3))
        for key, value in result.test_metrics.items():
            got = metrics[key]
            assert got == value or (got != got and value != value), key

    def test_unlabeled_frame_scores_but_does_not_evaluate(
        self, tmp_path, germancredit
    ):
        frame, spec = germancredit
        experiment = Experiment(
            frame=frame, spec=spec, random_seed=3, learner=DecisionTree(tuned=False)
        )
        engine, _, _, _ = _exported_engine(tmp_path, experiment)
        raw_test = _raw_test(frame, 3)
        unlabeled = raw_test.drop([spec.label_column])
        batch = engine.score_frame(unlabeled)
        labeled = engine.score_frame(raw_test)
        assert np.array_equal(batch.labels, labeled.labels)
        assert batch.truth is None
        with pytest.raises(ValueError, match="label column"):
            engine.evaluate_frame(unlabeled)

    def test_missing_required_column_raises(self, tmp_path, germancredit):
        frame, spec = germancredit
        experiment = Experiment(
            frame=frame, spec=spec, random_seed=3, learner=DecisionTree(tuned=False)
        )
        engine, _, _, _ = _exported_engine(tmp_path, experiment)
        broken = frame.drop([spec.feature_columns[0]])
        with pytest.raises(KeyError, match=spec.feature_columns[0]):
            engine.score_frame(broken)


class TestRowDroppingHandlers:
    def test_complete_case_row_mask(self, tmp_path):
        frame, spec = load_dataset("adult", n=1500)
        experiment = Experiment(
            frame=frame,
            spec=spec,
            random_seed=2,
            learner=DecisionTree(tuned=False),
            missing_value_handler=CompleteCaseAnalysis(),
        )
        engine, _, _, _ = _exported_engine(tmp_path, experiment)
        raw_test = _raw_test(frame, 2)
        batch = engine.score_frame(raw_test)
        expected_mask = ~raw_test.missing_mask(spec.feature_columns)
        assert np.array_equal(batch.row_mask, expected_mask)
        assert batch.num_scored == int(expected_mask.sum())

    def test_incomplete_single_record_rejected(self, tmp_path):
        frame, spec = load_dataset("adult", n=1500)
        experiment = Experiment(
            frame=frame,
            spec=spec,
            random_seed=2,
            learner=DecisionTree(tuned=False),
            missing_value_handler=CompleteCaseAnalysis(),
        )
        engine, _, _, _ = _exported_engine(tmp_path, experiment)
        record = {c: frame.col(c).values[0] for c in frame.columns}
        record[spec.categorical_features[0]] = None
        with pytest.raises(ValueError, match="drops incomplete"):
            engine.score_record(record)


class TestSingleRecordFastPath:
    def test_fast_path_matches_batch_exactly_for_trees(self, tmp_path, germancredit):
        frame, spec = germancredit
        experiment = Experiment(
            frame=frame, spec=spec, random_seed=11, learner=DecisionTree(tuned=False)
        )
        engine, _, _, _ = _exported_engine(tmp_path, experiment)
        raw_test = _raw_test(frame, 11)
        batch = engine.score_frame(raw_test)
        for i in range(25):
            record = {c: raw_test.col(c).values[i] for c in raw_test.columns}
            out = engine.score_record(record)
            assert out["label"] == batch.labels[i]
            assert out["score"] == batch.scores[i]

    def test_fast_path_imputes_missing_values_like_mode_imputer(self, tmp_path):
        frame, spec = load_dataset("adult", n=1500)
        experiment = Experiment(
            frame=frame,
            spec=spec,
            random_seed=4,
            learner=DecisionTree(tuned=False),
            missing_value_handler=ModeImputer(),
        )
        engine, _, _, _ = _exported_engine(tmp_path, experiment)
        raw_test = _raw_test(frame, 4)
        incomplete = raw_test.missing_mask(spec.feature_columns).nonzero()[0]
        assert incomplete.size, "adult test split should contain incomplete rows"
        batch = engine.score_frame(raw_test)
        for i in incomplete[:10]:
            record = {c: raw_test.col(c).values[i] for c in raw_test.columns}
            out = engine.score_record(record)
            assert out["label"] == batch.labels[i]

    def test_unseen_category_routed_to_reserved_dimension(
        self, tmp_path, germancredit
    ):
        frame, spec = germancredit
        experiment = Experiment(
            frame=frame, spec=spec, random_seed=11, learner=DecisionTree(tuned=False)
        )
        engine, _, _, _ = _exported_engine(tmp_path, experiment)
        record = {c: frame.col(c).values[0] for c in frame.columns}
        record[spec.categorical_features[0]] = "never-seen-category"
        out = engine.score_record(record)
        # the frame path agrees: unseen values land in the reserved slot
        one_row = DataFrame.from_dict(
            {name: [record.get(name)] for name in frame.columns},
            kinds=frame.kinds(),
        )
        batch = engine.score_frame(one_row)
        assert out["label"] == batch.labels[0]
        assert out["score"] == batch.scores[0]

    def test_record_result_shape(self, tmp_path, germancredit):
        frame, spec = germancredit
        experiment = Experiment(
            frame=frame, spec=spec, random_seed=11, learner=DecisionTree(tuned=False)
        )
        engine, _, _, _ = _exported_engine(tmp_path, experiment)
        record = {c: frame.col(c).values[0] for c in frame.columns}
        out = engine.score_record(record)
        assert set(out) == {"label", "score", "favorable", "decision"}
        assert out["favorable"] == (out["label"] == 1.0)


class TestMonitorFeed:
    def test_partially_labeled_batch_not_treated_as_truth(
        self, tmp_path, germancredit
    ):
        frame, spec = germancredit
        monitor = FairnessMonitor(spec.default_protected, window_size=500)
        experiment = Experiment(
            frame=frame, spec=spec, random_seed=7, learner=DecisionTree(tuned=False)
        )
        engine, _, _, _ = _exported_engine(tmp_path, experiment, monitor=monitor)
        raw_test = _raw_test(frame, 7)
        labels = list(raw_test.col(spec.label_column).values)
        for i in range(0, len(labels), 2):
            labels[i] = None  # half the batch arrives unlabeled
        partial = raw_test.with_values(spec.label_column, labels, kind="categorical")
        batch = engine.score_frame(partial)
        # a missing label must not be read as ground-truth unfavorable
        assert batch.truth is None
        with pytest.raises(ValueError, match="label column"):
            engine.evaluate_batch(batch)
        snap = monitor.snapshot()
        assert snap["labeled_fraction"] == pytest.approx(
            (len(labels) - (len(labels) + 1) // 2) / len(labels)
        )

    def test_batch_scoring_feeds_monitor(self, tmp_path, germancredit):
        frame, spec = germancredit
        monitor = FairnessMonitor(spec.default_protected, window_size=500)
        experiment = Experiment(
            frame=frame, spec=spec, random_seed=7, learner=DecisionTree(tuned=False)
        )
        engine, _, _, _ = _exported_engine(tmp_path, experiment, monitor=monitor)
        raw_test = _raw_test(frame, 7)
        engine.score_frame(raw_test)
        snap = monitor.snapshot()
        assert snap["window"] == raw_test.num_rows
        assert snap["labeled_fraction"] == 1.0
        assert "disparate_impact" in snap
        assert "accuracy" in snap

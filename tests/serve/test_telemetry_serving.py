"""Serving-side telemetry: fleet /metrics aggregation when workers die
mid-scrape, connection-handler error accounting, and the Prometheus
exposition of a metrics payload."""

import json
import socket
import threading

import pytest

from repro import telemetry
from repro.serve.fleet import FleetView, _ControlServer, _read_control_state
from repro.serve.service import handle_connection_error, render_exposition
import repro.serve.service as service_module


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.reset_for_tests()
    yield
    telemetry.reset_for_tests()


def _worker_state(requests, errors, records=None, pid=1000):
    """A consistent worker state dict: requests == successes + errors."""
    return {
        "pid": pid,
        "requests": requests,
        "successes": requests - errors,
        "errors": errors,
        "records_scored": records if records is not None else requests,
        "inflight": 0,
        "uptime_seconds": 1.0,
        "queue_depth": 0.0,
        "handler_errors": 0,
        "telemetry": {
            "counters": {"serve.request_errors": errors},
            "gauges": {},
            "histograms": {},
        },
    }


class _FakeService:
    """Stands in for the handling worker's own ScoringService."""

    def __init__(self, state):
        self._state = state

    def state(self):
        return dict(self._state)


class TestFleetViewDeadWorkers:
    def _fleet(self, tmp_path, sibling_states):
        """Index-0 view over len(sibling_states)+1 workers; siblings get
        real control sockets serving the given states."""
        paths = [str(tmp_path / f"w{i}.sock") for i in range(len(sibling_states) + 1)]
        servers = []
        for i, state in enumerate(sibling_states, start=1):
            if state is None:
                continue  # dead worker: no socket ever created
            server = _ControlServer(paths[i], (lambda s: lambda: s)(state))
            server.start()
            servers.append(server)
        view = FleetView(0, paths)
        return view, paths, servers

    def test_dead_worker_is_skipped_and_invariant_holds(self, tmp_path):
        own = _worker_state(10, 2, pid=1)
        view, _, servers = self._fleet(
            tmp_path, [_worker_state(7, 1, pid=2), None]
        )
        try:
            out = view.metrics(_FakeService(own))
        finally:
            for server in servers:
                server.stop()
        assert out["fleet"]["workers_alive"] == 2
        assert out["workers"][2]["status"] == "unreachable"
        assert out["requests"] == 17
        assert out["errors"] == 3
        assert out["successes"] == 14
        # the fleet-wide invariant survives a dead worker: sums only
        # cover reachable states, each internally consistent
        assert out["requests"] == out["errors"] + out["successes"]

    def test_stale_socket_file_is_skipped(self, tmp_path):
        """A worker that died leaves its socket file behind; connecting
        gets ECONNREFUSED and the scrape must treat it as unreachable."""
        stale_path = str(tmp_path / "stale.sock")
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        leftover.bind(stale_path)
        leftover.close()  # bound but never listening: file persists

        own = _worker_state(5, 0, pid=1)
        view = FleetView(0, [str(tmp_path / "self.sock"), stale_path])
        out = view.metrics(_FakeService(own))
        assert out["workers"][1]["status"] == "unreachable"
        assert out["requests"] == 5
        assert out["requests"] == out["errors"] + out["successes"]

    def test_worker_dying_mid_payload_is_skipped(self, tmp_path):
        """A truncated state document (worker killed mid-send) must not
        poison the aggregate."""
        path = str(tmp_path / "torn.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(1)

        def half_send():
            conn, _ = listener.accept()
            conn.sendall(b'{"requests": 9, "succ')
            conn.close()

        thread = threading.Thread(target=half_send, daemon=True)
        thread.start()
        try:
            assert _read_control_state(path) is None
        finally:
            listener.close()
        own = _worker_state(3, 1, pid=1)
        view = FleetView(0, [str(tmp_path / "self.sock"), path])
        out = view.metrics(_FakeService(own))
        assert out["workers"][1]["status"] == "unreachable"
        assert out["requests"] == out["errors"] + out["successes"] == 3

    def test_telemetry_and_handler_errors_merge_fleet_wide(self, tmp_path):
        own = _worker_state(4, 1, pid=1)
        own["handler_errors"] = 2
        sibling = _worker_state(6, 2, pid=2)
        sibling["handler_errors"] = 3
        view, _, servers = self._fleet(tmp_path, [sibling])
        try:
            out = view.metrics(_FakeService(own))
        finally:
            for server in servers:
                server.stop()
        assert out["handler_errors"] == 5
        assert out["telemetry"]["counters"]["serve.request_errors"] == 3


class TestHandleConnectionError:
    def test_counts_and_logs_structured_line(self, capfd, monkeypatch):
        monkeypatch.setattr(
            service_module,
            "_HANDLER_ERROR_LOG",
            telemetry.RateLimitedLog(rate=5.0, burst=10),
        )
        try:
            raise ConnectionResetError("peer vanished")
        except ConnectionResetError:
            handle_connection_error(("10.0.0.9", 54321))
        assert telemetry.counter("serve.handler_errors").value == 1
        line = capfd.readouterr().err.strip()
        record = json.loads(line)
        assert record["event"] == "serve.handler_error"
        assert record["client"] == "10.0.0.9:54321"
        assert "ConnectionResetError" in record["error"]

    def test_storm_is_rate_limited_but_fully_counted(self, capfd, monkeypatch):
        clock = [0.0]
        monkeypatch.setattr(
            service_module,
            "_HANDLER_ERROR_LOG",
            telemetry.RateLimitedLog(
                rate=1.0,
                burst=3,
                suppressed_counter="serve.handler_errors_suppressed",
                clock=lambda: clock[0],
            ),
        )
        for _ in range(10):
            try:
                raise OSError("storm")
            except OSError:
                handle_connection_error(None)
        # every failure is counted even when the tty line is suppressed
        assert telemetry.counter("serve.handler_errors").value == 10
        assert telemetry.counter("serve.handler_errors_suppressed").value == 7
        lines = [l for l in capfd.readouterr().err.splitlines() if l.strip()]
        assert len(lines) == 3


class TestRenderExposition:
    def test_local_payload_renders_service_counters(self):
        text = render_exposition(
            {"requests": 12, "errors": 2, "records_scored": 40}
        )
        assert "repro_serve_requests_total 12" in text
        assert "repro_serve_errors_total 2" in text
        assert "repro_serve_records_scored_total 40" in text

    def test_fleet_payload_renders_gauges_and_merged_telemetry(self):
        metrics = {
            "requests": 20,
            "errors": 1,
            "records_scored": 19,
            "fleet": {"size": 4, "workers_alive": 3},
            "workers": [{"index": 0, "status": "ok"}],
            "telemetry": {
                "counters": {"serve.handler_errors": 6},
                "gauges": {"serve.batch_queue_depth": 2.0},
                "histograms": {
                    "serve.request_latency_ms": {
                        "bounds": [1.0, 5.0],
                        "counts": [3, 1, 0],
                        "sum": 6.0,
                        "count": 4,
                    }
                },
            },
        }
        text = render_exposition(metrics)
        assert "repro_serve_fleet_size 4" in text
        assert "repro_serve_workers_alive 3" in text
        assert "repro_serve_handler_errors_total 6" in text
        assert "repro_serve_batch_queue_depth 2" in text
        assert 'repro_serve_request_latency_ms_bucket{le="+Inf"} 4' in text

    def test_service_counters_never_double_count_telemetry(self):
        # the request counters come only from the service overlay: the
        # telemetry registry deliberately uses different names
        telemetry.counter("serve.request_errors").inc(3)
        text = render_exposition(
            {
                "requests": 5,
                "errors": 3,
                "records_scored": 2,
                "telemetry": telemetry.metrics_state(),
            }
        )
        assert "repro_serve_errors_total 3" in text
        assert "repro_serve_request_errors_total 3" in text

"""Micro-batching scoring core: coalescing, byte-identity, typed errors,
bounded-queue load shedding, and counter consistency under concurrency."""

import threading

import numpy as np
import pytest

from repro.core import (
    CompleteCaseAnalysis,
    DecisionTree,
    Experiment,
    ModeImputer,
)
from repro.datasets import load_dataset
from repro.serve import (
    BatcherClosed,
    MicroBatcher,
    ModelRegistry,
    ScoringEngine,
    ScoringService,
    ServiceOverloaded,
)


def _export_pipeline(root, dataset, handler=None, n=None):
    frame, spec = load_dataset(dataset, n=n) if n else load_dataset(dataset)
    kwargs = {} if handler is None else {"missing_value_handler": handler}
    experiment = Experiment(
        frame=frame,
        spec=spec,
        random_seed=5,
        learner=DecisionTree(tuned=False),
        **kwargs,
    )
    prepared = experiment.prepare()
    trained = experiment.train_candidates(prepared)
    result = experiment.evaluate(prepared, trained)
    registry = ModelRegistry(root)
    experiment.export_pipeline(prepared, trained, result, registry=registry)
    model_id = registry.list_models()[0]["model_id"]
    return registry.load_pipeline(model_id), frame


def _records(frame, count, start=0):
    decoded = {c: frame.col(c).values for c in frame.columns}
    out = []
    for i in range(start, start + count):
        row = {}
        for name in frame.columns:
            value = decoded[name][i]
            row[name] = value.item() if hasattr(value, "item") else value
        out.append(row)
    return out


@pytest.fixture(scope="module")
def german(tmp_path_factory):
    root = tmp_path_factory.mktemp("registry-german")
    return _export_pipeline(str(root), "germancredit")


@pytest.fixture(scope="module")
def adult_cc(tmp_path_factory):
    """Adult pipeline with a row-dropping (complete-case) handler."""
    root = tmp_path_factory.mktemp("registry-adult")
    return _export_pipeline(
        str(root), "adult", handler=CompleteCaseAnalysis(), n=1500
    )


class TestCoalescedByteIdentity:
    def test_coalesced_batch_matches_score_record(self, german):
        """Futures submitted together resolve byte-identical to score_record."""
        pipeline, frame = german
        direct = ScoringEngine(pipeline)
        batcher = MicroBatcher(
            ScoringEngine(pipeline), max_batch=8, max_wait_ms=1000.0
        )
        try:
            records = _records(frame, 8)
            futures = [batcher.submit(r) for r in records]
            results = [f.result(timeout=30) for f in futures]
            stats = batcher.stats()
            # the long max_wait guarantees the dispatcher coalesced: at most
            # one request can slip into its own batch before the rest queue
            assert stats["batches_dispatched"] <= 2
            assert stats["records_batched"] == 8
            for record, got in zip(records, results):
                assert got == direct.score_record(record)
        finally:
            batcher.close()

    def test_batched_service_matches_inline_service(self, german):
        pipeline, frame = german
        direct = ScoringEngine(pipeline)
        service = ScoringService(
            ScoringEngine(pipeline), max_batch=8, max_wait_ms=50.0
        )
        try:
            records = _records(frame, 16)
            results = [None] * len(records)
            barrier = threading.Barrier(len(records))

            def worker(i):
                barrier.wait()
                results[i] = service.score(records[i])

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(records))
            ]
            [t.start() for t in threads]
            [t.join() for t in threads]
            for record, got in zip(records, results):
                expected = {"records_scored": 1, **direct.score_record(record)}
                assert got == expected
        finally:
            service.close()


class TestTypedErrors:
    def test_dropped_record_gets_value_error_batchmates_survive(self, adult_cc):
        """One incomplete record errors; its batch-mates score normally."""
        pipeline, frame = adult_cc
        direct = ScoringEngine(pipeline)
        batcher = MicroBatcher(
            ScoringEngine(pipeline), max_batch=4, max_wait_ms=1000.0
        )
        try:
            records = _records(frame, 4)
            incomplete = dict(records[1])
            feature = pipeline.spec.feature_columns[0]
            incomplete[feature] = None
            submitted = [records[0], incomplete, records[2], records[3]]
            futures = [batcher.submit(r) for r in submitted]
            with pytest.raises(ValueError, match="drops incomplete records"):
                futures[1].result(timeout=30)
            for i in (0, 2, 3):
                assert futures[i].result(timeout=30) == direct.score_record(
                    submitted[i]
                )
        finally:
            batcher.close()

    def test_frame_level_failure_falls_back_to_per_record_errors(self, german):
        """Records a coalesced frame cannot score still get individual errors."""
        pipeline, _ = german
        batcher = MicroBatcher(
            ScoringEngine(pipeline), max_batch=4, max_wait_ms=1000.0
        )
        try:
            futures = [batcher.submit({"bogus": i}) for i in range(4)]
            for future in futures:
                with pytest.raises((KeyError, ValueError)):
                    future.result(timeout=30)
        finally:
            batcher.close()


class _BlockingEngine:
    """Stub engine that parks the dispatcher until released."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def score_record(self, record):
        self.entered.set()
        assert self.release.wait(timeout=30)
        return {"label": 1.0, "score": 0.5, "favorable": True, "decision": "good"}


class TestBoundedQueue:
    def test_full_queue_sheds_load_with_service_overloaded(self):
        engine = _BlockingEngine()
        batcher = MicroBatcher(engine, max_batch=1, max_wait_ms=0.0, max_queue=2)
        try:
            first = batcher.submit({})
            assert engine.entered.wait(timeout=30)  # dispatcher is parked
            queued = [batcher.submit({}) for _ in range(2)]
            with pytest.raises(ServiceOverloaded, match="queue full"):
                batcher.submit({})
        finally:
            engine.release.set()
            batcher.close()
        assert first.result(timeout=30)["label"] == 1.0
        for future in queued:
            assert future.result(timeout=30)["label"] == 1.0

    def test_close_drains_then_rejects(self, german):
        pipeline, frame = german
        direct = ScoringEngine(pipeline)
        batcher = MicroBatcher(
            ScoringEngine(pipeline), max_batch=4, max_wait_ms=1.0
        )
        record = _records(frame, 1)[0]
        future = batcher.submit(record)
        batcher.close()
        assert future.result(timeout=30) == direct.score_record(record)
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(record)

    def test_constructor_validation(self, german):
        pipeline, _ = german
        engine = ScoringEngine(pipeline)
        with pytest.raises(ValueError):
            MicroBatcher(engine, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(engine, max_wait_ms=-1)
        with pytest.raises(ValueError):
            MicroBatcher(engine, max_queue=0)


class _SlowEngine:
    """Stub engine that takes a fixed wall-clock time per record."""

    def __init__(self, delay=0.02):
        self.delay = delay
        self.scored = 0

    def score_record(self, record):
        import time

        time.sleep(self.delay)
        self.scored += 1
        return {"label": 1.0, "score": 0.5, "favorable": True, "decision": "good"}


class TestCloseDrainContract:
    """Regression: close() must drain, reject, and never strand a caller.

    The original close() only joined the dispatcher — a submission racing
    close got an untyped RuntimeError, and a wedged engine left queued
    futures pending forever with their handler threads blocked on them.
    """

    def test_inflight_requests_resolve_through_final_dispatch(self):
        """Everything queued at close() time still gets scored."""
        engine = _SlowEngine(delay=0.02)
        batcher = MicroBatcher(engine, max_batch=1, max_wait_ms=0.0)
        futures = [batcher.submit({"i": i}) for i in range(6)]
        batcher.close()
        for future in futures:
            assert future.result(timeout=1.0)["label"] == 1.0
        assert engine.scored == 6

    def test_submit_after_close_raises_typed_error(self):
        batcher = MicroBatcher(_SlowEngine(), max_batch=2, max_wait_ms=0.0)
        batcher.close()
        with pytest.raises(BatcherClosed, match="closed"):
            batcher.submit({})
        assert isinstance(BatcherClosed("x"), RuntimeError)  # old except clauses hold

    def test_wedged_engine_fails_leftover_futures_with_typed_error(self):
        """Queued-but-undispatched requests resolve with BatcherClosed when
        the drain deadline expires, instead of blocking their callers."""
        engine = _BlockingEngine()
        batcher = MicroBatcher(engine, max_batch=1, max_wait_ms=0.0)
        inflight = batcher.submit({})
        assert engine.entered.wait(timeout=30)  # dispatcher owns request 1
        leftovers = [batcher.submit({}) for _ in range(3)]
        batcher.close(timeout=0.2)  # dispatcher is parked; join times out
        for future in leftovers:
            with pytest.raises(BatcherClosed, match="before this request"):
                future.result(timeout=1.0)
        assert not inflight.done()  # still owned by the dispatcher
        engine.release.set()  # unwedge: the in-flight request completes
        assert inflight.result(timeout=30)["label"] == 1.0

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(_SlowEngine(), max_batch=2, max_wait_ms=0.0)
        batcher.close()
        batcher.close()
        with pytest.raises(BatcherClosed):
            batcher.submit({})


class TestCounterConsistency:
    """Regression: /metrics counters must agree under concurrent traffic.

    The old score() took the counter lock twice and skipped records_scored
    on the success path of a request that raced an exception, so requests
    could drift from errors + successes.
    """

    @pytest.mark.parametrize("max_batch", [1, 8])
    def test_requests_equal_errors_plus_successes(self, german, max_batch):
        pipeline, frame = german
        service = ScoringService(
            ScoringEngine(pipeline), max_batch=max_batch, max_wait_ms=2.0
        )
        try:
            records = _records(frame, 10)
            n_threads, per_thread = 6, 10
            outcomes = [[None] * per_thread for _ in range(n_threads)]
            barrier = threading.Barrier(n_threads)

            def worker(t):
                barrier.wait()
                for m in range(per_thread):
                    # every third request is malformed and must error
                    if (t + m) % 3 == 0:
                        try:
                            service.score([1, 2, 3])
                            outcomes[t][m] = "unexpected-success"
                        except (ValueError, TypeError):
                            outcomes[t][m] = "error"
                    else:
                        out = service.score(records[(t + m) % len(records)])
                        outcomes[t][m] = "ok" if out["records_scored"] == 1 else "bad"

            threads = [
                threading.Thread(target=worker, args=(t,))
                for t in range(n_threads)
            ]
            [t.start() for t in threads]
            [t.join() for t in threads]

            flat = [o for row in outcomes for o in row]
            assert "unexpected-success" not in flat and "bad" not in flat
            successes = flat.count("ok")
            errors = flat.count("error")
            metrics = service.metrics()
            assert metrics["requests"] == n_threads * per_thread
            assert metrics["errors"] == errors
            assert metrics["requests"] == metrics["errors"] + successes
            assert metrics["records_scored"] == successes  # no lost records
        finally:
            service.close()

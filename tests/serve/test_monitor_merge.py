"""FairnessMonitor merge/state support: merging K disjoint per-worker
windows must be metric-identical to one monitor that observed the
concatenated stream — the oracle is the frozen deque implementation —
including alert-threshold behavior at the merged level."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import FairnessMonitor

from .reference_monitor import ReferenceFairnessMonitor


def _assert_snapshots_equal(got, want, context=""):
    assert set(got) == set(want), f"{context}: keys {set(got) ^ set(want)}"
    for key in want:
        a, b = got[key], want[key]
        assert a == b or (a != a and b != b), f"{context}: {key}: {a} != {b}"


def _observe_stream(monitor, stream):
    for group, prediction, score, truth in stream:
        monitor.observe(group, prediction, score, truth)


_record = st.tuples(
    st.sampled_from([0.0, 1.0]),  # protected group
    st.sampled_from([0.0, 1.0]),  # prediction
    st.one_of(  # score, possibly unknown
        st.none(),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    st.one_of(st.none(), st.sampled_from([0.0, 1.0])),  # ground truth
)
_stream = st.lists(_record, min_size=0, max_size=40)


class TestMergeMatchesSingleStreamOracle:
    @settings(max_examples=60, deadline=None)
    @given(streams=st.lists(_stream, min_size=1, max_size=4))
    def test_merged_workers_equal_concatenated_stream(self, streams):
        """K per-worker windows, each within capacity, merge into the
        exact monitor that observed worker 0's stream, then worker 1's,
        and so on — metrics AND alerts, bit for bit."""
        window = 40  # >= every stream: no per-worker eviction
        workers = []
        for stream in streams:
            worker = FairnessMonitor("sex", window_size=window, min_observations=5)
            _observe_stream(worker, stream)
            workers.append(worker)

        total = sum(len(stream) for stream in streams)
        oracle = ReferenceFairnessMonitor(
            "sex", window_size=max(1, total), min_observations=5
        )
        for stream in streams:
            _observe_stream(oracle, stream)

        merged = FairnessMonitor.from_states([w.state() for w in workers])
        snapshot = merged.snapshot()
        _assert_snapshots_equal(snapshot, oracle.snapshot())
        got = [alert.describe() for alert in merged.check(snapshot)]
        want = [alert.describe() for alert in oracle.check()]
        assert got == want

    @settings(max_examples=30, deadline=None)
    @given(streams=st.lists(_stream, min_size=1, max_size=3), window=st.integers(1, 25))
    def test_merge_into_small_window_evicts_like_one_stream(self, streams, window):
        """An explicit merged window keeps the last N of the concatenated
        stream, exactly as a single monitor with that window would."""
        capacity = 40
        workers = []
        for stream in streams:
            worker = FairnessMonitor("sex", window_size=capacity, min_observations=5)
            _observe_stream(worker, stream)
            workers.append(worker)

        oracle = ReferenceFairnessMonitor(
            "sex", window_size=window, min_observations=5
        )
        for stream in streams:
            _observe_stream(oracle, stream)

        merged = FairnessMonitor.from_states(
            [w.state() for w in workers], window_size=window
        )
        _assert_snapshots_equal(merged.snapshot(), oracle.snapshot())


class TestMergeSemantics:
    def test_state_round_trips_through_from_states(self):
        rng = np.random.default_rng(7)
        monitor = FairnessMonitor("sex", window_size=32, min_observations=5)
        monitor.observe_batch(
            (rng.random(50) < 0.5).astype(float),
            (rng.random(50) < 0.4).astype(float),
            scores=rng.random(50),
            true_labels=(rng.random(50) < 0.5).astype(float),
        )
        rebuilt = FairnessMonitor.from_states(
            [monitor.state()], window_size=monitor.window_size
        )
        _assert_snapshots_equal(rebuilt.snapshot(), monitor.snapshot())
        # total_observed carries the fleet-lifetime count, evictions included
        assert rebuilt.snapshot()["total_observed"] == 50.0

    def test_state_is_json_safe(self):
        import json

        monitor = FairnessMonitor("sex", window_size=8)
        monitor.observe(1.0, 1.0, score=None, true_label=None)  # NaN slots
        monitor.observe(0.0, 1.0, score=0.25, true_label=0.0)
        encoded = json.dumps(monitor.state(), allow_nan=False)  # strict
        rebuilt = FairnessMonitor.from_states([json.loads(encoded)], window_size=8)
        _assert_snapshots_equal(rebuilt.snapshot(), monitor.snapshot())

    def test_instance_merge_accepts_monitors_and_states(self):
        left = FairnessMonitor("sex", window_size=16)
        right = FairnessMonitor("sex", window_size=16)
        left.observe(1.0, 1.0)
        right.observe(0.0, 0.0)
        merged = FairnessMonitor("sex", window_size=16)
        merged.merge(left, right.state())
        snap = merged.snapshot()
        assert snap["window"] == 2.0
        assert snap["total_observed"] == 2.0
        assert merged is merged.merge()  # chainable no-op

    def test_merge_rejects_mismatched_configuration(self):
        sex = FairnessMonitor("sex", window_size=8)
        race = FairnessMonitor("race", window_size=8)
        with pytest.raises(ValueError, match="protected"):
            sex.merge(race)
        flipped = FairnessMonitor("sex", window_size=8, favorable_label=0.0,
                                  unfavorable_label=1.0)
        with pytest.raises(ValueError, match="labels"):
            sex.merge(flipped)
        with pytest.raises(ValueError, match="at least one"):
            FairnessMonitor.from_states([])

    def test_alerts_fire_only_at_the_merged_level(self):
        """Each worker sees one group (no DI defined); the merged window
        sees both and violates the four-fifths rule."""
        privileged = FairnessMonitor("sex", window_size=200, min_observations=10)
        unprivileged = FairnessMonitor("sex", window_size=200, min_observations=10)
        for _ in range(50):
            privileged.observe(1.0, 1.0)  # privileged group: 100% favorable
        for _ in range(50):
            unprivileged.observe(0.0, 0.0)  # unprivileged: 0% favorable
        assert privileged.check() == [] and unprivileged.check() == []
        assert "disparate_impact" not in privileged.snapshot()

        merged = FairnessMonitor.from_states(
            [privileged.state(), unprivileged.state()]
        )
        snapshot = merged.snapshot()
        assert snapshot["disparate_impact"] == 0.0
        metrics = {alert.metric for alert in merged.check(snapshot)}
        assert "disparate_impact" in metrics
        assert "statistical_parity_difference" in metrics

    def test_worker_order_defines_concatenation_order(self):
        """Merging [a, b] equals observing a-then-b, not b-then-a, once
        eviction makes the order visible."""
        a = FairnessMonitor("sex", window_size=4)
        b = FairnessMonitor("sex", window_size=4)
        for value in (1.0, 1.0, 1.0, 1.0):
            a.observe(value, value)
        for value in (0.0, 0.0, 0.0, 0.0):
            b.observe(value, value)
        ab = FairnessMonitor.from_states([a.state(), b.state()], window_size=4)
        ba = FairnessMonitor.from_states([b.state(), a.state()], window_size=4)
        assert ab.snapshot()["selection_rate"] == 0.0  # b's records survived
        assert ba.snapshot()["selection_rate"] == 1.0  # a's records survived

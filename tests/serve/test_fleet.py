"""Multi-core serving fleet: port sharing, fleet-wide /healthz and
/metrics aggregation, worker death + respawn, and graceful drain.

These tests fork real worker processes (skipped where os.fork is
unavailable); everything speaks to the fleet over real HTTP, as a client
would."""

import json
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.core import DecisionTree, Experiment
from repro.datasets import load_dataset
from repro.serve import (
    FairnessMonitor,
    ModelRegistry,
    ScoringEngine,
    ScoringService,
    ServingFleet,
    dumps_strict,
)
from repro.serve.fleet import FORK_AVAILABLE, SO_REUSEPORT_AVAILABLE

pytestmark = pytest.mark.skipif(
    not FORK_AVAILABLE, reason="ServingFleet requires os.fork"
)


def _strict_loads(data):
    def refuse(token):
        raise ValueError(f"non-JSON constant {token!r}")

    return json.loads(data, parse_constant=refuse)


def _get(port, path, timeout=10):
    return _strict_loads(
        urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=timeout
        ).read()
    )


def _post_raw(port, payload, timeout=30):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/score",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    return urllib.request.urlopen(request, timeout=timeout).read()


def _post(port, payload, timeout=30):
    return _strict_loads(_post_raw(port, payload, timeout))


def _post_with_retry(port, payload, attempts=20):
    """Retry connection-level failures: during a worker kill the kernel
    may briefly route a connection at the dying socket."""
    for attempt in range(attempts):
        try:
            return _post(port, payload)
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.1)
    raise RuntimeError(f"no worker answered after {attempts} attempts")


def _wait_healthy(port, workers, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            health = _get(port, "/healthz", timeout=2)
            if health["fleet"]["workers_alive"] == workers:
                return health
        except (urllib.error.URLError, ConnectionError, OSError):
            pass
        time.sleep(0.1)
    raise RuntimeError(f"fleet of {workers} never became healthy")


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    frame, spec = load_dataset("germancredit")
    experiment = Experiment(
        frame=frame,
        spec=spec,
        random_seed=5,
        learner=DecisionTree(tuned=False),
    )
    prepared = experiment.prepare()
    trained = experiment.train_candidates(prepared)
    result = experiment.evaluate(prepared, trained)
    root = str(tmp_path_factory.mktemp("fleet-registry"))
    registry = ModelRegistry(root)
    experiment.export_pipeline(prepared, trained, result, registry=registry)
    model_id = registry.list_models()[0]["model_id"]
    return ModelRegistry(root).load_pipeline(model_id), frame, spec


def _factory(pipeline):
    def build():
        monitor = FairnessMonitor(
            pipeline.protected_attribute, window_size=500
        )
        return ScoringService(
            ScoringEngine(pipeline, monitor=monitor),
            model_id="fleet-test",
            max_batch=16,
            max_wait_ms=1.0,
        )

    return build


def _records(frame, spec, count):
    complete = frame.dropna(spec.feature_columns)
    decoded = {c: complete.col(c).values for c in complete.columns}
    return [
        {
            c: (v.item() if hasattr(v, "item") else v)
            for c, v in ((name, decoded[name][i]) for name in complete.columns)
        }
        for i in range(count)
    ]


@pytest.fixture()
def fleet(pipeline):
    artifact, _, _ = pipeline
    fleet = ServingFleet(_factory(artifact), port=0, workers=2)
    try:
        _, port = fleet.start()
        _wait_healthy(port, 2)
        yield fleet, port
    finally:
        fleet.stop()


class TestFleetServing:
    def test_healthz_reports_per_worker_liveness(self, fleet):
        _, port = fleet
        health = _get(port, "/healthz")
        assert health["status"] == "ok"
        assert health["fleet"]["size"] == 2
        assert health["fleet"]["workers_alive"] == 2
        assert len(health["workers"]) == 2
        pids = set()
        for worker in health["workers"]:
            assert worker["status"] == "ok"
            assert worker["uptime_seconds"] >= 0.0
            assert worker["queue_depth"] == 0.0
            pids.add(worker["pid"])
        assert len(pids) == 2  # two distinct processes
        assert os.getpid() not in pids

    def test_fleet_responses_byte_identical_to_score_record(self, fleet, pipeline):
        artifact, frame, spec = pipeline
        _, port = fleet
        reference = ScoringEngine(artifact)
        for record in _records(frame, spec, 6):
            expected = dumps_strict(
                {"records_scored": 1, **reference.score_record(record)}
            )
            assert _post_raw(port, record) == expected

    def test_metrics_aggregate_across_workers(self, fleet, pipeline):
        _, frame, spec = pipeline
        _, port = fleet
        records = _records(frame, spec, 12)
        for record in records:
            assert _post(port, record)["records_scored"] == 1
        out = _post(port, {"records": records})
        assert out["records_scored"] == len(records)
        with pytest.raises(urllib.error.HTTPError) as caught:
            _post(port, {"records": "nope"})
        assert caught.value.code == 422

        metrics = _get(port, "/metrics")
        assert metrics["fleet"]["size"] == 2
        assert metrics["requests"] == len(records) + 2
        assert metrics["errors"] == 1
        assert metrics["requests"] == metrics["successes"] + metrics["errors"]
        assert metrics["records_scored"] == 2 * len(records)
        # the merged monitor saw every record the whole fleet scored
        assert metrics["monitor"]["total_observed"] == float(2 * len(records))
        assert isinstance(metrics["alerts"], list)
        assert len(metrics["workers"]) == 2
        # per-request bookkeeping happened on the workers, not here
        assert sum(w["requests"] for w in metrics["workers"]) == metrics["requests"]

    def test_killed_worker_respawns_and_survivors_keep_serving(
        self, fleet, pipeline
    ):
        _, frame, spec = pipeline
        _, port = fleet
        record = _records(frame, spec, 1)[0]
        victim = _get(port, "/healthz")["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        # survivors answer throughout (retry covers the kill window)
        for _ in range(5):
            assert _post_with_retry(port, record)["records_scored"] == 1
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            health = _get(port, "/healthz")
            pids = [
                w["pid"] for w in health["workers"] if w["status"] == "ok"
            ]
            if health["fleet"]["workers_alive"] == 2 and victim not in pids:
                break
            time.sleep(0.1)
        else:
            raise AssertionError("killed worker was never respawned")
        assert _post_with_retry(port, record)["records_scored"] == 1


class TestFleetLifecycle:
    def test_graceful_stop_closes_the_port(self, pipeline):
        artifact, frame, spec = pipeline
        fleet = ServingFleet(_factory(artifact), port=0, workers=2)
        _, port = fleet.start()
        _wait_healthy(port, 2)
        record = _records(frame, spec, 1)[0]
        assert _post(port, record)["records_scored"] == 1
        control_paths = list(fleet.control_paths)
        fleet.stop()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            _get(port, "/healthz", timeout=2)
        for path in control_paths:
            assert not os.path.exists(path)
        fleet.stop()  # idempotent

    @pytest.mark.skipif(
        not SO_REUSEPORT_AVAILABLE, reason="needs SO_REUSEPORT to compare"
    )
    def test_prefork_fallback_serves_without_so_reuseport(self, pipeline):
        artifact, frame, spec = pipeline
        fleet = ServingFleet(
            _factory(artifact), port=0, workers=2, reuse_port=False
        )
        try:
            assert fleet.mode == "pre-fork accept"
            _, port = fleet.start()
            _wait_healthy(port, 2)
            for record in _records(frame, spec, 4):
                assert _post(port, record)["records_scored"] == 1
            metrics = _get(port, "/metrics")
            assert metrics["requests"] == metrics["successes"] + metrics["errors"]
            assert metrics["errors"] == 0
        finally:
            fleet.stop()

    def test_worker_count_validation(self, pipeline):
        artifact, _, _ = pipeline
        with pytest.raises(ValueError, match="workers"):
            ServingFleet(_factory(artifact), workers=0)

"""Runtime monitoring and the HTTP scoring service."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import DecisionTree, Experiment
from repro.datasets import load_dataset
from repro.fairness import BinaryLabelDataset, ClassificationMetric
from repro.fairness.metrics import BinaryLabelDatasetMetric
from repro.serve import (
    FairnessMonitor,
    ModelRegistry,
    ScoringEngine,
    ScoringService,
    make_server,
)


class TestFairnessMonitor:
    def test_windowed_di_matches_metric_class(self):
        rng = np.random.default_rng(0)
        monitor = FairnessMonitor("sex", window_size=1000)
        groups = (rng.random(400) < 0.5).astype(float)
        predictions = (rng.random(400) < 0.3 + 0.2 * groups).astype(float)
        monitor.observe_batch(groups=groups, predictions=predictions)
        snap = monitor.snapshot()
        data = BinaryLabelDataset(
            features=np.zeros((400, 0)),
            labels=predictions,
            protected_attributes=groups.reshape(-1, 1),
            protected_attribute_names=["sex"],
        )
        metric = BinaryLabelDatasetMetric(
            data,
            unprivileged_groups=[{"sex": 0.0}],
            privileged_groups=[{"sex": 1.0}],
        )
        assert snap["disparate_impact"] == metric.disparate_impact()
        assert (
            snap["statistical_parity_difference"]
            == metric.statistical_parity_difference()
        )

    def test_equal_opportunity_gap_matches_classification_metric(self):
        rng = np.random.default_rng(1)
        monitor = FairnessMonitor("sex", window_size=1000)
        groups = (rng.random(300) < 0.5).astype(float)
        truth = (rng.random(300) < 0.4).astype(float)
        predictions = np.where(rng.random(300) < 0.8, truth, 1.0 - truth)
        monitor.observe_batch(
            groups=groups, predictions=predictions, true_labels=truth
        )
        snap = monitor.snapshot()
        base = BinaryLabelDataset(
            features=np.zeros((300, 0)),
            labels=truth,
            protected_attributes=groups.reshape(-1, 1),
            protected_attribute_names=["sex"],
        )
        metric = ClassificationMetric(
            base,
            base.with_predictions(labels=predictions),
            unprivileged_groups=[{"sex": 0.0}],
            privileged_groups=[{"sex": 1.0}],
        )
        assert (
            snap["equal_opportunity_difference"]
            == metric.equal_opportunity_difference()
        )
        assert snap["accuracy"] == (predictions == truth).mean()

    def test_sliding_window_evicts_old_records(self):
        monitor = FairnessMonitor("sex", window_size=10)
        monitor.observe_batch(
            groups=np.ones(30), predictions=np.ones(30)
        )
        snap = monitor.snapshot()
        assert snap["window"] == 10
        assert snap["total_observed"] == 30

    def test_alerts_fire_and_clear(self):
        monitor = FairnessMonitor(
            "sex",
            window_size=200,
            min_observations=10,
            thresholds={"disparate_impact": (0.8, None)},
        )
        # privileged always favorable, unprivileged never: DI = 0
        groups = np.asarray([1.0, 0.0] * 50)
        monitor.observe_batch(groups=groups, predictions=groups.copy())
        alerts = monitor.check()
        assert len(alerts) == 1
        assert alerts[0].metric == "disparate_impact"
        assert "outside" in alerts[0].describe()
        monitor.reset()
        assert monitor.check() == []

    def test_min_observations_guard(self):
        monitor = FairnessMonitor(
            "sex",
            min_observations=50,
            thresholds={"disparate_impact": (0.8, None)},
        )
        groups = np.asarray([1.0, 0.0] * 10)
        monitor.observe_batch(groups=groups, predictions=groups.copy())
        assert monitor.check() == []

    def test_single_group_window_skips_group_metrics(self):
        monitor = FairnessMonitor("sex")
        monitor.observe_batch(groups=np.ones(60), predictions=np.ones(60))
        snap = monitor.snapshot()
        assert "disparate_impact" not in snap
        assert monitor.check() == []


@pytest.fixture(scope="module")
def service():
    frame, spec = load_dataset("germancredit")
    import tempfile

    with tempfile.TemporaryDirectory() as root:
        experiment = Experiment(
            frame=frame, spec=spec, random_seed=5, learner=DecisionTree(tuned=False)
        )
        prepared = experiment.prepare()
        trained = experiment.train_candidates(prepared)
        result = experiment.evaluate(prepared, trained)
        registry = ModelRegistry(root)
        experiment.export_pipeline(
            prepared, trained, result, registry=registry, tags=["production"]
        )
        pipeline = registry.load_pipeline("production")
        monitor = FairnessMonitor(pipeline.protected_attribute, window_size=500)
        engine = ScoringEngine(pipeline, monitor=monitor)
        yield ScoringService(engine, model_id="m1"), frame, spec


def _records(frame, count):
    decoded = {c: frame.col(c).values for c in frame.columns}
    out = []
    for i in range(count):
        row = {}
        for name in frame.columns:
            value = decoded[name][i]
            row[name] = value.item() if hasattr(value, "item") else value
        out.append(row)
    return out


class TestScoringService:
    def test_single_record(self, service):
        svc, frame, spec = service
        out = svc.score(_records(frame, 1)[0])
        assert out["records_scored"] == 1
        assert out["label"] in (0.0, 1.0)

    def test_batch(self, service):
        svc, frame, spec = service
        out = svc.score({"records": _records(frame, 8)})
        assert out["records_scored"] == 8
        assert len(out["labels"]) == 8

    def test_invalid_payload(self, service):
        svc, _, _ = service
        with pytest.raises(ValueError):
            svc.score([1, 2, 3])
        assert svc.metrics()["errors"] >= 1

    def test_metrics_and_health(self, service):
        svc, frame, _ = service
        svc.score({"records": _records(frame, 4)})
        health = svc.health()
        assert health["status"] == "ok"
        assert health["model_id"] == "m1"
        metrics = svc.metrics()
        assert metrics["requests"] >= 1
        assert metrics["records_scored"] >= 4
        assert "monitor" in metrics
        assert "alerts" in metrics
        assert "latency_ms" in metrics


class TestHTTP:
    def test_http_roundtrip(self, service):
        svc, frame, spec = service
        server = make_server(svc, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{port}"
        try:
            health = json.loads(urllib.request.urlopen(f"{base}/healthz").read())
            assert health["status"] == "ok"

            payload = json.dumps({"records": _records(frame, 3)}).encode()
            request = urllib.request.Request(
                f"{base}/score",
                data=payload,
                headers={"Content-Type": "application/json"},
            )
            scored = json.loads(urllib.request.urlopen(request).read())
            assert scored["records_scored"] == 3

            metrics = json.loads(urllib.request.urlopen(f"{base}/metrics").read())
            assert metrics["records_scored"] >= 3

            response = urllib.request.urlopen(
                f"{base}/metrics?format=prometheus"
            )
            assert response.headers["Content-Type"].startswith("text/plain")
            exposition = response.read().decode()
            assert "# TYPE repro_serve_requests_total counter" in exposition
            assert "repro_serve_request_latency_ms_bucket" in exposition

            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/nope")
            assert err.value.code == 404

            bad = urllib.request.Request(
                f"{base}/score",
                data=b'{"records": "nope"}',
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(bad)
            assert err.value.code == 422
        finally:
            server.shutdown()
            server.server_close()

"""Frozen deque-based FairnessMonitor (the PR-4 implementation).

This is the reference the ring-buffer monitor must match snapshot-for-
snapshot: a verbatim copy of the original list/deque implementation with
only the package-relative imports rewritten. Do not modify it alongside
:mod:`repro.serve.monitor` -- its whole value is staying frozen.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fairness import BinaryLabelDataset, ClassificationMetric
from repro.fairness.metrics import BinaryLabelDatasetMetric

# metric -> (lower bound, upper bound); None disables a side. The defaults
# encode the four-fifths rule on disparate impact and a ±0.1 band on the
# equal-opportunity gap (the bounds the paper's intervention studies target).
DEFAULT_THRESHOLDS: Dict[str, Tuple[Optional[float], Optional[float]]] = {
    "disparate_impact": (0.8, 1.25),
    "equal_opportunity_difference": (-0.1, 0.1),
    "statistical_parity_difference": (-0.1, 0.1),
}


@dataclass(frozen=True)
class Alert:
    """One threshold violation over the current window."""

    metric: str
    value: float
    lower: Optional[float]
    upper: Optional[float]
    window: int

    def describe(self) -> str:
        bounds = f"[{self.lower}, {self.upper}]"
        return (
            f"{self.metric}={self.value:.4f} outside {bounds} "
            f"over the last {self.window} records"
        )


class ReferenceFairnessMonitor:
    """Thread-safe sliding window over scored records."""

    def __init__(
        self,
        protected_attribute: str,
        window_size: int = 1000,
        thresholds: Optional[Dict[str, Tuple[Optional[float], Optional[float]]]] = None,
        min_observations: int = 50,
        favorable_label: float = 1.0,
        unfavorable_label: float = 0.0,
    ):
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.protected_attribute = protected_attribute
        self.window_size = int(window_size)
        self.thresholds = dict(
            DEFAULT_THRESHOLDS if thresholds is None else thresholds
        )
        self.min_observations = int(min_observations)
        self.favorable_label = float(favorable_label)
        self.unfavorable_label = float(unfavorable_label)
        self._window: deque = deque(maxlen=self.window_size)
        self._total_observed = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def observe(
        self,
        group: float,
        prediction: float,
        score: Optional[float] = None,
        true_label: Optional[float] = None,
    ) -> None:
        """Record one scored instance (group = protected value, 1.0/0.0)."""
        with self._lock:
            self._window.append(
                (float(group), float(prediction), score, true_label)
            )
            self._total_observed += 1

    def observe_batch(
        self,
        groups: np.ndarray,
        predictions: np.ndarray,
        scores: Optional[np.ndarray] = None,
        true_labels: Optional[np.ndarray] = None,
    ) -> None:
        """Record a scored batch; a NaN in ``true_labels`` means *unlabeled*."""
        groups = np.asarray(groups, dtype=np.float64).ravel()
        predictions = np.asarray(predictions, dtype=np.float64).ravel()
        total = len(groups)
        # rows beyond the window would be evicted immediately; skip them
        start = max(0, total - self.window_size)
        with self._lock:
            for i in range(start, total):
                truth = None if true_labels is None else float(true_labels[i])
                if truth is not None and truth != truth:
                    truth = None
                self._window.append(
                    (
                        float(groups[i]),
                        float(predictions[i]),
                        None if scores is None else float(scores[i]),
                        truth,
                    )
                )
            self._total_observed += total

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Windowed metrics, via the experiment layer's own metric classes."""
        with self._lock:
            rows = list(self._window)
            total = self._total_observed
        out: Dict[str, float] = {
            "window": float(len(rows)),
            "total_observed": float(total),
        }
        if not rows:
            return out
        groups = np.asarray([r[0] for r in rows])
        predictions = np.asarray([r[1] for r in rows])
        scores = [r[2] for r in rows]
        truths = [r[3] for r in rows]

        pred_data = self._dataset(predictions, groups)
        both_groups = bool((groups == 1.0).any() and (groups == 0.0).any())
        out["selection_rate"] = float(
            (predictions == self.favorable_label).mean()
        )
        known_scores = [s for s in scores if s is not None]
        if known_scores:
            out["mean_score"] = float(np.mean(known_scores))
        if both_groups:
            dataset_metric = BinaryLabelDatasetMetric(
                pred_data,
                unprivileged_groups=[{self.protected_attribute: 0.0}],
                privileged_groups=[{self.protected_attribute: 1.0}],
            )
            out["disparate_impact"] = dataset_metric.disparate_impact()
            out["statistical_parity_difference"] = (
                dataset_metric.statistical_parity_difference()
            )

        labeled = np.asarray([t is not None for t in truths])
        out["labeled_fraction"] = float(labeled.mean())
        if labeled.any():
            true_labels = np.asarray(
                [t for t in truths if t is not None], dtype=np.float64
            )
            sub_groups = groups[labeled]
            sub_predictions = predictions[labeled]
            truth_data = self._dataset(true_labels, sub_groups)
            pred_sub = self._dataset(sub_predictions, sub_groups)
            out["accuracy"] = float((sub_predictions == true_labels).mean())
            if (sub_groups == 1.0).any() and (sub_groups == 0.0).any():
                metric = ClassificationMetric(
                    truth_data,
                    pred_sub,
                    unprivileged_groups=[{self.protected_attribute: 0.0}],
                    privileged_groups=[{self.protected_attribute: 1.0}],
                )
                out["equal_opportunity_difference"] = (
                    metric.equal_opportunity_difference()
                )
                out["average_odds_difference"] = metric.average_odds_difference()
        return out

    def check(self, snapshot: Optional[Dict[str, float]] = None) -> List[Alert]:
        """Threshold violations over the current window (empty = healthy).

        Pass a precomputed :meth:`snapshot` to avoid rebuilding the window
        metrics (the /metrics route reports both from one snapshot).
        """
        snap = self.snapshot() if snapshot is None else snapshot
        window = int(snap.get("window", 0))
        if window < self.min_observations:
            return []
        alerts: List[Alert] = []
        for metric, (lower, upper) in self.thresholds.items():
            value = snap.get(metric)
            if value is None or np.isnan(value):
                continue
            if (lower is not None and value < lower) or (
                upper is not None and value > upper
            ):
                alerts.append(
                    Alert(
                        metric=metric,
                        value=float(value),
                        lower=lower,
                        upper=upper,
                        window=window,
                    )
                )
        return alerts

    def reset(self) -> None:
        with self._lock:
            self._window.clear()

    # ------------------------------------------------------------------
    def _dataset(self, labels: np.ndarray, groups: np.ndarray) -> BinaryLabelDataset:
        """Wrap window columns as a (feature-less) BinaryLabelDataset."""
        n = len(labels)
        return BinaryLabelDataset(
            features=np.zeros((n, 0)),
            labels=labels,
            protected_attributes=groups.reshape(-1, 1),
            protected_attribute_names=[self.protected_attribute],
            favorable_label=self.favorable_label,
            unfavorable_label=self.unfavorable_label,
        )

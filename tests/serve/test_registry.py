"""Model registry: publish, resolve, promote/tag/rollback, results linkage."""

import numpy as np
import pytest

from repro.core import DecisionTree, Experiment, LogisticRegression, ResultsStore
from repro.datasets import load_dataset
from repro.serve import ModelRegistry


@pytest.fixture(scope="module")
def two_runs():
    frame, spec = load_dataset("germancredit")
    runs = []
    for seed, learner in ((1, DecisionTree(tuned=False)), (2, LogisticRegression(tuned=False))):
        experiment = Experiment(
            frame=frame, spec=spec, random_seed=seed, learner=learner
        )
        prepared = experiment.prepare()
        trained = experiment.train_candidates(prepared)
        result = experiment.evaluate(prepared, trained)
        result.run_key = f"runkey-{seed}"
        runs.append((experiment, prepared, trained, result))
    return runs


@pytest.fixture()
def registry(tmp_path, two_runs):
    registry = ModelRegistry(str(tmp_path / "registry"))
    for experiment, prepared, trained, result in two_runs:
        experiment.export_pipeline(prepared, trained, result, registry=registry)
    return registry


class TestPublish:
    def test_model_id_defaults_to_run_key(self, registry):
        ids = {record["model_id"] for record in registry.list_models()}
        assert ids == {"runkey-1", "runkey-2"}

    def test_metrics_linked_from_result(self, registry):
        record = registry.get_record("runkey-1")
        assert "overall__accuracy" in record["metrics"]["test"]
        assert "overall__accuracy" in record["metrics"]["validation"]
        assert record["run_key"] == "runkey-1"

    def test_duplicate_publish_needs_overwrite(self, registry, two_runs):
        experiment, prepared, trained, result = two_runs[0]
        with pytest.raises(ValueError, match="already registered"):
            experiment.export_pipeline(
                prepared, trained, result, registry=registry, overwrite=False
            )
        experiment.export_pipeline(prepared, trained, result, registry=registry)

    def test_invalid_model_id_rejected(self, registry, two_runs):
        experiment, prepared, trained, result = two_runs[0]
        pipeline = experiment.fitted_pipeline(prepared, trained, result.best_index)
        with pytest.raises(ValueError, match="invalid model id"):
            registry.publish(pipeline, model_id="../escape")

    def test_content_hash_when_no_run_key(self, tmp_path, two_runs):
        experiment, prepared, trained, result = two_runs[0]
        registry = ModelRegistry(str(tmp_path / "fresh"))
        pipeline = experiment.fitted_pipeline(prepared, trained, result.best_index)
        record = registry.publish(pipeline)
        assert len(record["model_id"]) == 20

    def test_experiment_run_export_hook(self, tmp_path):
        frame, spec = load_dataset("germancredit")
        registry = ModelRegistry(str(tmp_path / "hook"))
        experiment = Experiment(
            frame=frame, spec=spec, random_seed=8, learner=DecisionTree(tuned=False)
        )
        result = experiment.run(export=registry, export_tags=["production"])
        record = registry.get_record("production")
        assert record["metrics"]["test"] == result.test_metrics
        pipeline = registry.load_pipeline("production")
        assert pipeline.metadata["best_learner"] == result.best_candidate.learner

    def test_read_only_open_requires_existing_registry(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no model registry"):
            ModelRegistry(str(tmp_path / "nope"), create=False)


class TestTags:
    def test_promote_resolve_rollback(self, registry):
        registry.promote("runkey-1", tag="production")
        registry.promote("runkey-2", tag="production")
        assert registry.resolve("production") == "runkey-2"
        assert registry.tag_history("production") == ["runkey-1", "runkey-2"]
        restored = registry.rollback("production")
        assert restored == "runkey-1"
        assert registry.resolve("production") == "runkey-1"

    def test_rollback_without_history_fails(self, registry):
        with pytest.raises(KeyError):
            registry.rollback("nonexistent")
        registry.promote("runkey-1", tag="single")
        with pytest.raises(ValueError, match="no previous model"):
            registry.rollback("single")

    def test_promote_unknown_model_fails(self, registry):
        with pytest.raises(KeyError):
            registry.promote("nope", tag="production")

    def test_repeat_promotion_is_idempotent(self, registry):
        registry.promote("runkey-1", tag="t")
        registry.promote("runkey-1", tag="t")
        assert registry.tag_history("t") == ["runkey-1"]

    def test_resolve_unknown_reference(self, registry):
        with pytest.raises(KeyError, match="neither a model id nor a tag"):
            registry.resolve("ghost")


class TestReload:
    def test_fresh_registry_object_reloads_pipeline(self, registry, two_runs):
        _, prepared, trained, result = two_runs[0]
        fresh = ModelRegistry(registry.root)
        pipeline = fresh.load_pipeline("runkey-1")
        model, post = trained.models[result.best_index]
        X = prepared.test_data_eval.features
        assert np.array_equal(pipeline.model.predict(X), model.predict(X))

    def test_results_for_links_to_store(self, registry, two_runs, tmp_path):
        _, _, _, result = two_runs[0]
        store = ResultsStore(str(tmp_path / "results.jsonl"))
        store.extend([result])
        linked = registry.results_for("runkey-1", store)
        assert len(linked) == 1
        assert linked[0].test_metrics == result.test_metrics

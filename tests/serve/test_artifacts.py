"""Artifact format: JSON+npz packing, schema fingerprints, no-pickle."""

import json
import os

import numpy as np
import pytest

from repro.core import DecisionTree, Experiment
from repro.datasets import load_dataset
from repro.serialize import restore, state_of
from repro.serve import PipelineArtifact, load_artifact, save_artifact
from repro.serve.artifacts import ARRAYS_NAME, MANIFEST_NAME


@pytest.fixture(scope="module")
def fitted(tmp_path_factory):
    frame, spec = load_dataset("germancredit")
    experiment = Experiment(
        frame=frame, spec=spec, random_seed=5, learner=DecisionTree(tuned=False)
    )
    prepared = experiment.prepare()
    trained = experiment.train_candidates(prepared)
    result = experiment.evaluate(prepared, trained)
    pipeline = experiment.fitted_pipeline(prepared, trained, result.best_index)
    return experiment, prepared, trained, result, pipeline


class TestPacking:
    def test_roundtrip_nested_arrays(self, tmp_path):
        manifest = {
            "format": "x",
            "nested": {"a": np.arange(5, dtype=np.int32)},
            "listed": [1, "two", np.linspace(0, 1, 7)],
            "none": None,
            "nan": float("nan"),
        }
        save_artifact(str(tmp_path / "art"), manifest)
        loaded = load_artifact(str(tmp_path / "art"))
        assert np.array_equal(loaded["nested"]["a"], manifest["nested"]["a"])
        assert loaded["nested"]["a"].dtype == np.int32
        assert np.array_equal(loaded["listed"][2], manifest["listed"][2])
        assert loaded["listed"][:2] == [1, "two"]
        assert loaded["none"] is None
        assert loaded["nan"] != loaded["nan"]

    def test_object_arrays_rejected(self, tmp_path):
        manifest = {"bad": np.asarray(["a", None], dtype=object)}
        with pytest.raises(TypeError, match="no-pickle"):
            save_artifact(str(tmp_path / "art"), manifest)

    def test_npz_member_never_needs_pickle(self, fitted, tmp_path):
        _, _, _, _, pipeline = fitted
        directory = str(tmp_path / "model")
        pipeline.save(directory)
        assert sorted(os.listdir(directory)) == sorted([MANIFEST_NAME, ARRAYS_NAME])
        # loads with allow_pickle=False (the load path never enables it)
        with np.load(os.path.join(directory, ARRAYS_NAME), allow_pickle=False) as npz:
            assert npz.files
        with open(os.path.join(directory, MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
        assert manifest["format"] == "fairprep-pipeline"
        assert manifest["version"] == 1


class TestPipelineArtifact:
    def test_save_load_roundtrip_predictions(self, fitted, tmp_path):
        experiment, prepared, trained, result, pipeline = fitted
        directory = str(tmp_path / "model")
        pipeline.save(directory)
        reloaded = PipelineArtifact.load(directory)
        X = prepared.test_data_eval.features
        assert np.array_equal(pipeline.model.predict(X), reloaded.model.predict(X))
        assert np.array_equal(
            pipeline.model.predict_scores(X), reloaded.model.predict_scores(X)
        )
        assert reloaded.spec.to_dict() == pipeline.spec.to_dict()
        assert reloaded.metadata["best_learner"] == result.best_candidate.learner

    def test_schema_fingerprint_detects_tamper(self, fitted, tmp_path):
        _, _, _, _, pipeline = fitted
        directory = str(tmp_path / "model")
        pipeline.save(directory)
        path = os.path.join(directory, MANIFEST_NAME)
        with open(path) as handle:
            manifest = json.load(handle)
        manifest["spec"]["numeric_features"] = ["bogus"]
        with open(path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            PipelineArtifact.load(directory)

    def test_unknown_component_type_rejected(self, fitted, tmp_path):
        _, _, _, _, pipeline = fitted
        directory = str(tmp_path / "model")
        pipeline.save(directory)
        path = os.path.join(directory, MANIFEST_NAME)
        with open(path) as handle:
            manifest = json.load(handle)
        manifest["components"]["model"]["type"] = "os.system"
        with open(path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError, match="unknown component type"):
            PipelineArtifact.load(directory)

    def test_version_gate(self, fitted, tmp_path):
        _, _, _, _, pipeline = fitted
        manifest = pipeline.to_manifest()
        manifest["version"] = 99
        with pytest.raises(ValueError, match="version"):
            PipelineArtifact.from_manifest(manifest)

    def test_metadata_carries_verification_predictions(self, fitted):
        _, prepared, trained, result, pipeline = fitted
        verification = pipeline.metadata["verification"]
        assert len(verification["test_labels"]) == prepared.test_data.num_instances


class TestSerializeRegistry:
    def test_state_of_requires_registration(self):
        class NotRegistered:
            pass

        with pytest.raises(TypeError, match="not registered"):
            state_of(NotRegistered())

    def test_restore_unknown_type(self):
        with pytest.raises(ValueError, match="unknown component type"):
            restore({"type": "definitely-not-a-component", "state": {}})
